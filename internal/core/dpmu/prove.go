package dpmu

import (
	"fmt"
	"sort"

	"hyper4/internal/core/persona"
	"hyper4/internal/core/verify/prove"
	"hyper4/internal/sim"
)

// SetTranslationSkew plants (or clears) a deliberate translation bug — the
// DPMU stops compensating LPM priorities with prefix length — so the
// equivalence prover's smoke tests exercise a realistic divergence. Only
// entries installed while the skew is on are affected.
func (d *DPMU) SetTranslationSkew(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.skewLPM = on
}

// Prove runs the symbolic equivalence prover for one virtual device: it
// rebuilds the device's native program in a twin simulator from the retained
// entry specs, models both the twin and the live persona rows symbolically,
// and compares them over the whole packet space restricted to the identity
// ingress window (ports 8..15).
//
// When the identity harness is live — ports 8..15 assigned one-to-one to this
// device and virtual ports 1..15 mapped to their physical namesakes — witness
// packets are replayed through both concrete machines, so divergences are
// only reported at error severity when a real packet reproduces them.
// Without the harness, divergences degrade to warnings. Replayed witnesses
// traverse the live switch and show up in its counters.
func (d *DPMU) Prove(owner, vdev string, opts prove.Options) (*prove.Result, error) {
	d.mu.RLock()
	v, err := d.auth(owner, vdev)
	if err != nil {
		d.mu.RUnlock()
		return nil, err
	}
	comp := v.Comp
	pid := v.PID
	handles := make([]int, 0, len(v.entries))
	for h := range v.entries {
		handles = append(handles, h)
	}
	sort.Ints(handles)
	specs := make([]EntrySpec, 0, len(handles))
	for _, h := range handles {
		specs = append(specs, v.entries[h].spec)
	}
	defTables := make([]string, 0, len(v.defSpecs))
	for t := range v.defSpecs {
		defTables = append(defTables, t)
	}
	sort.Strings(defTables)
	defSpecs := make([]EntrySpec, 0, len(defTables))
	for _, t := range defTables {
		defSpecs = append(defSpecs, v.defSpecs[t])
	}
	identity := d.identityHarnessLocked(v)
	d.mu.RUnlock()

	twin, err := sim.New("native:"+vdev, comp.Prog)
	if err != nil {
		return nil, fmt.Errorf("dpmu: prove: native twin: %w", err)
	}
	for _, s := range specs {
		if _, err := twin.TableAdd(s.Table, s.Action, s.Params, s.Args, s.Priority); err != nil {
			return nil, fmt.Errorf("dpmu: prove: twin entry %s/%s: %w", s.Table, s.Action, err)
		}
	}
	for _, s := range defSpecs {
		if err := twin.TableSetDefault(s.Table, s.Action, s.Args); err != nil {
			return nil, fmt.Errorf("dpmu: prove: twin default %s/%s: %w", s.Table, s.Action, err)
		}
	}

	L := prove.ModelBytes(d.cfg, comp.MaxBytes)
	restrict := prove.IdentityPortRegion(L)
	opts.Restrict = &restrict
	if opts.VDev == "" {
		opts.VDev = vdev
	}
	opts.ReplayNative = func(frame []byte, port int) ([]sim.Output, error) {
		out, _, err := twin.Process(frame, port)
		return out, err
	}
	if identity {
		sw := d.SW
		opts.ReplayPersona = func(frame []byte, port int) ([]sim.Output, error) {
			out, _, err := sw.Process(frame, port)
			return out, err
		}
	}
	return prove.Equivalence(comp.Prog, d.cfg, twin, d.SW, pid, L, opts)
}

// identityHarnessLocked reports whether the identity proof harness is live
// for device v: every physical port in 8..15 is effectively assigned to v
// with a matching virtual ingress, and every virtual port 1..15 routes to
// its physical namesake.
func (d *DPMU) identityHarnessLocked(v *VDev) bool {
	for p := 8; p < 16; p++ {
		if !d.effectiveAssignIs(p, v.Name) {
			return false
		}
	}
	rows, err := d.SW.TableEntriesOrdered(persona.TblVirtnet)
	if err != nil {
		return false
	}
	byHandle := make(map[int]*sim.Entry, len(rows))
	for _, e := range rows {
		byHandle[e.Handle] = e
	}
	for vp := 1; vp < 16; vp++ {
		row, ok := v.vnet[vp]
		if !ok {
			return false
		}
		e := byHandle[row.handle]
		if e == nil || e.Action != persona.ActPhysFwd || len(e.Args) != 1 || e.Args[0].Uint64() != uint64(vp) {
			return false
		}
	}
	return true
}

// effectiveAssignIs mirrors t_assign precedence (PIDForPort): the newest
// port-specific assignment wins, then the newest wildcard.
func (d *DPMU) effectiveAssignIs(port int, vdev string) bool {
	wildcard := -1
	for i := len(d.assigns) - 1; i >= 0; i-- {
		a := d.assigns[i]
		if _, ok := d.vdevs[a.VDev]; !ok {
			continue
		}
		if a.PhysPort == port {
			return a.VDev == vdev && a.VIngress == port
		}
		if a.PhysPort == -1 && wildcard == -1 {
			if a.VDev == vdev && a.VIngress == port {
				wildcard = 1
			} else {
				wildcard = 0
			}
		}
	}
	return wildcard == 1
}
