package dpmu

import (
	"bytes"
	"testing"

	"hyper4/internal/functions"
	"hyper4/internal/pkt"
)

// TestVirtualMulticast loads three L2 switches and multicasts traffic from
// the first to the other two (§4.6): one packet in, one copy delivered
// through each target device.
func TestVirtualMulticast(t *testing.T) {
	d := newPersonaDPMU(t)
	const owner = "op"
	comp := compileFn(t, functions.L2Switch)
	for _, name := range []string{"src", "tgt_a", "tgt_b"} {
		if _, err := d.Load(name, comp, owner, 0); err != nil {
			t.Fatal(err)
		}
	}
	// src switches everything to virtual port 10, the multicast port.
	src := functions.NewL2ControllerFunc(d.Installer(owner, "src"))
	if err := src.AddHost(mac2, 10); err != nil {
		t.Fatal(err)
	}
	// Each target forwards to a distinct physical port.
	ca := functions.NewL2ControllerFunc(d.Installer(owner, "tgt_a"))
	if err := ca.AddHost(mac2, 5); err != nil {
		t.Fatal(err)
	}
	cb := functions.NewL2ControllerFunc(d.Installer(owner, "tgt_b"))
	if err := cb.AddHost(mac2, 6); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort(owner, Assignment{PhysPort: 1, VDev: "src", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range []string{"tgt_a", "tgt_b"} {
		for _, port := range []int{5, 6} {
			if err := d.MapVPort(owner, tgt, port, port); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.MulticastGroup(owner, "src", 10, []VPortRef{
		{VDev: "tgt_a", VIngress: 1},
		{VDev: "tgt_b", VIngress: 1},
	}); err != nil {
		t.Fatal(err)
	}

	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}, pkt.Payload("mc")))
	outs, tr, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("want 2 delivered copies, got %d (tables %v)", len(outs), tr.Tables)
	}
	ports := map[int]bool{}
	for _, o := range outs {
		ports[o.Port] = true
		if !bytes.Equal(o.Data, frame) {
			t.Errorf("copy modified: %x", o.Data)
		}
	}
	if !ports[5] || !ports[6] {
		t.Errorf("copies on ports %v, want 5 and 6", ports)
	}
	if tr.ClonesE2E != 1 || tr.Recirculates != 2 {
		t.Errorf("clones=%d recircs=%d, want 1 clone and 2 recirculations", tr.ClonesE2E, tr.Recirculates)
	}
}

// TestVirtualMulticastThreeWay exercises a longer sequence.
func TestVirtualMulticastThreeWay(t *testing.T) {
	d := newPersonaDPMU(t)
	const owner = "op"
	comp := compileFn(t, functions.L2Switch)
	for _, name := range []string{"src", "t1", "t2", "t3"} {
		if _, err := d.Load(name, comp, owner, 0); err != nil {
			t.Fatal(err)
		}
	}
	src := functions.NewL2ControllerFunc(d.Installer(owner, "src"))
	if err := src.AddHost(mac2, 10); err != nil {
		t.Fatal(err)
	}
	for i, tgt := range []string{"t1", "t2", "t3"} {
		c := functions.NewL2ControllerFunc(d.Installer(owner, tgt))
		if err := c.AddHost(mac2, 5+i); err != nil {
			t.Fatal(err)
		}
		if err := d.MapVPort(owner, tgt, 5+i, 5+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AssignPort(owner, Assignment{PhysPort: 1, VDev: "src", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.MulticastGroup(owner, "src", 10, []VPortRef{
		{VDev: "t1", VIngress: 1}, {VDev: "t2", VIngress: 1}, {VDev: "t3", VIngress: 1},
	}); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	outs, tr, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	ports := map[int]bool{}
	for _, o := range outs {
		ports[o.Port] = true
	}
	if len(outs) != 3 || !ports[5] || !ports[6] || !ports[7] {
		t.Fatalf("want copies on 5,6,7; got %v", ports)
	}
	if tr.ClonesE2E != 2 {
		t.Errorf("clones = %d, want 2", tr.ClonesE2E)
	}
}

// TestMulticastSingleTargetIsLink verifies the degenerate one-target group.
func TestMulticastSingleTargetIsLink(t *testing.T) {
	d := newPersonaDPMU(t)
	const owner = "op"
	comp := compileFn(t, functions.L2Switch)
	for _, name := range []string{"src", "tgt"} {
		if _, err := d.Load(name, comp, owner, 0); err != nil {
			t.Fatal(err)
		}
	}
	src := functions.NewL2ControllerFunc(d.Installer(owner, "src"))
	if err := src.AddHost(mac2, 10); err != nil {
		t.Fatal(err)
	}
	c := functions.NewL2ControllerFunc(d.Installer(owner, "tgt"))
	if err := c.AddHost(mac2, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.MapVPort(owner, "tgt", 5, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort(owner, Assignment{PhysPort: 1, VDev: "src", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.MulticastGroup(owner, "src", 10, []VPortRef{{VDev: "tgt", VIngress: 1}}); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	outs, _, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 5 {
		t.Fatalf("outs: %+v", outs)
	}
}

func TestMulticastErrors(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.L2Switch)
	if _, err := d.Load("src", comp, "op", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.MulticastGroup("op", "src", 10, nil); err == nil {
		t.Error("empty group should error")
	}
	if err := d.MulticastGroup("op", "src", 10, []VPortRef{{VDev: "ghost"}}); err == nil {
		t.Error("unknown target should error")
	}
	if err := d.MulticastGroup("mallory", "src", 10, []VPortRef{{VDev: "src"}}); err == nil {
		t.Error("foreign owner should error")
	}
}

// TestIngressPolicing exercises the §4.5 meter: a device limited to 3
// packets per window passes 3 and drops the rest, while another device's
// traffic is unaffected; a new window restores service.
func TestIngressPolicing(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "limited", "op")
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))

	if err := d.SetRateLimit("op", "limited", 3, 3); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 10; i++ {
		outs, _, err := d.SW.Process(frame, 1)
		if err != nil {
			t.Fatal(err)
		}
		delivered += len(outs)
	}
	if delivered != 3 {
		t.Errorf("delivered %d of 10, want 3 (meter threshold)", delivered)
	}
	// A new window restores the budget.
	if err := d.TickMeters(); err != nil {
		t.Fatal(err)
	}
	outs, _, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Errorf("after tick: %d", len(outs))
	}
	// Authorization still applies.
	if err := d.SetRateLimit("mallory", "limited", 1, 1); err == nil {
		t.Error("foreign rate limit should be rejected")
	}
}

// TestPolicingIsolation verifies one device's red traffic does not affect a
// second device sharing the persona.
func TestPolicingIsolation(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "noisy", "op")
	d.ClearAssignments()
	comp := compileFn(t, functions.L2Switch)
	if _, err := d.Load("quiet", comp, "op", 0); err != nil {
		t.Fatal(err)
	}
	qc := functions.NewL2ControllerFunc(d.Installer("op", "quiet"))
	if err := qc.AddHost(mac2, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", Assignment{PhysPort: 1, VDev: "noisy", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", Assignment{PhysPort: 3, VDev: "quiet", VIngress: 3}); err != nil {
		t.Fatal(err)
	}
	if err := d.MapVPort("op", "noisy", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.MapVPort("op", "quiet", 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRateLimit("op", "noisy", 0, 0); err != nil { // drop everything
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	for i := 0; i < 5; i++ {
		outs, _, err := d.SW.Process(frame, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 0 {
			t.Fatalf("noisy device should be fully policed: %+v", outs)
		}
	}
	outs, _, err := d.SW.Process(frame, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 4 {
		t.Fatalf("quiet device must be unaffected: %+v", outs)
	}
}

// TestTrafficStats verifies the per-device monitoring counters: pipeline
// passes (including resubmissions) are attributed to the right device.
func TestTrafficStats(t *testing.T) {
	d := newPersonaDPMU(t)
	loadFirewall(t, d, "fw", "op")
	loadL2(t, d, "l2", "op")
	d.ClearAssignments()
	if err := d.AssignPort("op", Assignment{PhysPort: 1, VDev: "fw", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", Assignment{PhysPort: 3, VDev: "l2", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	// Three TCP packets through the firewall: 3 × (1 initial + 2 resubmit)
	// pipeline passes.
	for i := 0; i < 3; i++ {
		if _, _, err := d.SW.Process(tcpFrame(80), 1); err != nil {
			t.Fatal(err)
		}
	}
	fwPkts, fwBytes, err := d.TrafficStats("op", "fw")
	if err != nil {
		t.Fatal(err)
	}
	if fwPkts != 9 {
		t.Errorf("fw passes = %d, want 9 (3 packets x 3 passes)", fwPkts)
	}
	if fwBytes == 0 {
		t.Error("fw bytes should be counted")
	}
	l2Pkts, _, err := d.TrafficStats("op", "l2")
	if err != nil {
		t.Fatal(err)
	}
	if l2Pkts != 0 {
		t.Errorf("l2 passes = %d, want 0 (no traffic assigned)", l2Pkts)
	}
	if err := d.ResetTrafficStats("op", "fw"); err != nil {
		t.Fatal(err)
	}
	fwPkts, _, _ = d.TrafficStats("op", "fw")
	if fwPkts != 0 {
		t.Errorf("after reset = %d", fwPkts)
	}
	if _, _, err := d.TrafficStats("mallory", "fw"); err == nil {
		t.Error("foreign stats read should be rejected")
	}
}
