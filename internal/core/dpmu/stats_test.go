package dpmu

import (
	"testing"

	"hyper4/internal/functions"
	"hyper4/internal/pkt"
)

// findTable returns the named table's stats from a VDevStats.
func findTable(t *testing.T, st VDevStats, name string) VTableStats {
	t.Helper()
	for _, ts := range st.Tables {
		if ts.Table == name {
			return ts
		}
	}
	t.Fatalf("vdev %s has no table %q in stats: %+v", st.VDev, name, st.Tables)
	return VTableStats{}
}

func TestVDevStatsAttribution(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2a", "alice")

	// A second L2 device owned by bob on physical ports 3/4, so both tenants
	// share the persona's stage tables.
	comp := compileFn(t, functions.L2Switch)
	if _, err := d.Load("l2b", comp, "bob", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewL2ControllerFunc(d.Installer("bob", "l2b"))
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	for vport, phys := range map[int]int{1: 3, 2: 4} {
		if err := d.AssignPort("bob", Assignment{PhysPort: phys, VDev: "l2b", VIngress: vport}); err != nil {
			t.Fatal(err)
		}
		if err := d.MapVPort("bob", "l2b", vport, phys); err != nil {
			t.Fatal(err)
		}
	}

	known := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}, pkt.Payload("hello!")))
	unknown := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: pkt.MustMAC("00:00:00:00:00:99"), Src: mac1, EtherType: 0x0800}))

	// alice: 3 known-destination frames (smac hit, dmac hit) and 2
	// unknown-destination frames (smac hit, dmac miss → catch-all drop).
	for i := 0; i < 3; i++ {
		if _, _, err := d.SW.Process(known, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, _, err := d.SW.Process(unknown, 1); err != nil {
			t.Fatal(err)
		}
	}
	// bob: 1 known frame through port 3.
	if _, _, err := d.SW.Process(known, 3); err != nil {
		t.Fatal(err)
	}

	a, err := d.StatsForVDev("alice", "l2a")
	if err != nil {
		t.Fatal(err)
	}
	if dmac := findTable(t, a, "dmac"); dmac.Hits != 3 || dmac.Misses != 2 || dmac.Entries != 2 {
		t.Errorf("l2a dmac = %+v, want hits=3 misses=2 entries=2", dmac)
	}
	if smac := findTable(t, a, "smac"); smac.Hits != 5 || smac.Misses != 0 || smac.Entries != 2 {
		t.Errorf("l2a smac = %+v, want hits=5 misses=0 entries=2", smac)
	}
	// Per-table conservation: every pass through the device resolves each
	// applied table as exactly one hit or one miss.
	for _, ts := range a.Tables {
		if got := uint64(ts.Hits + ts.Misses); got != a.Packets {
			t.Errorf("l2a %s hits+misses = %d, want %d passes", ts.Table, got, a.Packets)
		}
	}

	// bob's counters only see bob's packet — nothing leaked from alice.
	b, err := d.StatsForVDev("bob", "l2b")
	if err != nil {
		t.Fatal(err)
	}
	if dmac := findTable(t, b, "dmac"); dmac.Hits != 1 || dmac.Misses != 0 {
		t.Errorf("l2b dmac = %+v, want hits=1 misses=0", dmac)
	}
	if smac := findTable(t, b, "smac"); smac.Hits != 1 || smac.Misses != 0 {
		t.Errorf("l2b smac = %+v, want hits=1 misses=0", smac)
	}

	// Isolation: a tenant cannot read another tenant's stats.
	if _, err := d.StatsForVDev("bob", "l2a"); err == nil {
		t.Error("bob read alice's stats")
	}

	// The operator view covers both devices, and the per-vdev pass counts
	// reconcile with the switch-level packet counter.
	all := d.AllStats()
	if len(all) != 2 || all[0].VDev != "l2a" || all[1].VDev != "l2b" {
		t.Fatalf("AllStats = %+v", all)
	}
	if total := all[0].Packets + all[1].Packets; total != uint64(d.SW.Stats().PacketsIn) {
		t.Errorf("vdev passes sum to %d, switch saw %d packets", total, d.SW.Stats().PacketsIn)
	}
}

func TestVDevStatsModifyAndDelete(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2", "alice")
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	if _, _, err := d.SW.Process(frame, 1); err != nil {
		t.Fatal(err)
	}
	st, err := d.StatsForVDev("alice", "l2")
	if err != nil {
		t.Fatal(err)
	}
	if dmac := findTable(t, st, "dmac"); dmac.Hits != 1 {
		t.Fatalf("dmac = %+v", dmac)
	}

	// Deleting the entries moves subsequent traffic to the miss column and
	// drops the Entries count; the old rows' hits disappear with them.
	for _, table := range []string{"smac", "dmac"} {
		for h, e := range vdevEntries(d, "l2") {
			if e == table {
				if err := d.TableDelete("alice", "l2", table, h); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, _, err := d.SW.Process(frame, 1); err != nil {
		t.Fatal(err)
	}
	st, err = d.StatsForVDev("alice", "l2")
	if err != nil {
		t.Fatal(err)
	}
	if dmac := findTable(t, st, "dmac"); dmac.Entries != 0 || dmac.Hits != 0 || dmac.Misses != 1 {
		t.Errorf("after delete dmac = %+v, want entries=0 hits=0 misses=1", dmac)
	}
}

// vdevEntries snapshots a device's virtual entry handles and their tables.
func vdevEntries(d *DPMU, name string) map[int]string {
	out := map[int]string{}
	for h, e := range d.vdevs[name].entries {
		out[h] = e.table
	}
	return out
}
