package dpmu

import "errors"

// Sentinel errors classifying every DPMU failure. The control-plane layer
// (internal/core/ctl) maps them onto its P4Runtime-style error codes with
// errors.Is; keeping the sentinels here (rather than importing ctl) keeps the
// package graph acyclic: ctl builds on dpmu, never the reverse.
var (
	// ErrNotFound: the named virtual device, table, action, entry or
	// snapshot does not exist.
	ErrNotFound = errors.New("not found")
	// ErrPermission: the requester is not authorized for the device (§4.5).
	ErrPermission = errors.New("permission denied")
	// ErrInvalid: the operation is malformed — wrong arity, untranslatable
	// match kind, entry on a matchless table, or similar.
	ErrInvalid = errors.New("invalid argument")
	// ErrExhausted: the device's entry quota (memory isolation, §4.5) is
	// spent.
	ErrExhausted = errors.New("resource exhausted")
	// ErrExists: the name is already taken (duplicate Load).
	ErrExists = errors.New("already exists")
)
