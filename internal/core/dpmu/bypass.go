package dpmu

// Quarantine bypass for composed chains (PolicyBypass): when a mid-chain
// device trips its breaker, every virtual link feeding INTO it is rewired to
// the device's unique downstream successor, so the rest of the chain keeps
// forwarding. The rewiring is an overlay: the logical topology recorded in
// linkSpecs is untouched, which is what lets undoBypassLocked restore the
// original links for half-open probing or reset. All functions here are
// called with d.mu held.

import "hyper4/internal/core/persona"

// linkSpec records the logical shape of one virtual link (a LinkVPorts
// call): fromDev's virtual egress fromPort feeds toDev's virtual ingress
// toPort.
type linkSpec struct {
	fromDev  string
	fromPort int
	toDev    string
	toPort   int
}

// setLinkSpec records a link, replacing any previous link from the same
// (device, port) — mirroring LinkVPorts' replace semantics.
func (d *DPMU) setLinkSpec(s linkSpec) {
	d.dropLinkSpec(s.fromDev, s.fromPort)
	d.linkSpecs = append(d.linkSpecs, s)
}

// dropLinkSpec forgets the link from (device, port), if any.
func (d *DPMU) dropLinkSpec(fromDev string, fromPort int) {
	for i := range d.linkSpecs {
		if d.linkSpecs[i].fromDev == fromDev && d.linkSpecs[i].fromPort == fromPort {
			d.linkSpecs = append(d.linkSpecs[:i], d.linkSpecs[i+1:]...)
			return
		}
	}
}

// dropLinkSpecsFrom forgets every link originating at a device (its rows are
// deleted on unload). Links pointing at the device are kept, matching the
// persona rows, which also survive and dead-end.
func (d *DPMU) dropLinkSpecsFrom(dev string) {
	out := d.linkSpecs[:0]
	for _, s := range d.linkSpecs {
		if s.fromDev != dev {
			out = append(out, s)
		}
	}
	d.linkSpecs = out
}

// successor returns the device's unique downstream link, or nil when the
// device has none or more than one distinct target (fan-out cannot be
// bypassed unambiguously).
func (d *DPMU) successor(dev string) *linkSpec {
	var succ *linkSpec
	for i := range d.linkSpecs {
		s := &d.linkSpecs[i]
		if s.fromDev != dev {
			continue
		}
		if succ != nil && (succ.toDev != s.toDev || succ.toPort != s.toPort) {
			return nil
		}
		succ = s
	}
	return succ
}

// enforceBypassLocked rewires every link into the named device around it,
// to its unique successor. Reports whether the bypass is in place; false
// (no unique successor, successor unloaded, or a rewire failure) leaves
// containment drop-only.
func (d *DPMU) enforceBypassLocked(name string) bool {
	succ := d.successor(name)
	if succ == nil {
		return false
	}
	to, ok := d.vdevs[succ.toDev]
	if !ok {
		return false
	}
	done := true
	for _, s := range d.linkSpecs {
		if s.toDev != name {
			continue
		}
		if err := d.rewireLinkRow(s.fromDev, s.fromPort, to, succ.toPort); err != nil {
			done = false
		}
	}
	return done
}

// undoBypassLocked restores every link into the named device to its logical
// target.
func (d *DPMU) undoBypassLocked(name string) {
	v, ok := d.vdevs[name]
	if !ok {
		return
	}
	for _, s := range d.linkSpecs {
		if s.toDev != name {
			continue
		}
		// Best effort: the upstream device may have been unloaded while the
		// bypass was in place.
		_ = d.rewireLinkRow(s.fromDev, s.fromPort, v, s.toPort)
	}
}

// rewireLinkRow replaces fromDev's virtual-forward row at fromPort with one
// targeting the given device and virtual port. linkSpecs are deliberately
// not updated: bypass overlays the physical rows only.
func (d *DPMU) rewireLinkRow(fromDev string, fromPort int, to *VDev, toPort int) error {
	from, ok := d.vdevs[fromDev]
	if !ok {
		return ErrNotFound
	}
	params := linkMatch(from, fromPort)
	args := linkArgs(to, toPort)
	d.unmapVPort(from, fromPort)
	if err := d.addRow(&from.links, persona.TblVirtnet, persona.ActVirtFwd, params, args, 0); err != nil {
		return err
	}
	from.vnet[fromPort] = from.links[len(from.links)-1]
	return nil
}
