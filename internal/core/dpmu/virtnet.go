package dpmu

import (
	"fmt"
	"sort"

	"hyper4/internal/bitfield"
	"hyper4/internal/core/persona"
	"hyper4/internal/sim"
)

// AssignPort steers traffic arriving on a physical ingress port to a
// virtual device, presenting it as the device's virtual ingress port. Pass
// physPort = -1 to assign every port (slicing assigns disjoint port sets to
// different devices, §3.3).
func (d *DPMU) AssignPort(owner string, a Assignment) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	return d.assignPort(owner, a)
}

func (d *DPMU) assignPort(owner string, a Assignment) error {
	v, err := d.auth(owner, a.VDev)
	if err != nil {
		return err
	}
	val := bitfield.New(9)
	mask := bitfield.New(9)
	prio := 10
	if a.PhysPort >= 0 {
		val = bitfield.FromUint(9, uint64(a.PhysPort))
		mask = bitfield.Ones(9)
		prio = 1
	}
	args := []bitfield.Value{
		bitfield.FromUint(persona.ProgramWidth, uint64(v.PID)),
		bitfield.FromUint(persona.VPortWidth, uint64(a.VIngress)),
	}
	h, err := d.SW.TableAdd(persona.TblAssign, persona.ActSetProgram,
		[]sim.MatchParam{sim.Ternary(val, mask)}, args, prio)
	if err != nil {
		return fmt.Errorf("dpmu: assign: %w", err)
	}
	d.assignPEs = append(d.assignPEs, pentry{table: persona.TblAssign, handle: h})
	d.assigns = append(d.assigns, a)
	return nil
}

// PIDForPort resolves the program ID traffic on a physical ingress port is
// steered to, mirroring t_assign's priority order: a port-specific
// assignment beats the "any port" wildcard; within a tier the newest
// assignment wins, matching replace-by-reinstall usage. -1 means no
// assignment covers the port. The packet I/O runtime uses this as its shard
// key so every frame of one virtual device lands on one worker.
func (d *DPMU) PIDForPort(port int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	wildcard := -1
	for i := len(d.assigns) - 1; i >= 0; i-- {
		a := d.assigns[i]
		v, ok := d.vdevs[a.VDev]
		if !ok {
			continue
		}
		if a.PhysPort == port {
			return v.PID
		}
		if a.PhysPort == -1 && wildcard == -1 {
			wildcard = v.PID
		}
	}
	return wildcard
}

// ClearAssignments removes every port-to-device assignment (used when
// switching snapshots).
func (d *DPMU) ClearAssignments() {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	d.clearAssignments()
}

func (d *DPMU) clearAssignments() {
	d.removeRows(d.assignPEs)
	d.assignPEs = nil
	d.assigns = nil
}

// unmapVPort removes any existing virtnet routing row for a virtual egress
// port. MapVPort and LinkVPorts have replace semantics: re-mapping a port
// re-routes it rather than hitting the duplicate-key rejection in TableAdd.
func (d *DPMU) unmapVPort(v *VDev, vport int) {
	row, ok := v.vnet[vport]
	if !ok {
		return
	}
	delete(v.vnet, vport)
	_ = d.SW.TableDelete(row.table, row.handle)
	for i := range v.links {
		if v.links[i] == row {
			v.links = append(v.links[:i], v.links[i+1:]...)
			break
		}
	}
}

// MapVPort maps a virtual egress port of a device to a physical port.
// Re-mapping an already-mapped port replaces the previous route.
func (d *DPMU) MapVPort(owner, vdev string, vport, physPort int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	v, err := d.auth(owner, vdev)
	if err != nil {
		return err
	}
	params := []sim.MatchParam{
		sim.ExactUint(persona.ProgramWidth, uint64(v.PID)),
		sim.ExactUint(persona.VPortWidth, uint64(vport)),
	}
	d.unmapVPort(v, vport)
	if err := d.addRow(&v.links, persona.TblVirtnet, persona.ActPhysFwd, params,
		[]bitfield.Value{bitfield.FromUint(9, uint64(physPort))}, 0); err != nil {
		return err
	}
	v.vnet[vport] = v.links[len(v.links)-1]
	// The port now routes to a physical port; it no longer feeds a device.
	d.dropLinkSpec(vdev, vport)
	return nil
}

// LinkVPorts connects a virtual egress port of one device to the virtual
// ingress of another over a virtual link (§4.6): packets sent to fromPort by
// fromDev recirculate and re-enter the pipeline as toDev's traffic on its
// virtual port toPort. The link is one-directional; call twice for a duplex
// link.
func (d *DPMU) LinkVPorts(owner, fromDev string, fromPort int, toDev string, toPort int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	return d.linkVPorts(owner, fromDev, fromPort, toDev, toPort)
}

func (d *DPMU) linkVPorts(owner, fromDev string, fromPort int, toDev string, toPort int) error {
	from, err := d.auth(owner, fromDev)
	if err != nil {
		return err
	}
	to, ok := d.vdevs[toDev]
	if !ok {
		return fmt.Errorf("dpmu: no virtual device %q: %w", toDev, ErrNotFound)
	}
	d.unmapVPort(from, fromPort)
	if err := d.addRow(&from.links, persona.TblVirtnet, persona.ActVirtFwd,
		linkMatch(from, fromPort), linkArgs(to, toPort), 0); err != nil {
		return err
	}
	from.vnet[fromPort] = from.links[len(from.links)-1]
	d.setLinkSpec(linkSpec{fromDev: fromDev, fromPort: fromPort, toDev: toDev, toPort: toPort})
	return nil
}

// linkMatch builds the t_virtnet key for a device's virtual egress port.
func linkMatch(from *VDev, fromPort int) []sim.MatchParam {
	return []sim.MatchParam{
		sim.ExactUint(persona.ProgramWidth, uint64(from.PID)),
		sim.ExactUint(persona.VPortWidth, uint64(fromPort)),
	}
}

// linkArgs builds the a_virt_fwd args targeting a device's virtual ingress.
func linkArgs(to *VDev, toPort int) []bitfield.Value {
	return []bitfield.Value{
		bitfield.FromUint(persona.ProgramWidth, uint64(to.PID)),
		bitfield.FromUint(persona.VPortWidth, uint64(toPort)),
		bitfield.FromUint(9, 0), // harmless egress port on the way to recirculation
	}
}

// --- snapshots (§3.2) ---

// SaveSnapshot stores a named network configuration: the set of
// port-to-device assignments that should be active together. All referenced
// devices stay loaded (HyPer4 logically stores every program); activating a
// snapshot only changes the assignment entries.
func (d *DPMU) SaveSnapshot(name string, assignments []Assignment) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range assignments {
		if _, ok := d.vdevs[a.VDev]; !ok {
			return fmt.Errorf("dpmu: snapshot %q references unloaded device %q: %w", name, a.VDev, ErrNotFound)
		}
	}
	d.snapshots[name] = append([]Assignment(nil), assignments...)
	return nil
}

// ActivateSnapshot makes a stored configuration live. Per §3.2, the
// transition is a small, constant set of assignment-table updates; table
// state of every virtual device is untouched, so the swap does not disturb
// other devices' entries.
func (d *DPMU) ActivateSnapshot(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer d.rebuildFusionLocked()
	snap, ok := d.snapshots[name]
	if !ok {
		return fmt.Errorf("dpmu: no snapshot %q: %w", name, ErrNotFound)
	}
	d.clearAssignments()
	for _, a := range snap {
		v := d.vdevs[a.VDev]
		if v == nil {
			return fmt.Errorf("dpmu: snapshot %q references unloaded device %q: %w", name, a.VDev, ErrNotFound)
		}
		if err := d.assignPort(v.Owner, a); err != nil {
			return err
		}
	}
	d.active = name
	return nil
}

// ActiveSnapshot returns the name of the active snapshot ("" if none).
func (d *DPMU) ActiveSnapshot() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.active
}

// Snapshots lists stored snapshot names, sorted.
func (d *DPMU) Snapshots() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.snapshots))
	for name := range d.snapshots {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Installer returns a function with the signature the functions package
// controllers expect, routing their table population through the DPMU as
// virtual operations (Figure 2(c)).
func (d *DPMU) Installer(owner, vdev string) func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error {
	return func(table, action string, params []sim.MatchParam, args []bitfield.Value, prio int) error {
		_, err := d.TableAdd(owner, vdev, EntrySpec{
			Table: table, Action: action, Params: params, Args: args, Priority: prio,
		})
		return err
	}
}
