package dpmu

import (
	"bytes"
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// composition wires arp_proxy → firewall → router inside one persona — the
// middle switch of the paper's Example 1 configuration C (§3.2, Figure 3).
// Virtual port 10 of each device is its "next function" port.
func loadComposition(t *testing.T, d *DPMU) {
	t.Helper()
	const owner = "op"

	// ARP proxy front end.
	if _, err := d.Load("arp", compileFn(t, functions.ARPProxy), owner, 0); err != nil {
		t.Fatal(err)
	}
	ac := functions.NewARPControllerFunc(d.Installer(owner, "arp"))
	if err := ac.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ac.AddProxiedHost(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	// All switched (non-ARP-request) traffic goes to the next function.
	if err := ac.AddHost(mac1, 10); err != nil {
		t.Fatal(err)
	}
	if err := ac.AddHost(mac2, 10); err != nil {
		t.Fatal(err)
	}

	// Firewall in the middle, blocking TCP 5201.
	if _, err := d.Load("fw", compileFn(t, functions.Firewall), owner, 0); err != nil {
		t.Fatal(err)
	}
	fc := functions.NewFirewallControllerFunc(d.Installer(owner, "fw"))
	if err := fc.BlockTCPDstPort(5201); err != nil {
		t.Fatal(err)
	}
	if err := fc.AddHost(mac1, 10); err != nil {
		t.Fatal(err)
	}
	if err := fc.AddHost(mac2, 10); err != nil {
		t.Fatal(err)
	}

	// Router at the back.
	if _, err := d.Load("r", compileFn(t, functions.Router), owner, 0); err != nil {
		t.Fatal(err)
	}
	rc := functions.NewRouterControllerFunc(d.Installer(owner, "r"))
	if err := rc.Init(); err != nil {
		t.Fatal(err)
	}
	if err := rc.AddRoute(ip1, 32, ip1, 1); err != nil {
		t.Fatal(err)
	}
	if err := rc.AddRoute(ip2, 32, ip2, 2); err != nil {
		t.Fatal(err)
	}
	if err := rc.AddNextHop(ip1, mac1); err != nil {
		t.Fatal(err)
	}
	if err := rc.AddNextHop(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	if err := rc.AddPortMAC(1, pkt.MustMAC("aa:aa:aa:aa:aa:01")); err != nil {
		t.Fatal(err)
	}
	if err := rc.AddPortMAC(2, pkt.MustMAC("aa:aa:aa:aa:aa:02")); err != nil {
		t.Fatal(err)
	}

	// Wiring: physical ports feed the ARP proxy; virtual links chain the
	// functions; the router owns the physical egress mapping.
	for _, port := range []int{1, 2} {
		if err := d.AssignPort(owner, Assignment{PhysPort: port, VDev: "arp", VIngress: port}); err != nil {
			t.Fatal(err)
		}
		// ARP replies exit the virtual ingress port directly.
		if err := d.MapVPort(owner, "arp", port, port); err != nil {
			t.Fatal(err)
		}
		if err := d.MapVPort(owner, "r", port, port); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.LinkVPorts(owner, "arp", 10, "fw", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.LinkVPorts(owner, "fw", 10, "r", 1); err != nil {
		t.Fatal(err)
	}
}

func TestCompositionPingPassCounts(t *testing.T) {
	d := newPersonaDPMU(t)
	loadComposition(t, d)
	ping := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: ip1, Dst: ip2},
		&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 1, Seq: 1},
	))
	out, tr, err := d.SW.Process(ping, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("ping should route out port 2: %+v (tables %v)", out, tr.Tables)
	}
	// §6.4: "pings incur a total of two recirculations and two resubmits".
	if tr.Recirculates != 2 {
		t.Errorf("recirculations = %d, want 2 (paper §6.4)", tr.Recirculates)
	}
	if tr.Resubmits != 2 {
		t.Errorf("resubmits = %d, want 2 (paper §6.4)", tr.Resubmits)
	}
	// The router decremented TTL and rewrote MACs.
	eth, rest, _ := pkt.DecodeEthernet(out[0].Data)
	if eth.Dst != mac2 || eth.Src != pkt.MustMAC("aa:aa:aa:aa:aa:02") {
		t.Errorf("MACs after composition: %v -> %v", eth.Src, eth.Dst)
	}
	ip, _, err := pkt.DecodeIPv4(rest)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d, want 63", ip.TTL)
	}
	if pkt.Checksum(rest[:20]) != 0 {
		t.Error("IPv4 checksum invalid after composition")
	}
}

func TestCompositionTCPPassCounts(t *testing.T) {
	d := newPersonaDPMU(t)
	loadComposition(t, d)
	frame := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 4000, DstPort: 80},
		pkt.Payload("GET /"),
	))
	out, tr, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("allowed TCP should route: %+v", out)
	}
	// §6.4: "TCP packets result in a total of two recirculations and three
	// resubmits".
	if tr.Recirculates != 2 {
		t.Errorf("recirculations = %d, want 2 (paper §6.4)", tr.Recirculates)
	}
	if tr.Resubmits != 3 {
		t.Errorf("resubmits = %d, want 3 (paper §6.4)", tr.Resubmits)
	}

	// Blocked port dies in the middle of the chain.
	blocked := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ip1, Dst: ip2},
		&pkt.TCP{SrcPort: 4000, DstPort: 5201},
	))
	out, _, err = d.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("blocked TCP should drop inside the chain: %+v", out)
	}
}

func TestCompositionARPAnsweredUpFront(t *testing.T) {
	d := newPersonaDPMU(t)
	loadComposition(t, d)
	req := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: mac1, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: mac1, SenderIP: ip1, TargetIP: ip2},
	))
	out, tr, err := d.SW.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("ARP reply should exit the ingress port without touching the chain: %+v", out)
	}
	if tr.Recirculates != 0 {
		t.Errorf("ARP requests should not traverse the virtual network: %d recirculations", tr.Recirculates)
	}
	if _, _, err := pkt.DecodeEthernet(out[0].Data); err != nil {
		t.Fatal(err)
	}
}

// TestSlicing splits one persona between two independent L2 switches — the
// paper's Example Two (§3.3): ports 1–2 are one device, ports 3–4 another.
func TestSlicing(t *testing.T) {
	d := newPersonaDPMU(t)
	const owner = "op"
	macs := []pkt.MAC{
		pkt.MustMAC("00:00:00:00:00:01"), pkt.MustMAC("00:00:00:00:00:02"),
		pkt.MustMAC("00:00:00:00:00:03"), pkt.MustMAC("00:00:00:00:00:04"),
	}
	for i, name := range []string{"slice_a", "slice_b"} {
		if _, err := d.Load(name, compileFn(t, functions.L2Switch), owner, 0); err != nil {
			t.Fatal(err)
		}
		c := functions.NewL2ControllerFunc(d.Installer(owner, name))
		for j := 0; j < 2; j++ {
			port := i*2 + j + 1
			if err := c.AddHost(macs[i*2+j], port); err != nil {
				t.Fatal(err)
			}
			if err := d.AssignPort(owner, Assignment{PhysPort: port, VDev: name, VIngress: port}); err != nil {
				t.Fatal(err)
			}
			if err := d.MapVPort(owner, name, port, port); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Slice A: h1 → h2 works.
	f12 := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: macs[1], Src: macs[0], EtherType: 0x0800}))
	out, _, err := d.SW.Process(f12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("slice A forward: %+v", out)
	}
	// Slice B: h3 → h4 works.
	f34 := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: macs[3], Src: macs[2], EtherType: 0x0800}))
	out, _, err = d.SW.Process(f34, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 4 {
		t.Fatalf("slice B forward: %+v", out)
	}
	// Cross-slice leakage: a frame for h4 arriving on slice A's port is
	// dropped — slice A has no entry for h4's MAC.
	cross := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: macs[3], Src: macs[0], EtherType: 0x0800}))
	out, _, err = d.SW.Process(cross, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("slices must be isolated: %+v", out)
	}
}

// TestSnapshots stores two device configurations and hot-swaps between them
// (the paper's Example One, §3.2).
func TestSnapshots(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "l2", "op2")
	loadFirewall(t, d, "fw", "op2")
	d.ClearAssignments()

	if err := d.SaveSnapshot("A", []Assignment{
		{PhysPort: 1, VDev: "l2", VIngress: 1}, {PhysPort: 2, VDev: "l2", VIngress: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveSnapshot("B", []Assignment{
		{PhysPort: 1, VDev: "fw", VIngress: 1}, {PhysPort: 2, VDev: "fw", VIngress: 2},
	}); err != nil {
		t.Fatal(err)
	}

	blocked := tcpFrame(5201) // the firewall blocks this; the L2 switch does not

	if err := d.ActivateSnapshot("A"); err != nil {
		t.Fatal(err)
	}
	if d.ActiveSnapshot() != "A" {
		t.Errorf("active = %q", d.ActiveSnapshot())
	}
	out, _, err := d.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("under snapshot A (L2) the frame should pass: %+v", out)
	}

	if err := d.ActivateSnapshot("B"); err != nil {
		t.Fatal(err)
	}
	out, _, err = d.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("under snapshot B (firewall) the frame should drop: %+v", out)
	}

	// And back, without reloading anything.
	if err := d.ActivateSnapshot("A"); err != nil {
		t.Fatal(err)
	}
	out, _, err = d.SW.Process(blocked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("back on snapshot A the frame should pass again: %+v", out)
	}

	if err := d.ActivateSnapshot("nope"); err == nil {
		t.Error("unknown snapshot should error")
	}
	if got := d.Snapshots(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("snapshots = %v", got)
	}
}

// TestIsolation exercises the DPMU's §4.5 mechanisms: ownership checks and
// entry quotas.
func TestIsolation(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.L2Switch)
	if _, err := d.Load("tenant1", comp, "alice", 2); err != nil {
		t.Fatal(err)
	}
	// Wrong owner is rejected.
	if _, err := d.TableAdd("mallory", "tenant1", EntrySpec{Table: "dmac", Action: "forward"}); err == nil {
		t.Error("foreign owner should be rejected")
	}
	if err := d.Unload("mallory", "tenant1"); err == nil {
		t.Error("foreign unload should be rejected")
	}
	// Quota: third entry is rejected.
	c := functions.NewL2ControllerFunc(d.Installer("alice", "tenant1"))
	if err := c.AddHost(mac1, 1); err != nil { // smac+dmac = 2 entries
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err == nil {
		t.Error("quota of 2 should reject the third entry")
	}
	v, err := d.VDev("tenant1")
	if err != nil {
		t.Fatal(err)
	}
	if v.EntryCount() != 2 {
		t.Errorf("entry count = %d", v.EntryCount())
	}
}

// TestUnloadIsolation verifies removing one device leaves another running —
// the paper's live-update property.
func TestUnloadIsolation(t *testing.T) {
	d := newPersonaDPMU(t)
	loadL2(t, d, "keep", "a")
	comp := compileFn(t, functions.Firewall)
	if _, err := d.Load("gone", comp, "b", 0); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	out, _, err := d.SW.Process(frame, 1)
	if err != nil || len(out) != 1 {
		t.Fatalf("before unload: %+v, %v", out, err)
	}
	if err := d.Unload("b", "gone"); err != nil {
		t.Fatal(err)
	}
	out, _, err = d.SW.Process(frame, 1)
	if err != nil || len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("after unload the surviving device must still work: %+v, %v", out, err)
	}
	if names := d.VDevs(); len(names) != 1 || names[0] != "keep" {
		t.Errorf("vdevs = %v", names)
	}
}

func TestLoadErrors(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.L2Switch)
	if _, err := d.Load("x", comp, "a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("x", comp, "a", 0); err == nil {
		t.Error("duplicate load should error")
	}
	if _, err := d.VDev("ghost"); err == nil {
		t.Error("unknown vdev should error")
	}
	var zero bytes.Buffer
	_ = zero
}

// TestTableModify rebinds a virtual entry in place: the L2 switch's
// destination moves from port 2 to port 7 without a delete/add gap.
func TestTableModify(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.L2Switch)
	if _, err := d.Load("l2", comp, "op", 0); err != nil {
		t.Fatal(err)
	}
	macVal := bitfield.FromBytes(48, mac2[:])
	h, err := d.TableAdd("op", "l2", EntrySpec{Table: "dmac", Action: "forward",
		Params: []sim.MatchParam{sim.Exact(macVal)}, Args: []bitfield.Value{bitfield.FromUint(9, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.TableAdd("op", "l2", EntrySpec{Table: "smac", Action: "_nop",
		Params: []sim.MatchParam{sim.Exact(bitfield.FromBytes(48, mac1[:]))}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", Assignment{PhysPort: -1, VDev: "l2", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 7} {
		if err := d.MapVPort("op", "l2", p, p); err != nil {
			t.Fatal(err)
		}
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	out, _, err := d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("before modify: %+v", out)
	}
	if err := d.TableModify("op", "l2", h, EntrySpec{Table: "dmac", Action: "forward",
		Params: []sim.MatchParam{sim.Exact(macVal)}, Args: []bitfield.Value{bitfield.FromUint(9, 7)}}); err != nil {
		t.Fatal(err)
	}
	out, _, err = d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 7 {
		t.Fatalf("after modify: %+v", out)
	}
	// Rebinding to _drop works too.
	if err := d.TableModify("op", "l2", h, EntrySpec{Table: "dmac", Action: "_drop",
		Params: []sim.MatchParam{sim.Exact(macVal)}}); err != nil {
		t.Fatal(err)
	}
	out, _, err = d.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("after drop rebind: %+v", out)
	}
	// Errors.
	if err := d.TableModify("op", "l2", 999, EntrySpec{Table: "dmac", Action: "_drop"}); err == nil {
		t.Error("bad handle should error")
	}
	if err := d.TableModify("op", "l2", h, EntrySpec{Table: "dmac", Action: "ghost"}); err == nil {
		t.Error("unknown action should error")
	}
	if err := d.TableModify("mallory", "l2", h, EntrySpec{Table: "dmac", Action: "_drop"}); err == nil {
		t.Error("foreign modify should error")
	}
}

// TestVirtualNetworkLoopIsBounded wires a virtual link cycle (A → B → A).
// The switch's pass bound must terminate the packet with an error rather
// than spinning forever — the §4.5 ingress-buffer hazard in its most
// extreme form.
func TestVirtualNetworkLoopIsBounded(t *testing.T) {
	d := newPersonaDPMU(t)
	comp := compileFn(t, functions.L2Switch)
	for _, name := range []string{"a", "b"} {
		if _, err := d.Load(name, comp, "op", 0); err != nil {
			t.Fatal(err)
		}
		c := functions.NewL2ControllerFunc(d.Installer("op", name))
		if err := c.AddHost(mac2, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AssignPort("op", Assignment{PhysPort: 1, VDev: "a", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.LinkVPorts("op", "a", 10, "b", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.LinkVPorts("op", "b", 10, "a", 1); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac2, Src: mac1, EtherType: 0x0800}))
	if _, _, err := d.SW.Process(frame, 1); err == nil {
		t.Fatal("virtual-network loop should hit the pass bound and error")
	}
	// The switch survives: other traffic still flows.
	if err := d.MapVPort("op", "a", 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TableAdd("op", "a", EntrySpec{Table: "dmac", Action: "forward",
		Params: []sim.MatchParam{sim.Exact(bitfield.FromBytes(48, mac1[:]))},
		Args:   []bitfield.Value{bitfield.FromUint(9, 2)}}); err != nil {
		t.Fatal(err)
	}
	ok := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: mac1, Src: mac2, EtherType: 0x0800}))
	out, _, err := d.SW.Process(ok, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("switch should keep working after the loop error: %+v", out)
	}
}
