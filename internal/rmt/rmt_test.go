package rmt

import (
	"testing"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

func TestPHVWithinRMT(t *testing.T) {
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	u := AnalyzePHV(p.Program, RMT)
	if u.Extracted != 800 || u.Emeta != 256 {
		t.Errorf("wide fields: %+v", u)
	}
	// Paper: 3312 bits total (800 + 256 + 2256 overhead). Our persona's
	// overhead differs in detail but must stay within the 4096-bit PHV.
	if u.Total > RMT.PHVBits {
		t.Errorf("PHV total %d exceeds RMT's %d (paper fits at 3312)", u.Total, RMT.PHVBits)
	}
	if u.Overhead < 1000 {
		t.Errorf("overhead suspiciously low: %+v", u)
	}
	t.Logf("PHV usage: extracted=%d emeta=%d overhead=%d total=%d (paper: 800/256/2256/3312)",
		u.Extracted, u.Emeta, u.Overhead, u.Total)
}

// TestARPProxyExceedsRMTStages reproduces §6.5's conclusion: the emulated
// ARP proxy's most complex packet needs more physical ingress stages than
// RMT's 32 (the paper finds 51, about 60% over).
func TestARPProxyExceedsRMTStages(t *testing.T) {
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("hp4", p.Program)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dpmu.New(sw, p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := functions.Load(functions.ARPProxy)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := hp4c.Compile(prog, persona.Reference)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("arp", comp, "op", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewARPControllerFunc(d.Installer("op", "arp"))
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	ip2 := pkt.MustIP4("10.0.0.2")
	mac2 := pkt.MustMAC("00:00:00:00:00:02")
	if err := c.AddProxiedHost(ip2, mac2); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("op", dpmu.Assignment{PhysPort: -1, VDev: "arp", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.MapVPort("op", "arp", 1, 1); err != nil {
		t.Fatal(err)
	}
	req := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: pkt.MustMAC("00:00:00:00:00:01"), EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: pkt.MustMAC("00:00:00:00:00:01"), SenderIP: pkt.MustIP4("10.0.0.1"), TargetIP: ip2},
	))
	_, tr, err := sw.Process(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeTrace(sw, tr, RMT)
	if err != nil {
		t.Fatal(err)
	}
	if !a.FitsPHV {
		t.Errorf("PHV should fit RMT: %+v", a.PHV)
	}
	if a.FitsIngressStages {
		t.Errorf("ARP proxy should exceed RMT's 32 ingress stages (paper: 51); got %d", a.IngressPhys)
	}
	if a.IngressPhys <= a.IngressHP4Stages {
		t.Errorf("wide ternary matches should expand stages: phys=%d hp4=%d", a.IngressPhys, a.IngressHP4Stages)
	}
	t.Logf("arp_proxy: hp4 ingress stages=%d, physical=%d (paper: 46 → 51), egress=%d/%d, over budget %.0f%%",
		a.IngressHP4Stages, a.IngressPhys, a.EgressHP4Stages, a.EgressPhys, a.IngressOverPct)
}

func TestPhysStagesArithmetic(t *testing.T) {
	// §6.5's example: an 800-bit ternary match costs 1600 TCAM bits, which
	// needs three 640-bit physical stages.
	c := TableCost{TCAMBits: 1600}
	if got := physStages(c, RMT); got != 3 {
		t.Errorf("1600 TCAM bits = %d stages, want 3", got)
	}
	if got := physStages(TableCost{SRAMBits: 48}, RMT); got != 1 {
		t.Errorf("small exact = %d stages, want 1", got)
	}
	if got := physStages(TableCost{}, RMT); got != 1 {
		t.Errorf("matchless = %d stages, want 1", got)
	}
	if got := physStages(TableCost{SRAMBits: 641}, RMT); got != 2 {
		t.Errorf("641 SRAM bits = %d stages, want 2", got)
	}
}
