// Package rmt reproduces the paper's §6.5 analysis: can a realistic
// RMT-style ASIC run HyPer4? The analysis compares the persona's packet
// header vector (PHV) demand to RMT's 4096-bit PHV, and the number of
// physical match-action stages a program's most complex packet needs to
// RMT's 32+32 stages — accounting for HyPer4 match-action stages whose
// ternary match exceeds one physical stage's 640-bit TCAM capacity.
package rmt

import (
	"fmt"

	"hyper4/internal/core/persona"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/sim"
)

// Spec describes an RMT-like target.
type Spec struct {
	Name          string
	PHVBits       int
	IngressStages int
	EgressStages  int
	SRAMMatchBits int // per-stage exact-match width
	TCAMMatchBits int // per-stage ternary width (mask bits count double)
}

// RMT is the chip described in the paper's reference [12], as §6.5 cites it.
var RMT = Spec{
	Name:          "RMT",
	PHVBits:       4096,
	IngressStages: 32,
	EgressStages:  32,
	SRAMMatchBits: 640,
	TCAMMatchBits: 640,
}

// PHVUsage breaks down the persona's packet-header-vector demand.
type PHVUsage struct {
	Extracted int // the wide extracted-data field
	Emeta     int // the wide emulated-metadata field
	Overhead  int // control metadata + scratch + standard metadata
	Total     int
}

// TableCost is the physical cost of one applied persona table.
type TableCost struct {
	Table      string
	Egress     bool
	SRAMBits   int
	TCAMBits   int // value+mask bits
	PhysStages int
}

// Analysis is the full §6.5 result for one program's most complex packet.
type Analysis struct {
	Spec Spec
	PHV  PHVUsage

	IngressHP4Stages int // persona tables applied in ingress
	EgressHP4Stages  int
	IngressPhys      int // physical stages after width expansion
	EgressPhys       int
	Tables           []TableCost

	FitsPHV           bool
	FitsIngressStages bool
	// IngressOverPct is how far over (or under, negative) the ingress
	// stage budget the requirement lands, in percent.
	IngressOverPct float64
}

// AnalyzePHV computes the PHV breakdown for a persona program.
func AnalyzePHV(p *hlir.Program, spec Spec) PHVUsage {
	var u PHVUsage
	for name, inst := range p.Instances {
		if !inst.Decl.Metadata {
			continue
		}
		w := inst.Width()
		switch name {
		case persona.InstData:
			// Split the data instance into its two fields.
			if f := inst.Type.Field("extracted"); f != nil {
				u.Extracted = f.Width
			}
			if f := inst.Type.Field("emeta"); f != nil {
				u.Emeta = f.Width
			}
			u.Overhead += w - u.Extracted - u.Emeta
		default:
			u.Overhead += w
		}
	}
	u.Total = u.Extracted + u.Emeta + u.Overhead
	return u
}

// AnalyzeTrace computes the physical stage requirement for one packet trace
// on a switch (typically the persona emulating a program's most complex
// packet, per Table 1).
func AnalyzeTrace(sw *sim.Switch, tr *sim.Trace, spec Spec) (*Analysis, error) {
	a := &Analysis{Spec: spec, PHV: AnalyzePHV(sw.Program(), spec)}
	for _, ap := range tr.ApplyLog {
		reads, err := sw.TableReads(ap.Table)
		if err != nil {
			return nil, fmt.Errorf("rmt: %w", err)
		}
		cost := TableCost{Table: ap.Table, Egress: ap.Egress}
		for _, r := range reads {
			switch r.Kind {
			case ast.MatchExact, ast.MatchValid:
				cost.SRAMBits += r.Width
			default:
				// Ternary (and LPM/range realized in TCAM): value + mask.
				cost.TCAMBits += 2 * r.Width
			}
		}
		cost.PhysStages = physStages(cost, spec)
		a.Tables = append(a.Tables, cost)
		if ap.Egress {
			a.EgressHP4Stages++
			a.EgressPhys += cost.PhysStages
		} else {
			a.IngressHP4Stages++
			a.IngressPhys += cost.PhysStages
		}
	}
	a.FitsPHV = a.PHV.Total <= spec.PHVBits
	a.FitsIngressStages = a.IngressPhys <= spec.IngressStages
	a.IngressOverPct = 100 * (float64(a.IngressPhys)/float64(spec.IngressStages) - 1)
	return a, nil
}

// physStages returns how many physical stages one table application needs:
// the wider of its SRAM and TCAM demand, each divided by the per-stage
// capacity (§6.5: a 1600-bit TCAM match needs three 640-bit stages).
func physStages(c TableCost, spec Spec) int {
	n := 1
	if s := ceilDiv(c.SRAMBits, spec.SRAMMatchBits); s > n {
		n = s
	}
	if t := ceilDiv(c.TCAMBits, spec.TCAMMatchBits); t > n {
		n = t
	}
	return n
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
