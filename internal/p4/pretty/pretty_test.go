package pretty

import (
	"strings"
	"testing"

	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
)

const sample = `
header_type ethernet_t { fields { dstAddr : 48; srcAddr : 48; etherType : 16; } }
header_type u_t { fields { b : 8; } }
header ethernet_t ethernet;
header u_t stack[4];
metadata u_t m;
field_list fl { m.b; payload; }
field_list_calculation csum { input { fl; } algorithm : csum16; output_width : 16; }
calculated_field ethernet.etherType { update csum if (valid(ethernet)); }
register r { width : 8; instance_count : 2; }
counter c { type : packets; instance_count : 2; }
meter mt { type : bytes; instance_count : 2; }
parser start {
    extract(ethernet);
    set_metadata(m.b, 1);
    return select(latest.etherType, current(0, 8)) {
        0x0800, 0x45 mask 0xf0 : next_state;
        default : ingress;
    }
}
parser next_state { extract(stack[next]); return ingress; }
action fwd(port) { modify_field(standard_metadata.egress_spec, port); }
action cond() { no_op(); }
table t1 {
    reads { ethernet.dstAddr : exact; valid(stack[0]) : exact; m.b : ternary; }
    actions { fwd; cond; }
    default_action : cond;
    size : 128;
}
control ingress {
    if ((m.b == 1) and (valid(ethernet))) {
        apply(t1) {
            fwd { helper(); }
            miss { }
        }
    } else {
        apply(t1);
    }
}
control helper { apply(t1); }
`

// TestRoundTrip parses, prints, re-parses, re-prints, and requires the two
// printed forms to be identical (print is a fixpoint under parse∘print).
func TestRoundTrip(t *testing.T) {
	p1, err := parser.Parse("sample", sample)
	if err != nil {
		t.Fatal(err)
	}
	out1 := Print(p1)
	p2, err := parser.Parse("printed", out1)
	if err != nil {
		t.Fatalf("printed source does not re-parse: %v\n%s", err, out1)
	}
	out2 := Print(p2)
	if out1 != out2 {
		t.Errorf("print is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	// The re-parsed program must also resolve.
	if _, err := hlir.Resolve(p2); err != nil {
		t.Errorf("printed source does not resolve: %v", err)
	}
}

func TestCountLoC(t *testing.T) {
	if n := CountLoC("a\n\nb\n   \nc\n"); n != 3 {
		t.Errorf("CountLoC = %d, want 3", n)
	}
	if n := CountLoC(""); n != 0 {
		t.Errorf("CountLoC empty = %d", n)
	}
}

func TestPrintContainsConstructs(t *testing.T) {
	p, err := parser.Parse("sample", sample)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p)
	for _, want := range []string{
		"header u_t stack[4];",
		"metadata u_t m;",
		"extract(stack[next]);",
		"set_metadata(m.b, 0x1);",
		"current(0, 8)",
		"mask 0xf0",
		"valid(stack[0]) : exact;",
		"default_action : cond;",
		"size : 128;",
		"update csum if (valid(ethernet));",
		"payload;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q\n%s", want, out)
		}
	}
}
