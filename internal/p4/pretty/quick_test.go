package pretty

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
)

// randProgram builds a random but well-formed P4 program: a few header
// types, instances, a linear parser, actions over random fields, and tables
// wired into a simple control.
func randProgram(r *rand.Rand) *ast.Program {
	p := &ast.Program{Name: "random"}
	nTypes := 1 + r.Intn(3)
	for i := 0; i < nTypes; i++ {
		ht := &ast.HeaderType{Name: fmt.Sprintf("t%d", i)}
		nFields := 1 + r.Intn(4)
		for j := 0; j < nFields; j++ {
			// Byte-aligned widths so header instances are legal.
			ht.Fields = append(ht.Fields, ast.FieldDecl{
				Name:  fmt.Sprintf("f%d", j),
				Width: 8 * (1 + r.Intn(6)),
			})
		}
		p.HeaderTypes = append(p.HeaderTypes, ht)
	}
	nInst := 1 + r.Intn(3)
	for i := 0; i < nInst; i++ {
		p.Instances = append(p.Instances, &ast.Instance{
			Name:     fmt.Sprintf("h%d", i),
			TypeName: p.HeaderTypes[r.Intn(len(p.HeaderTypes))].Name,
			Metadata: i == 0 && r.Intn(2) == 0,
		})
	}
	// A linear parser over the non-metadata instances.
	var stmts []ast.ParserStmt
	for _, inst := range p.Instances {
		if !inst.Metadata {
			stmts = append(stmts, ast.ParserStmt{
				Extract: &ast.HeaderRef{Instance: inst.Name, Index: ast.IndexNone},
			})
		}
	}
	p.ParserStates = append(p.ParserStates, &ast.ParserState{
		Name:       "start",
		Statements: stmts,
		Return:     ast.ParserReturn{Kind: ast.ReturnDirect, State: ast.StateIngress},
	})
	// Random actions: modify a random field with a random constant.
	randField := func() ast.FieldRef {
		inst := p.Instances[r.Intn(len(p.Instances))]
		var ht *ast.HeaderType
		for _, t := range p.HeaderTypes {
			if t.Name == inst.TypeName {
				ht = t
			}
		}
		f := ht.Fields[r.Intn(len(ht.Fields))]
		return ast.FieldRef{Instance: inst.Name, Index: ast.IndexNone, Field: f.Name}
	}
	nActs := 1 + r.Intn(3)
	for i := 0; i < nActs; i++ {
		a := &ast.Action{Name: fmt.Sprintf("a%d", i)}
		nPrims := 1 + r.Intn(3)
		for j := 0; j < nPrims; j++ {
			a.Body = append(a.Body, ast.PrimitiveCall{
				Name: "modify_field",
				Args: []ast.Expr{
					{Kind: ast.ExprField, Field: randField()},
					{Kind: ast.ExprConst, Const: big.NewInt(int64(r.Intn(1 << 16)))},
				},
			})
		}
		p.Actions = append(p.Actions, a)
	}
	nTbls := 1 + r.Intn(3)
	kinds := []ast.MatchKind{ast.MatchExact, ast.MatchTernary, ast.MatchLPM}
	for i := 0; i < nTbls; i++ {
		ref := randField()
		t := &ast.Table{
			Name:    fmt.Sprintf("tbl%d", i),
			Reads:   []ast.ReadEntry{{Field: &ref, Match: kinds[r.Intn(len(kinds))]}},
			Actions: []string{p.Actions[r.Intn(len(p.Actions))].Name},
			Size:    1 << (1 + r.Intn(8)),
		}
		p.Tables = append(p.Tables, t)
	}
	var body []ast.Stmt
	for _, t := range p.Tables {
		body = append(body, ast.Stmt{Kind: ast.StmtApply, Table: t.Name})
	}
	p.Controls = append(p.Controls, &ast.Control{Name: ast.ControlIngress, Body: body})
	return p
}

// TestQuickPrintParseFixpoint: for random well-formed programs, the printed
// source re-parses, resolves, and re-prints identically.
func TestQuickPrintParseFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randProgram(r)
		out1 := Print(prog)
		reparsed, err := parser.Parse("rand", out1)
		if err != nil {
			t.Logf("seed %d: printed source does not parse: %v\n%s", seed, err, out1)
			return false
		}
		if _, err := hlir.Resolve(reparsed); err != nil {
			t.Logf("seed %d: printed source does not resolve: %v", seed, err)
			return false
		}
		out2 := Print(reparsed)
		if out1 != out2 {
			t.Logf("seed %d: print not a fixpoint", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
