package pretty

import (
	"testing"

	"hyper4/internal/functions"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
)

// TestFunctionsRoundTrip parses each of the paper's network functions,
// prints them, re-parses, and verifies the result still resolves with the
// same structure — the printer and parser agree on real programs.
func TestFunctionsRoundTrip(t *testing.T) {
	for name, src := range functions.Sources {
		t.Run(name, func(t *testing.T) {
			p1, err := parser.Parse(name, src)
			if err != nil {
				t.Fatal(err)
			}
			printed := Print(p1)
			p2, err := parser.Parse(name+"_printed", printed)
			if err != nil {
				t.Fatalf("printed source does not re-parse: %v", err)
			}
			if Print(p2) != printed {
				t.Error("print is not a fixpoint")
			}
			h1, err := hlir.Resolve(p1)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := hlir.Resolve(p2)
			if err != nil {
				t.Fatalf("printed source does not resolve: %v", err)
			}
			if len(h1.Tables) != len(h2.Tables) || len(h1.Actions) != len(h2.Actions) ||
				len(h1.States) != len(h2.States) {
				t.Errorf("structure changed: tables %d/%d actions %d/%d states %d/%d",
					len(h1.Tables), len(h2.Tables), len(h1.Actions), len(h2.Actions),
					len(h1.States), len(h2.States))
			}
			if len(h1.HeaderOrder) != len(h2.HeaderOrder) {
				t.Errorf("header order changed: %v vs %v", h1.HeaderOrder, h2.HeaderOrder)
			}
		})
	}
}

func TestLoCOfFunctions(t *testing.T) {
	// Sanity: the four functions are small programs, far below the persona.
	for name, src := range functions.Sources {
		loc := CountLoC(src)
		if loc < 20 || loc > 400 {
			t.Errorf("%s LoC = %d, outside plausible range", name, loc)
		}
	}
}
