// Package pretty renders a P4 AST back to P4_14 source text. The persona
// generator emits its program through this package, which both keeps the
// generator honest (its output is re-parsed by our own front end) and lets
// the Figure 7 experiment count generated lines of code.
package pretty

import (
	"fmt"
	"strings"

	"hyper4/internal/p4/ast"
)

// Print renders a whole program.
func Print(p *ast.Program) string {
	var b strings.Builder
	for _, ht := range p.HeaderTypes {
		printHeaderType(&b, ht)
	}
	for _, inst := range p.Instances {
		printInstance(&b, inst)
	}
	if len(p.Instances) > 0 {
		b.WriteString("\n")
	}
	for _, fl := range p.FieldLists {
		printFieldList(&b, fl)
	}
	for _, c := range p.FieldListCalcs {
		printCalc(&b, c)
	}
	for _, cf := range p.CalculatedFields {
		printCalculatedField(&b, cf)
	}
	for _, r := range p.Registers {
		printRegister(&b, r)
	}
	for _, c := range p.Counters {
		printCounter(&b, c)
	}
	for _, m := range p.Meters {
		printMeter(&b, m)
	}
	for _, st := range p.ParserStates {
		printParserState(&b, st)
	}
	for _, a := range p.Actions {
		printAction(&b, a)
	}
	for _, t := range p.Tables {
		printTable(&b, t)
	}
	for _, c := range p.Controls {
		printControl(&b, c)
	}
	return b.String()
}

// CountLoC counts non-blank lines, the measure Figure 7 reports.
func CountLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

func printHeaderType(b *strings.Builder, ht *ast.HeaderType) {
	fmt.Fprintf(b, "header_type %s {\n    fields {\n", ht.Name)
	for _, f := range ht.Fields {
		fmt.Fprintf(b, "        %s : %d;\n", f.Name, f.Width)
	}
	b.WriteString("    }\n}\n\n")
}

func printInstance(b *strings.Builder, inst *ast.Instance) {
	kw := "header"
	if inst.Metadata {
		kw = "metadata"
	}
	if inst.IsStack() {
		fmt.Fprintf(b, "%s %s %s[%d];\n", kw, inst.TypeName, inst.Name, inst.Count)
	} else {
		fmt.Fprintf(b, "%s %s %s;\n", kw, inst.TypeName, inst.Name)
	}
}

func printFieldList(b *strings.Builder, fl *ast.FieldList) {
	fmt.Fprintf(b, "field_list %s {\n", fl.Name)
	for _, e := range fl.Entries {
		switch {
		case e.Payload:
			b.WriteString("    payload;\n")
		case e.SubList != "":
			fmt.Fprintf(b, "    %s;\n", e.SubList)
		case e.Field != nil:
			fmt.Fprintf(b, "    %s;\n", fieldRef(*e.Field))
		}
	}
	b.WriteString("}\n\n")
}

func printCalc(b *strings.Builder, c *ast.FieldListCalc) {
	fmt.Fprintf(b, "field_list_calculation %s {\n    input {\n        %s;\n    }\n    algorithm : %s;\n    output_width : %d;\n}\n\n",
		c.Name, c.Input, c.Algorithm, c.OutputWidth)
}

func printCalculatedField(b *strings.Builder, cf *ast.CalculatedField) {
	fmt.Fprintf(b, "calculated_field %s {\n", fieldRef(cf.Field))
	for _, vu := range []struct{ verb, calc string }{{"verify", cf.Verify}, {"update", cf.Update}} {
		if vu.calc == "" {
			continue
		}
		fmt.Fprintf(b, "    %s %s", vu.verb, vu.calc)
		if cf.IfValid != nil {
			fmt.Fprintf(b, " if (valid(%s))", headerRef(*cf.IfValid))
		}
		b.WriteString(";\n")
	}
	b.WriteString("}\n\n")
}

func printRegister(b *strings.Builder, r *ast.Register) {
	fmt.Fprintf(b, "register %s {\n    width : %d;\n    instance_count : %d;\n", r.Name, r.Width, r.InstanceCount)
	if r.DirectTable != "" {
		fmt.Fprintf(b, "    direct : %s;\n", r.DirectTable)
	}
	b.WriteString("}\n\n")
}

func printCounter(b *strings.Builder, c *ast.Counter) {
	fmt.Fprintf(b, "counter %s {\n    type : %s;\n    instance_count : %d;\n", c.Name, c.Kind, c.InstanceCount)
	if c.DirectTable != "" {
		fmt.Fprintf(b, "    direct : %s;\n", c.DirectTable)
	}
	b.WriteString("}\n\n")
}

func printMeter(b *strings.Builder, m *ast.Meter) {
	fmt.Fprintf(b, "meter %s {\n    type : %s;\n    instance_count : %d;\n", m.Name, m.Kind, m.InstanceCount)
	if m.DirectTable != "" {
		fmt.Fprintf(b, "    direct : %s;\n", m.DirectTable)
	}
	b.WriteString("}\n\n")
}

func printParserState(b *strings.Builder, st *ast.ParserState) {
	fmt.Fprintf(b, "parser %s {\n", st.Name)
	for _, s := range st.Statements {
		if s.Extract != nil {
			fmt.Fprintf(b, "    extract(%s);\n", headerRef(*s.Extract))
		} else {
			fmt.Fprintf(b, "    set_metadata(%s, %s);\n", fieldRef(s.SetField), expr(s.SetValue))
		}
	}
	switch st.Return.Kind {
	case ast.ReturnDirect:
		fmt.Fprintf(b, "    return %s;\n", st.Return.State)
	case ast.ReturnSelect:
		keys := make([]string, len(st.Return.SelectKeys))
		for i, k := range st.Return.SelectKeys {
			switch {
			case k.IsCurrent:
				keys[i] = fmt.Sprintf("current(%d, %d)", k.CurrentOffset, k.CurrentWidth)
			case k.Latest != "":
				keys[i] = "latest." + k.Latest
			default:
				keys[i] = fieldRef(*k.Field)
			}
		}
		fmt.Fprintf(b, "    return select(%s) {\n", strings.Join(keys, ", "))
		for _, c := range st.Return.Cases {
			if c.Default {
				fmt.Fprintf(b, "        default : %s;\n", c.State)
				continue
			}
			vals := make([]string, len(c.Values))
			for i, v := range c.Values {
				vals[i] = fmt.Sprintf("0x%x", v)
				if c.Masks[i] != nil {
					vals[i] += fmt.Sprintf(" mask 0x%x", c.Masks[i])
				}
			}
			fmt.Fprintf(b, "        %s : %s;\n", strings.Join(vals, ", "), c.State)
		}
		b.WriteString("    }\n")
	}
	b.WriteString("}\n\n")
}

func printAction(b *strings.Builder, a *ast.Action) {
	fmt.Fprintf(b, "action %s(%s) {\n", a.Name, strings.Join(a.Params, ", "))
	for _, call := range a.Body {
		args := make([]string, len(call.Args))
		for i, arg := range call.Args {
			args[i] = expr(arg)
		}
		fmt.Fprintf(b, "    %s(%s);\n", call.Name, strings.Join(args, ", "))
	}
	b.WriteString("}\n\n")
}

func printTable(b *strings.Builder, t *ast.Table) {
	fmt.Fprintf(b, "table %s {\n", t.Name)
	if len(t.Reads) > 0 {
		b.WriteString("    reads {\n")
		for _, r := range t.Reads {
			if r.Match == ast.MatchValid {
				fmt.Fprintf(b, "        valid(%s) : exact;\n", headerRef(*r.Header))
			} else {
				fmt.Fprintf(b, "        %s : %s;\n", fieldRef(*r.Field), r.Match)
			}
		}
		b.WriteString("    }\n")
	}
	b.WriteString("    actions {\n")
	for _, a := range t.Actions {
		fmt.Fprintf(b, "        %s;\n", a)
	}
	b.WriteString("    }\n")
	if t.Default != "" {
		fmt.Fprintf(b, "    default_action : %s;\n", t.Default)
	}
	if t.Size > 0 {
		fmt.Fprintf(b, "    size : %d;\n", t.Size)
	}
	b.WriteString("}\n\n")
}

func printControl(b *strings.Builder, c *ast.Control) {
	fmt.Fprintf(b, "control %s {\n", c.Name)
	printStmts(b, c.Body, 1)
	b.WriteString("}\n\n")
}

func printStmts(b *strings.Builder, stmts []ast.Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch s.Kind {
		case ast.StmtApply:
			if len(s.ApplyCases) == 0 {
				fmt.Fprintf(b, "%sapply(%s);\n", ind, s.Table)
				continue
			}
			fmt.Fprintf(b, "%sapply(%s) {\n", ind, s.Table)
			for _, c := range s.ApplyCases {
				label := c.Action
				if c.Hit {
					label = "hit"
				}
				if c.Miss {
					label = "miss"
				}
				fmt.Fprintf(b, "%s    %s {\n", ind, label)
				printStmts(b, c.Body, depth+2)
				fmt.Fprintf(b, "%s    }\n", ind)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case ast.StmtIf:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, boolExpr(s.Cond))
			printStmts(b, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				printStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case ast.StmtCall:
			fmt.Fprintf(b, "%s%s();\n", ind, s.Control)
		}
	}
}

func fieldRef(r ast.FieldRef) string {
	switch {
	case r.Index == ast.IndexNext:
		return fmt.Sprintf("%s[next].%s", r.Instance, r.Field)
	case r.Index == ast.IndexLast:
		return fmt.Sprintf("%s[last].%s", r.Instance, r.Field)
	case r.Index >= 0:
		return fmt.Sprintf("%s[%d].%s", r.Instance, r.Index, r.Field)
	default:
		return fmt.Sprintf("%s.%s", r.Instance, r.Field)
	}
}

func headerRef(r ast.HeaderRef) string {
	switch {
	case r.Index == ast.IndexNext:
		return r.Instance + "[next]"
	case r.Index == ast.IndexLast:
		return r.Instance + "[last]"
	case r.Index >= 0:
		return fmt.Sprintf("%s[%d]", r.Instance, r.Index)
	default:
		return r.Instance
	}
}

func expr(e ast.Expr) string {
	switch e.Kind {
	case ast.ExprConst:
		return fmt.Sprintf("0x%x", e.Const)
	case ast.ExprField:
		return fieldRef(e.Field)
	case ast.ExprParam:
		return e.Param
	case ast.ExprHeader:
		return headerRef(e.Header)
	case ast.ExprFieldList:
		return e.FieldList
	case ast.ExprName:
		return e.Name
	}
	return "?"
}

func boolExpr(b ast.BoolExpr) string {
	switch b.Kind {
	case ast.BoolCmp:
		return fmt.Sprintf("%s %s %s", expr(*b.Left), b.Op, expr(*b.Right))
	case ast.BoolValid:
		return fmt.Sprintf("valid(%s)", headerRef(*b.Valid))
	case ast.BoolAnd:
		return fmt.Sprintf("(%s) and (%s)", boolExpr(*b.A), boolExpr(*b.B))
	case ast.BoolOr:
		return fmt.Sprintf("(%s) or (%s)", boolExpr(*b.A), boolExpr(*b.B))
	case ast.BoolNot:
		return fmt.Sprintf("not (%s)", boolExpr(*b.A))
	}
	return "?"
}
