// Package ast defines the abstract syntax tree for the P4_14 subset used by
// HyPer4: header types and instances (including header stacks), metadata,
// field lists and checksum calculations, parser state machines, actions built
// from primitives, match-action tables, control flow, and stateful objects
// (registers, counters, meters).
//
// The subset covers everything needed by the paper's four network functions
// (L2 switch, ARP proxy, IPv4 router, firewall) and by the generated HyPer4
// persona itself.
package ast

import "math/big"

// Program is a complete P4 program.
type Program struct {
	Name             string // source name, for diagnostics
	HeaderTypes      []*HeaderType
	Instances        []*Instance
	FieldLists       []*FieldList
	FieldListCalcs   []*FieldListCalc
	CalculatedFields []*CalculatedField
	ParserStates     []*ParserState
	Actions          []*Action
	Tables           []*Table
	Controls         []*Control
	Registers        []*Register
	Counters         []*Counter
	Meters           []*Meter
}

// HeaderType declares the layout of a protocol header or metadata block.
type HeaderType struct {
	Name   string
	Fields []FieldDecl
}

// Width returns the total width of the header type in bits.
func (h *HeaderType) Width() int {
	w := 0
	for _, f := range h.Fields {
		w += f.Width
	}
	return w
}

// Field returns the declaration of the named field, or nil.
func (h *HeaderType) Field(name string) *FieldDecl {
	for i := range h.Fields {
		if h.Fields[i].Name == name {
			return &h.Fields[i]
		}
	}
	return nil
}

// FieldOffset returns the bit offset of the named field within the header,
// and whether the field exists.
func (h *HeaderType) FieldOffset(name string) (int, bool) {
	off := 0
	for _, f := range h.Fields {
		if f.Name == name {
			return off, true
		}
		off += f.Width
	}
	return 0, false
}

// FieldDecl is one field of a header type.
type FieldDecl struct {
	Name  string
	Width int // bits
}

// Instance declares a header or metadata instance of a header type.
type Instance struct {
	Name     string
	TypeName string
	Metadata bool
	Count    int // >0 for header stacks (e.g. "header u_byte ext[100];")
}

// IsStack reports whether the instance is a header stack.
func (i *Instance) IsStack() bool { return i.Count > 0 }

// FieldRef names a field of a header or metadata instance. For stack
// instances, Index selects the element; IndexNext refers to the parser's
// "next" cursor and IndexLast to the most recently extracted element.
type FieldRef struct {
	Instance string
	Index    int // IndexNone for scalar instances
	Field    string
}

// Special Index values for FieldRef and HeaderRef.
const (
	IndexNone = -1
	IndexNext = -2
	IndexLast = -3
)

// HeaderRef names a header instance (optionally a stack element), used by
// extract, add_header, remove_header, copy_header and valid() checks.
type HeaderRef struct {
	Instance string
	Index    int
}

// FieldList is a named list of fields (and optionally nested field lists),
// passed to resubmit/recirculate/clone and checksum calculations.
type FieldList struct {
	Name    string
	Entries []FieldListEntry
}

// FieldListEntry is one entry of a field list: a field reference, a nested
// list name, or the special "payload" token.
type FieldListEntry struct {
	Field   *FieldRef
	SubList string
	Payload bool
}

// ChecksumAlgo identifies a checksum algorithm for a field list calculation.
type ChecksumAlgo string

// Supported checksum algorithms.
const (
	AlgoCsum16 ChecksumAlgo = "csum16" // RFC 1071 ones-complement sum
)

// FieldListCalc is a field_list_calculation declaration.
type FieldListCalc struct {
	Name        string
	Input       string // field list name
	Algorithm   ChecksumAlgo
	OutputWidth int
}

// CalculatedField attaches verify/update checksum semantics to a field.
type CalculatedField struct {
	Field  FieldRef
	Verify string // field_list_calculation name, or ""
	Update string // field_list_calculation name, or ""
	// IfValid optionally guards update/verify on a header being valid.
	IfValid *HeaderRef
}

// ParserState is one state of the parser state machine. The state named
// "start" is the entry point.
type ParserState struct {
	Name       string
	Statements []ParserStmt
	Return     ParserReturn
}

// ParserStmt is a statement inside a parser state: extract(header) or
// set_metadata(field, value).
type ParserStmt struct {
	Extract *HeaderRef
	// SetMetadata, when Extract is nil:
	SetField FieldRef
	SetValue Expr
}

// ParserReturnKind discriminates direct returns from select returns.
type ParserReturnKind int

// Parser return kinds.
const (
	ReturnDirect ParserReturnKind = iota // return ingress; / return state_name;
	ReturnSelect                         // return select(...) { ... }
)

// Name of the implicit final parser state.
const StateIngress = "ingress"

// ParserReturn is the transition out of a parser state.
type ParserReturn struct {
	Kind       ParserReturnKind
	State      string // for ReturnDirect; StateIngress ends parsing
	SelectKeys []SelectKey
	Cases      []SelectCase
}

// SelectKey is one component of a select() expression: a field reference,
// latest.field, or current(offset, width).
type SelectKey struct {
	Field *FieldRef // nil for current()
	// Latest refers to the most recently extracted instance.
	Latest string // field name within latest, when non-empty
	// current(offset, width) reads unextracted packet bits.
	CurrentOffset int
	CurrentWidth  int
	IsCurrent     bool
}

// SelectCase is one branch of a select return.
type SelectCase struct {
	Default bool
	Values  []*big.Int // one per select key, concatenated comparison
	Masks   []*big.Int // optional per-value masks (nil = exact); P4_14 "value mask m"
	State   string
}

// Action is a compound action: a named, parameterized sequence of primitive
// invocations.
type Action struct {
	Name   string
	Params []string
	Body   []PrimitiveCall
}

// PrimitiveCall invokes a primitive (or another compound action) by name.
type PrimitiveCall struct {
	Name string
	Args []Expr
}

// ExprKind discriminates Expr variants.
type ExprKind int

// Expression kinds.
const (
	ExprConst ExprKind = iota
	ExprField
	ExprParam     // reference to an action parameter
	ExprHeader    // header reference (add_header etc.)
	ExprFieldList // field list name (resubmit etc.)
	ExprName      // bare name: register/counter/meter reference
)

// Expr is an argument to a primitive call. Exactly the fields relevant to
// Kind are meaningful.
type Expr struct {
	Kind      ExprKind
	Const     *big.Int
	Field     FieldRef
	Param     string
	Header    HeaderRef
	FieldList string
	Name      string
}

// ConstExpr builds a constant expression.
func ConstExpr(x int64) Expr { return Expr{Kind: ExprConst, Const: big.NewInt(x)} }

// FieldExpr builds a field reference expression.
func FieldExpr(inst, field string) Expr {
	return Expr{Kind: ExprField, Field: FieldRef{Instance: inst, Index: IndexNone, Field: field}}
}

// MatchKind is a table read match type.
type MatchKind string

// Match kinds supported by tables.
const (
	MatchExact   MatchKind = "exact"
	MatchTernary MatchKind = "ternary"
	MatchLPM     MatchKind = "lpm"
	MatchValid   MatchKind = "valid"
	MatchRange   MatchKind = "range"
)

// ReadEntry is one "reads" clause of a table: a field (or header validity)
// and how to match it.
type ReadEntry struct {
	Field  *FieldRef  // nil when matching header validity
	Header *HeaderRef // for valid matches on a header
	// MaskField: P4_14 allows "field mask value : ternary" — unused here.
	Match MatchKind
}

// Table is a match-action table.
type Table struct {
	Name    string
	Reads   []ReadEntry // empty for matchless (default-action-only) tables
	Actions []string
	Default string // optional compile-time default action name
	Size    int
}

// Control is a named control function (ingress, egress, or helper).
type Control struct {
	Name string
	Body []Stmt
}

// Names of the top-level control functions.
const (
	ControlIngress = "ingress"
	ControlEgress  = "egress"
)

// StmtKind discriminates control-flow statements.
type StmtKind int

// Control statement kinds.
const (
	StmtApply StmtKind = iota
	StmtIf
	StmtCall // invoke another control function
)

// Stmt is one control-flow statement.
type Stmt struct {
	Kind StmtKind

	// StmtApply:
	Table      string
	ApplyCases []ApplyCase // on-action / hit / miss blocks

	// StmtIf:
	Cond BoolExpr
	Then []Stmt
	Else []Stmt

	// StmtCall:
	Control string
}

// ApplyCase is one case block of an apply statement.
type ApplyCase struct {
	Action string // action name; "" when Hit or Miss is set
	Hit    bool
	Miss   bool
	Body   []Stmt
}

// BoolKind discriminates boolean expressions.
type BoolKind int

// Boolean expression kinds.
const (
	BoolCmp BoolKind = iota
	BoolValid
	BoolAnd
	BoolOr
	BoolNot
)

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// BoolExpr is a boolean condition in an if statement.
type BoolExpr struct {
	Kind  BoolKind
	Left  *Expr // BoolCmp
	Op    CmpOp
	Right *Expr
	Valid *HeaderRef // BoolValid
	A, B  *BoolExpr  // BoolAnd/BoolOr (A only for BoolNot)
}

// Register is a stateful register array.
type Register struct {
	Name          string
	Width         int
	InstanceCount int
	DirectTable   string // optional direct binding
}

// CounterKind is the unit a counter counts.
type CounterKind string

// Counter kinds.
const (
	CounterPackets CounterKind = "packets"
	CounterBytes   CounterKind = "bytes"
)

// Counter is a stateful counter array.
type Counter struct {
	Name          string
	Kind          CounterKind
	InstanceCount int
	DirectTable   string
}

// MeterKind is the unit a meter meters.
type MeterKind string

// Meter kinds.
const (
	MeterPackets MeterKind = "packets"
	MeterBytes   MeterKind = "bytes"
)

// Meter is a stateful meter array.
type Meter struct {
	Name          string
	Kind          MeterKind
	InstanceCount int
	DirectTable   string
}
