package parser

import (
	"testing"

	"hyper4/internal/p4/ast"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustFail(t *testing.T, src string) {
	t.Helper()
	if _, err := Parse("t", src); err == nil {
		t.Fatalf("expected parse error for: %s", src)
	}
}

func TestFieldRefIndexForms(t *testing.T) {
	p := mustParse(t, `
header_type u_t { fields { b : 8; } }
header u_t s[8];
action a() {
    modify_field(s[3].b, 1);
    modify_field(s[last].b, 2);
}
parser start { extract(s[next]); return ingress; }
`)
	body := p.Actions[0].Body
	if body[0].Args[0].Field.Index != 3 {
		t.Errorf("explicit index: %+v", body[0].Args[0].Field)
	}
	if body[1].Args[0].Field.Index != ast.IndexLast {
		t.Errorf("[last]: %+v", body[1].Args[0].Field)
	}
	if p.ParserStates[0].Statements[0].Extract.Index != ast.IndexNext {
		t.Errorf("[next]: %+v", p.ParserStates[0].Statements[0].Extract)
	}
}

func TestFieldRefErrors(t *testing.T) {
	mustFail(t, `action a() { modify_field(h[, 1); }`)
	mustFail(t, `action a() { modify_field(h[1.b, 1); }`)
	mustFail(t, `action a() { modify_field(h., 1); }`)
	mustFail(t, `table t { reads { h.b : } actions { a; } }`)
}

func TestParserStateSetMetadataAndDirect(t *testing.T) {
	p := mustParse(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
header_type m_t { fields { x : 8; } }
metadata m_t m;
parser start {
    set_metadata(m.x, 7);
    extract(h);
    return next_state;
}
parser next_state {
    set_metadata(m.x, h.v);
    return ingress;
}
`)
	st := p.ParserStates[0]
	if st.Statements[0].SetValue.Const.Int64() != 7 {
		t.Errorf("set_metadata const: %+v", st.Statements[0])
	}
	st2 := p.ParserStates[1]
	if st2.Statements[0].SetValue.Kind != ast.ExprField {
		t.Errorf("set_metadata field: %+v", st2.Statements[0])
	}
}

func TestParserStateErrors(t *testing.T) {
	mustFail(t, `parser start { extract(; return ingress; }`)
	mustFail(t, `parser start { set_metadata(m.x); return ingress; }`)
	mustFail(t, `parser start { bogus_stmt(h); return ingress; }`)
	mustFail(t, `parser start { return select(h.v) { zork : ingress; } }`)
	mustFail(t, `parser start { return select() { } }`)
}

func TestSelectKeyCurrentAndErrors(t *testing.T) {
	p := mustParse(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
parser start {
    extract(h);
    return select(current(16, 8), h.v) {
        1, 2 : ingress;
        default : ingress;
    }
}
`)
	keys := p.ParserStates[0].Return.SelectKeys
	if !keys[0].IsCurrent || keys[0].CurrentOffset != 16 || keys[0].CurrentWidth != 8 {
		t.Errorf("current key: %+v", keys[0])
	}
	if keys[1].Field == nil {
		t.Errorf("field key: %+v", keys[1])
	}
	mustFail(t, `parser start { return select(current(1)) { default : ingress; } }`)
	mustFail(t, `parser start { return select(latest.) { default : ingress; } }`)
}

func TestCalculatedFieldVerifyAndUpdate(t *testing.T) {
	p := mustParse(t, `
header_type h_t { fields { c : 16; } }
header h_t h;
field_list fl { h.c; }
field_list_calculation calc { input { fl; } algorithm : csum16; output_width : 16; }
calculated_field h.c {
    verify calc;
    update calc;
}
parser start { extract(h); return ingress; }
`)
	cf := p.CalculatedFields[0]
	if cf.Verify != "calc" || cf.Update != "calc" || cf.IfValid != nil {
		t.Errorf("calculated field: %+v", cf)
	}
	mustFail(t, `calculated_field h.c { frobnicate calc; }`)
	mustFail(t, `field_list_calculation c { bogus : 1; }`)
}

func TestStatefulDirectBindings(t *testing.T) {
	p := mustParse(t, `
register r { width : 8; instance_count : 4; direct : t; }
counter c { type : bytes; instance_count : 4; direct : t; }
meter m { type : packets; instance_count : 4; direct : t; }
action a() { no_op(); }
table t { actions { a; } }
control ingress { apply(t); }
`)
	if p.Registers[0].DirectTable != "t" {
		t.Errorf("register direct: %+v", p.Registers[0])
	}
	if p.Counters[0].DirectTable != "t" || p.Counters[0].Kind != ast.CounterBytes {
		t.Errorf("counter: %+v", p.Counters[0])
	}
	if p.Meters[0].DirectTable != "t" {
		t.Errorf("meter: %+v", p.Meters[0])
	}
	mustFail(t, `register r { bogus : 1; }`)
	mustFail(t, `counter c { bogus : 1; }`)
	mustFail(t, `meter m { bogus : 1; }`)
	mustFail(t, `register r { width : x; }`)
}

func TestHeaderRefArgForms(t *testing.T) {
	p := mustParse(t, `
header_type h_t { fields { v : 8; } }
header h_t a;
header h_t s[4];
action act() {
    add_header(s[2]);
    remove_header(a);
    copy_header(s[next], a);
}
parser start { extract(a); return ingress; }
`)
	body := p.Actions[0].Body
	if body[0].Args[0].Kind != ast.ExprHeader || body[0].Args[0].Header.Index != 2 {
		t.Errorf("add_header arg: %+v", body[0].Args[0])
	}
	// A bare name parses as ExprName; HLIR/sim resolve it as a header.
	if body[1].Args[0].Kind != ast.ExprName {
		t.Errorf("remove_header arg: %+v", body[1].Args[0])
	}
	if body[2].Args[0].Header.Index != ast.IndexNext {
		t.Errorf("copy_header arg: %+v", body[2].Args[0])
	}
}

func TestReadEntryValidWithIndex(t *testing.T) {
	p := mustParse(t, `
header_type h_t { fields { v : 8; } }
header h_t s[4];
action a() { no_op(); }
table t {
    reads {
        valid(s[1]) : exact;
        s[0].v : exact;
    }
    actions { a; }
}
`)
	reads := p.Tables[0].Reads
	if reads[0].Header.Index != 1 {
		t.Errorf("valid index: %+v", reads[0])
	}
	if reads[1].Field.Index != 0 {
		t.Errorf("field index: %+v", reads[1])
	}
	mustFail(t, `table t { reads { valid( : exact; } actions { a; } }`)
}

func TestTableParseErrors(t *testing.T) {
	mustFail(t, `table t { size : x; }`)
	mustFail(t, `table t { default_action : ; }`)
	mustFail(t, `table t { reads { } bogus { } }`)
	mustFail(t, `control ingress { apply(t) { hit } }`)
	mustFail(t, `control ingress { if (x ~ y) { } }`)
	mustFail(t, `control ingress { name(; }`)
}

func TestBooleanOperatorSymbols(t *testing.T) {
	p := mustParse(t, `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action a() { no_op(); }
table t { actions { a; } }
control ingress {
    if ((m.x == 1 || m.x == 2) && !(m.x > 5)) { apply(t); }
}
`)
	cond := p.Controls[0].Body[0].Cond
	if cond.Kind != ast.BoolAnd {
		t.Fatalf("cond: %+v", cond)
	}
	if cond.A.Kind != ast.BoolOr || cond.B.Kind != ast.BoolNot {
		t.Errorf("sub-conditions: %+v / %+v", cond.A, cond.B)
	}
}
