package parser

import (
	"strings"
	"testing"

	"hyper4/internal/p4/ast"
)

const miniL2 = `
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header ethernet_t ethernet;

parser start {
    extract(ethernet);
    return ingress;
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

action _drop() {
    drop();
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    size : 512;
}

control ingress {
    apply(dmac);
}
`

func TestParseMiniL2(t *testing.T) {
	prog, err := Parse("mini_l2", miniL2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.HeaderTypes) != 1 || prog.HeaderTypes[0].Name != "ethernet_t" {
		t.Fatalf("header types: %+v", prog.HeaderTypes)
	}
	ht := prog.HeaderTypes[0]
	if ht.Width() != 112 {
		t.Errorf("ethernet_t width = %d", ht.Width())
	}
	if off, ok := ht.FieldOffset("srcAddr"); !ok || off != 48 {
		t.Errorf("srcAddr offset = %d, %v", off, ok)
	}
	if len(prog.Instances) != 1 || prog.Instances[0].Metadata {
		t.Fatalf("instances: %+v", prog.Instances)
	}
	if len(prog.ParserStates) != 1 {
		t.Fatalf("parser states: %d", len(prog.ParserStates))
	}
	st := prog.ParserStates[0]
	if st.Name != "start" || len(st.Statements) != 1 || st.Statements[0].Extract == nil {
		t.Errorf("start state: %+v", st)
	}
	if st.Return.Kind != ast.ReturnDirect || st.Return.State != ast.StateIngress {
		t.Errorf("start return: %+v", st.Return)
	}
	if len(prog.Actions) != 2 {
		t.Fatalf("actions: %d", len(prog.Actions))
	}
	fwd := prog.Actions[0]
	if fwd.Name != "forward" || len(fwd.Params) != 1 || fwd.Params[0] != "port" {
		t.Errorf("forward: %+v", fwd)
	}
	if len(fwd.Body) != 1 || fwd.Body[0].Name != "modify_field" {
		t.Errorf("forward body: %+v", fwd.Body)
	}
	if fwd.Body[0].Args[1].Kind != ast.ExprParam {
		t.Errorf("port arg should be a param ref: %+v", fwd.Body[0].Args[1])
	}
	if len(prog.Tables) != 1 {
		t.Fatalf("tables: %d", len(prog.Tables))
	}
	tbl := prog.Tables[0]
	if tbl.Name != "dmac" || tbl.Size != 512 || len(tbl.Reads) != 1 || tbl.Reads[0].Match != ast.MatchExact {
		t.Errorf("dmac: %+v", tbl)
	}
	if len(prog.Controls) != 1 || len(prog.Controls[0].Body) != 1 || prog.Controls[0].Body[0].Table != "dmac" {
		t.Errorf("ingress: %+v", prog.Controls)
	}
}

func TestParseSelectReturn(t *testing.T) {
	src := `
header_type eth_t { fields { dst : 48; src : 48; et : 16; } }
header eth_t eth;
parser start {
    extract(eth);
    return select(latest.et) {
        0x0800 : parse_ipv4;
        0x0806 mask 0xffff : parse_arp;
        default : ingress;
    }
}
parser parse_ipv4 { return ingress; }
parser parse_arp { return ingress; }
`
	prog, err := Parse("sel", src)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.ParserStates[0].Return
	if ret.Kind != ast.ReturnSelect || len(ret.SelectKeys) != 1 || ret.SelectKeys[0].Latest != "et" {
		t.Fatalf("select keys: %+v", ret.SelectKeys)
	}
	if len(ret.Cases) != 3 {
		t.Fatalf("cases: %d", len(ret.Cases))
	}
	if ret.Cases[0].Values[0].Int64() != 0x0800 || ret.Cases[0].State != "parse_ipv4" {
		t.Errorf("case 0: %+v", ret.Cases[0])
	}
	if ret.Cases[1].Masks[0] == nil || ret.Cases[1].Masks[0].Int64() != 0xffff {
		t.Errorf("case 1 mask: %+v", ret.Cases[1])
	}
	if !ret.Cases[2].Default {
		t.Errorf("case 2 should be default")
	}
}

func TestParseHeaderStackAndCurrent(t *testing.T) {
	src := `
header_type u_byte_t { fields { b : 8; } }
header u_byte_t ext[4];
parser start {
    extract(ext[next]);
    return select(current(0, 8)) {
        0 : ingress;
        default : start2;
    }
}
parser start2 { extract(ext[next]); return ingress; }
`
	prog, err := Parse("stack", src)
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.Instances[0]
	if !inst.IsStack() || inst.Count != 4 {
		t.Fatalf("stack: %+v", inst)
	}
	st := prog.ParserStates[0]
	if st.Statements[0].Extract.Index != ast.IndexNext {
		t.Errorf("extract index: %+v", st.Statements[0].Extract)
	}
	key := st.Return.SelectKeys[0]
	if !key.IsCurrent || key.CurrentWidth != 8 {
		t.Errorf("current key: %+v", key)
	}
}

func TestParseIfElseAndApplyCases(t *testing.T) {
	src := `
header_type m_t { fields { x : 8; y : 8; } }
metadata m_t m;
action a() { no_op(); }
table t1 { actions { a; } }
table t2 { actions { a; } }
control ingress {
    if (m.x == 1 and valid(ipv4)) {
        apply(t1) {
            hit { apply(t2); }
            miss { }
        }
    } else if (m.x != 2 or not (m.y > 3)) {
        apply(t2) {
            a { apply(t1); }
        }
    } else {
        do_stuff();
    }
}
control do_stuff { apply(t1); }
`
	prog, err := Parse("ctrl", src)
	if err != nil {
		t.Fatal(err)
	}
	ing := prog.Controls[0]
	ifs := ing.Body[0]
	if ifs.Kind != ast.StmtIf || ifs.Cond.Kind != ast.BoolAnd {
		t.Fatalf("if: %+v", ifs)
	}
	if ifs.Cond.B.Kind != ast.BoolValid {
		t.Errorf("right side should be valid(): %+v", ifs.Cond.B)
	}
	apply := ifs.Then[0]
	if len(apply.ApplyCases) != 2 || !apply.ApplyCases[0].Hit || !apply.ApplyCases[1].Miss {
		t.Errorf("apply cases: %+v", apply.ApplyCases)
	}
	elseIf := ifs.Else[0]
	if elseIf.Kind != ast.StmtIf || elseIf.Cond.Kind != ast.BoolOr {
		t.Fatalf("else-if: %+v", elseIf)
	}
	if elseIf.Then[0].ApplyCases[0].Action != "a" {
		t.Errorf("action case: %+v", elseIf.Then[0].ApplyCases)
	}
	if elseIf.Else[0].Kind != ast.StmtCall || elseIf.Else[0].Control != "do_stuff" {
		t.Errorf("final else: %+v", elseIf.Else)
	}
}

func TestParseStatefulAndChecksum(t *testing.T) {
	src := `
header_type ipv4_t { fields { c : 16; } }
header ipv4_t ipv4;
field_list ipv4_checksum_list {
    ipv4.c;
    payload;
}
field_list_calculation ipv4_checksum {
    input { ipv4_checksum_list; }
    algorithm : csum16;
    output_width : 16;
}
calculated_field ipv4.c {
    update ipv4_checksum if (valid(ipv4));
}
register r1 { width : 32; instance_count : 16; }
counter c1 { type : packets; instance_count : 8; }
meter m1 { type : bytes; instance_count : 4; }
parser start { extract(ipv4); return ingress; }
`
	prog, err := Parse("stateful", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.FieldLists) != 1 || len(prog.FieldLists[0].Entries) != 2 {
		t.Fatalf("field lists: %+v", prog.FieldLists)
	}
	if !prog.FieldLists[0].Entries[1].Payload {
		t.Errorf("second entry should be payload")
	}
	calc := prog.FieldListCalcs[0]
	if calc.Input != "ipv4_checksum_list" || calc.Algorithm != ast.AlgoCsum16 || calc.OutputWidth != 16 {
		t.Errorf("calc: %+v", calc)
	}
	cf := prog.CalculatedFields[0]
	if cf.Update != "ipv4_checksum" || cf.IfValid == nil || cf.IfValid.Instance != "ipv4" {
		t.Errorf("calculated field: %+v", cf)
	}
	if prog.Registers[0].Width != 32 || prog.Registers[0].InstanceCount != 16 {
		t.Errorf("register: %+v", prog.Registers[0])
	}
	if prog.Counters[0].Kind != ast.CounterPackets {
		t.Errorf("counter: %+v", prog.Counters[0])
	}
	if prog.Meters[0].Kind != ast.MeterBytes {
		t.Errorf("meter: %+v", prog.Meters[0])
	}
}

func TestParseValidRead(t *testing.T) {
	src := `
table t {
    reads {
        valid(ipv4) : exact;
        ipv4.ttl : ternary;
        ipv4.dst : lpm;
    }
    actions { a; }
}
`
	prog, err := Parse("valid", src)
	if err != nil {
		t.Fatal(err)
	}
	reads := prog.Tables[0].Reads
	if reads[0].Match != ast.MatchValid || reads[0].Header.Instance != "ipv4" {
		t.Errorf("valid read: %+v", reads[0])
	}
	if reads[1].Match != ast.MatchTernary || reads[2].Match != ast.MatchLPM {
		t.Errorf("reads: %+v", reads)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad top level":   "florble x;",
		"missing brace":   "header_type t { fields { x : 8; }",
		"bad match kind":  "table t { reads { a.b : sorta; } actions { x; } }",
		"bad number":      "header_type t { fields { x : huge; } }",
		"metadata stack":  "metadata m_t m[4];",
		"unclosed action": "action a() { no_op();",
	}
	for name, src := range cases {
		if _, err := Parse(name, src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse("x", "\n\n\nflorble")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error = %v, want line 4", err)
	}
}

func TestDefaultActionClause(t *testing.T) {
	src := `table t { actions { a; } default_action : a(); size : 64; }`
	prog, err := Parse("d", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Tables[0].Default != "a" {
		t.Errorf("default = %q", prog.Tables[0].Default)
	}
}
