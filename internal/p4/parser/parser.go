// Package parser implements a recursive-descent parser for the P4_14 subset
// defined in package ast. It accepts the four network functions evaluated by
// the HyPer4 paper and the source emitted by the persona generator.
package parser

import (
	"fmt"
	"math/big"

	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/lexer"
)

// Parse parses P4_14 source into an AST. name is used in diagnostics.
func Parse(name, src string) (*ast.Program, error) {
	toks, err := lexer.New(src).All()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &parser{name: name, toks: toks}
	prog := &ast.Program{Name: name}
	for !p.at(lexer.EOF, "") {
		if err := p.topLevel(prog); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}
	return prog, nil
}

type parser struct {
	name string
	toks []lexer.Token
	pos  int
}

func (p *parser) cur() lexer.Token { return p.toks[p.pos] }

func (p *parser) at(k lexer.Kind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) atIdent(text string) bool { return p.at(lexer.Ident, text) }

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if !p.at(lexer.Punct, s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().Kind != lexer.Ident {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().Text, nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atIdent(kw) {
		return p.errf("expected %q, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expectNumber() (*big.Int, error) {
	if p.cur().Kind != lexer.Number {
		return nil, p.errf("expected number, found %s", p.cur())
	}
	return p.next().Num, nil
}

func (p *parser) expectInt() (int, error) {
	n, err := p.expectNumber()
	if err != nil {
		return 0, err
	}
	if !n.IsInt64() {
		return 0, p.errf("number %v too large", n)
	}
	return int(n.Int64()), nil
}

func (p *parser) topLevel(prog *ast.Program) error {
	switch {
	case p.atIdent("header_type"):
		return p.headerType(prog)
	case p.atIdent("header"):
		return p.instance(prog, false)
	case p.atIdent("metadata"):
		return p.instance(prog, true)
	case p.atIdent("field_list"):
		return p.fieldList(prog)
	case p.atIdent("field_list_calculation"):
		return p.fieldListCalc(prog)
	case p.atIdent("calculated_field"):
		return p.calculatedField(prog)
	case p.atIdent("parser"):
		return p.parserState(prog)
	case p.atIdent("action"):
		return p.action(prog)
	case p.atIdent("table"):
		return p.table(prog)
	case p.atIdent("control"):
		return p.control(prog)
	case p.atIdent("register"):
		return p.register(prog)
	case p.atIdent("counter"):
		return p.counter(prog)
	case p.atIdent("meter"):
		return p.meter(prog)
	default:
		return p.errf("unexpected %s at top level", p.cur())
	}
}

func (p *parser) headerType(prog *ast.Program) error {
	p.next() // header_type
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	if err := p.expectKeyword("fields"); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	ht := &ast.HeaderType{Name: name}
	for !p.at(lexer.Punct, "}") {
		fname, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		w, err := p.expectInt()
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		ht.Fields = append(ht.Fields, ast.FieldDecl{Name: fname, Width: w})
	}
	p.next() // }
	if err := p.expectPunct("}"); err != nil {
		return err
	}
	prog.HeaderTypes = append(prog.HeaderTypes, ht)
	return nil
}

func (p *parser) instance(prog *ast.Program, metadata bool) error {
	p.next() // header | metadata
	typeName, err := p.expectIdent()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst := &ast.Instance{Name: name, TypeName: typeName, Metadata: metadata}
	if p.at(lexer.Punct, "[") {
		if metadata {
			return p.errf("metadata cannot be a stack")
		}
		p.next()
		n, err := p.expectInt()
		if err != nil {
			return err
		}
		if err := p.expectPunct("]"); err != nil {
			return err
		}
		inst.Count = n
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	prog.Instances = append(prog.Instances, inst)
	return nil
}

// fieldRef parses inst.field, inst[idx].field, inst[next].field, latest.field.
func (p *parser) fieldRef() (ast.FieldRef, error) {
	inst, err := p.expectIdent()
	if err != nil {
		return ast.FieldRef{}, err
	}
	ref := ast.FieldRef{Instance: inst, Index: ast.IndexNone}
	if p.at(lexer.Punct, "[") {
		p.next()
		switch {
		case p.atIdent("next"):
			p.next()
			ref.Index = ast.IndexNext
		case p.atIdent("last"):
			p.next()
			ref.Index = ast.IndexLast
		default:
			idx, err := p.expectInt()
			if err != nil {
				return ast.FieldRef{}, err
			}
			ref.Index = idx
		}
		if err := p.expectPunct("]"); err != nil {
			return ast.FieldRef{}, err
		}
	}
	if err := p.expectPunct("."); err != nil {
		return ast.FieldRef{}, err
	}
	f, err := p.expectIdent()
	if err != nil {
		return ast.FieldRef{}, err
	}
	ref.Field = f
	return ref, nil
}

// headerRef parses inst or inst[idx] or inst[next]/inst[last].
func (p *parser) headerRef() (ast.HeaderRef, error) {
	inst, err := p.expectIdent()
	if err != nil {
		return ast.HeaderRef{}, err
	}
	ref := ast.HeaderRef{Instance: inst, Index: ast.IndexNone}
	if p.at(lexer.Punct, "[") {
		p.next()
		switch {
		case p.atIdent("next"):
			p.next()
			ref.Index = ast.IndexNext
		case p.atIdent("last"):
			p.next()
			ref.Index = ast.IndexLast
		default:
			idx, err := p.expectInt()
			if err != nil {
				return ast.HeaderRef{}, err
			}
			ref.Index = idx
		}
		if err := p.expectPunct("]"); err != nil {
			return ast.HeaderRef{}, err
		}
	}
	return ref, nil
}

func (p *parser) fieldList(prog *ast.Program) error {
	p.next() // field_list
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	fl := &ast.FieldList{Name: name}
	for !p.at(lexer.Punct, "}") {
		if p.atIdent("payload") {
			p.next()
			fl.Entries = append(fl.Entries, ast.FieldListEntry{Payload: true})
		} else {
			// Either a field ref (has a dot) or a nested list name.
			save := p.pos
			ident, err := p.expectIdent()
			if err != nil {
				return err
			}
			if p.at(lexer.Punct, ".") || p.at(lexer.Punct, "[") {
				p.pos = save
				ref, err := p.fieldRef()
				if err != nil {
					return err
				}
				fl.Entries = append(fl.Entries, ast.FieldListEntry{Field: &ref})
			} else {
				fl.Entries = append(fl.Entries, ast.FieldListEntry{SubList: ident})
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	p.next() // }
	prog.FieldLists = append(prog.FieldLists, fl)
	return nil
}

func (p *parser) fieldListCalc(prog *ast.Program) error {
	p.next() // field_list_calculation
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	calc := &ast.FieldListCalc{Name: name}
	for !p.at(lexer.Punct, "}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch key {
		case "input":
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			in, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			if err := p.expectPunct("}"); err != nil {
				return err
			}
			calc.Input = in
		case "algorithm":
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			algo, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			calc.Algorithm = ast.ChecksumAlgo(algo)
		case "output_width":
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			w, err := p.expectInt()
			if err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			calc.OutputWidth = w
		default:
			return p.errf("unknown field_list_calculation property %q", key)
		}
	}
	p.next() // }
	prog.FieldListCalcs = append(prog.FieldListCalcs, calc)
	return nil
}

func (p *parser) calculatedField(prog *ast.Program) error {
	p.next() // calculated_field
	ref, err := p.fieldRef()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	cf := &ast.CalculatedField{Field: ref}
	for !p.at(lexer.Punct, "}") {
		verb, err := p.expectIdent()
		if err != nil {
			return err
		}
		calc, err := p.expectIdent()
		if err != nil {
			return err
		}
		switch verb {
		case "verify":
			cf.Verify = calc
		case "update":
			cf.Update = calc
		default:
			return p.errf("unknown calculated_field verb %q", verb)
		}
		if p.atIdent("if") {
			p.next()
			if err := p.expectPunct("("); err != nil {
				return err
			}
			if err := p.expectKeyword("valid"); err != nil {
				return err
			}
			if err := p.expectPunct("("); err != nil {
				return err
			}
			h, err := p.headerRef()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			cf.IfValid = &h
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	p.next() // }
	prog.CalculatedFields = append(prog.CalculatedFields, cf)
	return nil
}
