package parser

import (
	"math/big"

	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/lexer"
)

func (p *parser) parserState(prog *ast.Program) error {
	p.next() // parser
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	st := &ast.ParserState{Name: name}
	for !p.at(lexer.Punct, "}") {
		switch {
		case p.atIdent("extract"):
			p.next()
			if err := p.expectPunct("("); err != nil {
				return err
			}
			h, err := p.headerRef()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			st.Statements = append(st.Statements, ast.ParserStmt{Extract: &h})
		case p.atIdent("set_metadata"):
			p.next()
			if err := p.expectPunct("("); err != nil {
				return err
			}
			ref, err := p.fieldRef()
			if err != nil {
				return err
			}
			if err := p.expectPunct(","); err != nil {
				return err
			}
			val, err := p.exprArg(nil)
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			st.Statements = append(st.Statements, ast.ParserStmt{SetField: ref, SetValue: val})
		case p.atIdent("return"):
			p.next()
			ret, err := p.parserReturn()
			if err != nil {
				return err
			}
			st.Return = ret
		default:
			return p.errf("unexpected %s in parser state", p.cur())
		}
	}
	p.next() // }
	prog.ParserStates = append(prog.ParserStates, st)
	return nil
}

func (p *parser) parserReturn() (ast.ParserReturn, error) {
	if p.atIdent("select") {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return ast.ParserReturn{}, err
		}
		ret := ast.ParserReturn{Kind: ast.ReturnSelect}
		for {
			key, err := p.selectKey()
			if err != nil {
				return ast.ParserReturn{}, err
			}
			ret.SelectKeys = append(ret.SelectKeys, key)
			if p.at(lexer.Punct, ",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.ParserReturn{}, err
		}
		if err := p.expectPunct("{"); err != nil {
			return ast.ParserReturn{}, err
		}
		for !p.at(lexer.Punct, "}") {
			c, err := p.selectCase(len(ret.SelectKeys))
			if err != nil {
				return ast.ParserReturn{}, err
			}
			ret.Cases = append(ret.Cases, c)
		}
		p.next() // }
		return ret, nil
	}
	// Direct return: "return ingress;" or "return state_name;"
	target, err := p.expectIdent()
	if err != nil {
		return ast.ParserReturn{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return ast.ParserReturn{}, err
	}
	return ast.ParserReturn{Kind: ast.ReturnDirect, State: target}, nil
}

func (p *parser) selectKey() (ast.SelectKey, error) {
	if p.atIdent("current") {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return ast.SelectKey{}, err
		}
		off, err := p.expectInt()
		if err != nil {
			return ast.SelectKey{}, err
		}
		if err := p.expectPunct(","); err != nil {
			return ast.SelectKey{}, err
		}
		w, err := p.expectInt()
		if err != nil {
			return ast.SelectKey{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.SelectKey{}, err
		}
		return ast.SelectKey{IsCurrent: true, CurrentOffset: off, CurrentWidth: w}, nil
	}
	if p.atIdent("latest") {
		p.next()
		if err := p.expectPunct("."); err != nil {
			return ast.SelectKey{}, err
		}
		f, err := p.expectIdent()
		if err != nil {
			return ast.SelectKey{}, err
		}
		return ast.SelectKey{Latest: f}, nil
	}
	ref, err := p.fieldRef()
	if err != nil {
		return ast.SelectKey{}, err
	}
	return ast.SelectKey{Field: &ref}, nil
}

func (p *parser) selectCase(nkeys int) (ast.SelectCase, error) {
	if p.atIdent("default") {
		p.next()
		if err := p.expectPunct(":"); err != nil {
			return ast.SelectCase{}, err
		}
		state, err := p.expectIdent()
		if err != nil {
			return ast.SelectCase{}, err
		}
		if err := p.expectPunct(";"); err != nil {
			return ast.SelectCase{}, err
		}
		return ast.SelectCase{Default: true, State: state}, nil
	}
	c := ast.SelectCase{}
	for i := 0; i < nkeys; i++ {
		if i > 0 {
			if err := p.expectPunct(","); err != nil {
				return ast.SelectCase{}, err
			}
		}
		v, err := p.expectNumber()
		if err != nil {
			return ast.SelectCase{}, err
		}
		var mask *big.Int
		if p.atIdent("mask") {
			p.next()
			mask, err = p.expectNumber()
			if err != nil {
				return ast.SelectCase{}, err
			}
		}
		c.Values = append(c.Values, v)
		c.Masks = append(c.Masks, mask)
	}
	if err := p.expectPunct(":"); err != nil {
		return ast.SelectCase{}, err
	}
	state, err := p.expectIdent()
	if err != nil {
		return ast.SelectCase{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return ast.SelectCase{}, err
	}
	c.State = state
	return c, nil
}

func (p *parser) action(prog *ast.Program) error {
	p.next() // action
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	act := &ast.Action{Name: name}
	for !p.at(lexer.Punct, ")") {
		param, err := p.expectIdent()
		if err != nil {
			return err
		}
		act.Params = append(act.Params, param)
		if p.at(lexer.Punct, ",") {
			p.next()
		}
	}
	p.next() // )
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	params := map[string]bool{}
	for _, prm := range act.Params {
		params[prm] = true
	}
	for !p.at(lexer.Punct, "}") {
		call, err := p.primitiveCall(params)
		if err != nil {
			return err
		}
		act.Body = append(act.Body, call)
	}
	p.next() // }
	prog.Actions = append(prog.Actions, act)
	return nil
}

func (p *parser) primitiveCall(params map[string]bool) (ast.PrimitiveCall, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ast.PrimitiveCall{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return ast.PrimitiveCall{}, err
	}
	call := ast.PrimitiveCall{Name: name}
	for !p.at(lexer.Punct, ")") {
		arg, err := p.exprArg(params)
		if err != nil {
			return ast.PrimitiveCall{}, err
		}
		call.Args = append(call.Args, arg)
		if p.at(lexer.Punct, ",") {
			p.next()
		}
	}
	p.next() // )
	if err := p.expectPunct(";"); err != nil {
		return ast.PrimitiveCall{}, err
	}
	return call, nil
}

// exprArg parses a primitive argument: a constant, an action parameter, a
// field reference, a header reference, or a bare name (field list, register,
// counter, meter). Disambiguation between these bare-name cases is deferred
// to HLIR resolution.
func (p *parser) exprArg(params map[string]bool) (ast.Expr, error) {
	if p.cur().Kind == lexer.Number {
		n, _ := p.expectNumber()
		return ast.Expr{Kind: ast.ExprConst, Const: n}, nil
	}
	save := p.pos
	ident, err := p.expectIdent()
	if err != nil {
		return ast.Expr{}, err
	}
	if p.at(lexer.Punct, ".") || p.at(lexer.Punct, "[") {
		p.pos = save
		// Could be a field ref (inst.field) or header ref with index and no
		// field (inst[3]); try field ref first.
		if fr, err := p.tryFieldRef(); err == nil {
			return ast.Expr{Kind: ast.ExprField, Field: fr}, nil
		}
		p.pos = save
		hr, err := p.headerRef()
		if err != nil {
			return ast.Expr{}, err
		}
		return ast.Expr{Kind: ast.ExprHeader, Header: hr}, nil
	}
	if params != nil && params[ident] {
		return ast.Expr{Kind: ast.ExprParam, Param: ident}, nil
	}
	return ast.Expr{Kind: ast.ExprName, Name: ident}, nil
}

// tryFieldRef attempts to parse a field ref without committing on failure.
func (p *parser) tryFieldRef() (ast.FieldRef, error) {
	save := p.pos
	fr, err := p.fieldRef()
	if err != nil {
		p.pos = save
		return ast.FieldRef{}, err
	}
	return fr, nil
}

func (p *parser) table(prog *ast.Program) error {
	p.next() // table
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	tbl := &ast.Table{Name: name}
	for !p.at(lexer.Punct, "}") {
		switch {
		case p.atIdent("reads"):
			p.next()
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for !p.at(lexer.Punct, "}") {
				re, err := p.readEntry()
				if err != nil {
					return err
				}
				tbl.Reads = append(tbl.Reads, re)
			}
			p.next() // }
		case p.atIdent("actions"):
			p.next()
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			for !p.at(lexer.Punct, "}") {
				a, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
				tbl.Actions = append(tbl.Actions, a)
			}
			p.next() // }
		case p.atIdent("default_action"):
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			a, err := p.expectIdent()
			if err != nil {
				return err
			}
			// Optional empty parameter list.
			if p.at(lexer.Punct, "(") {
				p.next()
				if err := p.expectPunct(")"); err != nil {
					return err
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			tbl.Default = a
		case p.atIdent("size"):
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			tbl.Size = n
		default:
			return p.errf("unexpected %s in table", p.cur())
		}
	}
	p.next() // }
	prog.Tables = append(prog.Tables, tbl)
	return nil
}

func (p *parser) readEntry() (ast.ReadEntry, error) {
	if p.atIdent("valid") {
		// valid(header) : exact;
		p.next()
		if err := p.expectPunct("("); err != nil {
			return ast.ReadEntry{}, err
		}
		h, err := p.headerRef()
		if err != nil {
			return ast.ReadEntry{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.ReadEntry{}, err
		}
		if err := p.expectPunct(":"); err != nil {
			return ast.ReadEntry{}, err
		}
		// Match kind after valid() is typically "exact"; record as valid.
		if _, err := p.expectIdent(); err != nil {
			return ast.ReadEntry{}, err
		}
		if err := p.expectPunct(";"); err != nil {
			return ast.ReadEntry{}, err
		}
		return ast.ReadEntry{Header: &h, Match: ast.MatchValid}, nil
	}
	ref, err := p.fieldRef()
	if err != nil {
		return ast.ReadEntry{}, err
	}
	if err := p.expectPunct(":"); err != nil {
		return ast.ReadEntry{}, err
	}
	kind, err := p.expectIdent()
	if err != nil {
		return ast.ReadEntry{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return ast.ReadEntry{}, err
	}
	mk := ast.MatchKind(kind)
	switch mk {
	case ast.MatchExact, ast.MatchTernary, ast.MatchLPM, ast.MatchRange, ast.MatchValid:
	default:
		return ast.ReadEntry{}, p.errf("unknown match kind %q", kind)
	}
	return ast.ReadEntry{Field: &ref, Match: mk}, nil
}

func (p *parser) control(prog *ast.Program) error {
	p.next() // control
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	body, err := p.stmtBlock()
	if err != nil {
		return err
	}
	prog.Controls = append(prog.Controls, &ast.Control{Name: name, Body: body})
	return nil
}

func (p *parser) stmtBlock() ([]ast.Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []ast.Stmt
	for !p.at(lexer.Punct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // }
	return out, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch {
	case p.atIdent("apply"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return ast.Stmt{}, err
		}
		tbl, err := p.expectIdent()
		if err != nil {
			return ast.Stmt{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.Stmt{}, err
		}
		s := ast.Stmt{Kind: ast.StmtApply, Table: tbl}
		if p.at(lexer.Punct, ";") {
			p.next()
			return s, nil
		}
		if err := p.expectPunct("{"); err != nil {
			return ast.Stmt{}, err
		}
		for !p.at(lexer.Punct, "}") {
			caseName, err := p.expectIdent()
			if err != nil {
				return ast.Stmt{}, err
			}
			body, err := p.stmtBlock()
			if err != nil {
				return ast.Stmt{}, err
			}
			ac := ast.ApplyCase{Body: body}
			switch caseName {
			case "hit":
				ac.Hit = true
			case "miss":
				ac.Miss = true
			default:
				ac.Action = caseName
			}
			s.ApplyCases = append(s.ApplyCases, ac)
		}
		p.next() // }
		return s, nil
	case p.atIdent("if"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return ast.Stmt{}, err
		}
		cond, err := p.boolExpr()
		if err != nil {
			return ast.Stmt{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.Stmt{}, err
		}
		then, err := p.stmtBlock()
		if err != nil {
			return ast.Stmt{}, err
		}
		s := ast.Stmt{Kind: ast.StmtIf, Cond: cond, Then: then}
		if p.atIdent("else") {
			p.next()
			if p.atIdent("if") {
				// else if: parse as a nested single if statement.
				nested, err := p.stmt()
				if err != nil {
					return ast.Stmt{}, err
				}
				s.Else = []ast.Stmt{nested}
			} else {
				els, err := p.stmtBlock()
				if err != nil {
					return ast.Stmt{}, err
				}
				s.Else = els
			}
		}
		return s, nil
	default:
		// Control function call: name();
		name, err := p.expectIdent()
		if err != nil {
			return ast.Stmt{}, err
		}
		if err := p.expectPunct("("); err != nil {
			return ast.Stmt{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.Stmt{}, err
		}
		if err := p.expectPunct(";"); err != nil {
			return ast.Stmt{}, err
		}
		return ast.Stmt{Kind: ast.StmtCall, Control: name}, nil
	}
}

// boolExpr parses or-expressions (lowest precedence).
func (p *parser) boolExpr() (ast.BoolExpr, error) {
	left, err := p.boolAnd()
	if err != nil {
		return ast.BoolExpr{}, err
	}
	for p.atIdent("or") || p.at(lexer.Punct, "||") {
		p.next()
		right, err := p.boolAnd()
		if err != nil {
			return ast.BoolExpr{}, err
		}
		l := left
		left = ast.BoolExpr{Kind: ast.BoolOr, A: &l, B: &right}
	}
	return left, nil
}

func (p *parser) boolAnd() (ast.BoolExpr, error) {
	left, err := p.boolUnary()
	if err != nil {
		return ast.BoolExpr{}, err
	}
	for p.atIdent("and") || p.at(lexer.Punct, "&&") {
		p.next()
		right, err := p.boolUnary()
		if err != nil {
			return ast.BoolExpr{}, err
		}
		l := left
		left = ast.BoolExpr{Kind: ast.BoolAnd, A: &l, B: &right}
	}
	return left, nil
}

func (p *parser) boolUnary() (ast.BoolExpr, error) {
	if p.atIdent("not") || p.at(lexer.Punct, "!") {
		p.next()
		inner, err := p.boolUnary()
		if err != nil {
			return ast.BoolExpr{}, err
		}
		return ast.BoolExpr{Kind: ast.BoolNot, A: &inner}, nil
	}
	if p.at(lexer.Punct, "(") {
		// Could be a parenthesized bool expr; comparisons never start with (.
		p.next()
		inner, err := p.boolExpr()
		if err != nil {
			return ast.BoolExpr{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.BoolExpr{}, err
		}
		return inner, nil
	}
	if p.atIdent("valid") {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return ast.BoolExpr{}, err
		}
		h, err := p.headerRef()
		if err != nil {
			return ast.BoolExpr{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ast.BoolExpr{}, err
		}
		return ast.BoolExpr{Kind: ast.BoolValid, Valid: &h}, nil
	}
	// Comparison: expr op expr.
	left, err := p.exprArg(nil)
	if err != nil {
		return ast.BoolExpr{}, err
	}
	opTok := p.cur()
	var op ast.CmpOp
	switch opTok.Text {
	case "==", "!=", "<", "<=", ">", ">=":
		op = ast.CmpOp(opTok.Text)
	default:
		return ast.BoolExpr{}, p.errf("expected comparison operator, found %s", opTok)
	}
	p.next()
	right, err := p.exprArg(nil)
	if err != nil {
		return ast.BoolExpr{}, err
	}
	return ast.BoolExpr{Kind: ast.BoolCmp, Left: &left, Op: op, Right: &right}, nil
}

func (p *parser) register(prog *ast.Program) error {
	p.next() // register
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	r := &ast.Register{Name: name}
	for !p.at(lexer.Punct, "}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		switch key {
		case "width":
			r.Width, err = p.expectInt()
		case "instance_count":
			r.InstanceCount, err = p.expectInt()
		case "direct":
			r.DirectTable, err = p.expectIdent()
		default:
			return p.errf("unknown register property %q", key)
		}
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	p.next() // }
	prog.Registers = append(prog.Registers, r)
	return nil
}

func (p *parser) counter(prog *ast.Program) error {
	p.next() // counter
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	c := &ast.Counter{Name: name}
	for !p.at(lexer.Punct, "}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		switch key {
		case "type":
			kind, err := p.expectIdent()
			if err != nil {
				return err
			}
			c.Kind = ast.CounterKind(kind)
		case "instance_count":
			c.InstanceCount, err = p.expectInt()
			if err != nil {
				return err
			}
		case "direct":
			c.DirectTable, err = p.expectIdent()
			if err != nil {
				return err
			}
		default:
			return p.errf("unknown counter property %q", key)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	p.next() // }
	prog.Counters = append(prog.Counters, c)
	return nil
}

func (p *parser) meter(prog *ast.Program) error {
	p.next() // meter
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	m := &ast.Meter{Name: name}
	for !p.at(lexer.Punct, "}") {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		switch key {
		case "type":
			kind, err := p.expectIdent()
			if err != nil {
				return err
			}
			m.Kind = ast.MeterKind(kind)
		case "instance_count":
			m.InstanceCount, err = p.expectInt()
			if err != nil {
				return err
			}
		case "direct":
			m.DirectTable, err = p.expectIdent()
			if err != nil {
				return err
			}
		default:
			return p.errf("unknown meter property %q", key)
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	p.next() // }
	prog.Meters = append(prog.Meters, m)
	return nil
}
