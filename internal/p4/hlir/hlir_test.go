package hlir

import (
	"strings"
	"testing"

	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/parser"
)

func resolve(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func resolveErr(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Resolve(prog)
	if err == nil {
		t.Fatalf("expected resolve error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %v does not contain %q", err, wantSub)
	}
}

const okProgram = `
header_type eth_t { fields { dst : 48; src : 48; et : 16; } }
header_type meta_t { fields { color : 8; } }
header eth_t eth;
metadata meta_t m;
parser start {
    extract(eth);
    return select(latest.et) {
        0x0800 : parse_more;
        default : ingress;
    }
}
parser parse_more { return ingress; }
action fwd(p) { modify_field(standard_metadata.egress_spec, p); }
action nop() { no_op(); }
table t0 { reads { eth.dst : exact; } actions { fwd; nop; } }
control ingress { apply(t0); }
`

func TestResolveOK(t *testing.T) {
	p := resolve(t, okProgram)
	if _, ok := p.Instances[StandardMetadata]; !ok {
		t.Error("standard_metadata not implicitly declared")
	}
	w, err := p.FieldWidth(ast.FieldRef{Instance: "eth", Index: ast.IndexNone, Field: "src"})
	if err != nil || w != 48 {
		t.Errorf("FieldWidth(eth.src) = %d, %v", w, err)
	}
	off, err := p.FieldOffset(ast.FieldRef{Instance: "eth", Index: ast.IndexNone, Field: "et"})
	if err != nil || off != 96 {
		t.Errorf("FieldOffset(eth.et) = %d, %v", off, err)
	}
	if len(p.HeaderOrder) != 1 || p.HeaderOrder[0] != "eth" {
		t.Errorf("HeaderOrder = %v", p.HeaderOrder)
	}
	if len(p.TableOrder) != 1 || p.TableOrder[0] != "t0" {
		t.Errorf("TableOrder = %v", p.TableOrder)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown type", `header nope_t x;`, "unknown header type"},
		{"dup header type", `header_type a { fields { x : 8; } } header_type a { fields { x : 8; } }`, "duplicate header type"},
		{"dup instance", `header_type a { fields { x : 8; } } header a h; header a h;`, "duplicate instance"},
		{"unaligned header", `header_type a { fields { x : 4; } } header a h;`, "not byte-aligned"},
		{"unknown state", `header_type a { fields { x : 8; } } header a h; parser start { extract(h); return nowhere; }`, "unknown parser state"},
		{"extract metadata", `header_type a { fields { x : 8; } } metadata a m; parser start { extract(m); return ingress; }`, "cannot extract metadata"},
		{"table unknown action", `table t { actions { ghost; } } control ingress { apply(t); }`, "unknown action"},
		{"table no actions", `header_type a { fields { x : 8; } } header a h; parser start { extract(h); return ingress; } table t { reads { h.x : exact; } actions { } } `, "no actions"},
		{"apply unknown table", `control ingress { apply(ghost); }`, "unknown table"},
		{"call unknown control", `control ingress { ghost(); }`, "unknown control"},
		{"bad primitive", `action a() { frobnicate(); }`, "unknown primitive"},
		{"bad field in read", `header_type a { fields { x : 8; } } header a h; action n() { no_op(); } table t { reads { h.y : exact; } actions { n; } }`, "no field"},
		{"unknown sublist", `field_list l { nolist; }`, "unknown sub-list"},
		{"calc unknown list", `field_list_calculation c { input { nolist; } algorithm : csum16; output_width : 16; }`, "unknown input list"},
		{"bad algorithm", `field_list l { payload; } field_list_calculation c { input { l; } algorithm : crc32; output_width : 32; }`, "unsupported algorithm"},
		{"stack index oob", `header_type a { fields { x : 8; } } header a h[4]; action n() { modify_field(h[9].x, 1); }`, "out of range"},
		{"index non-stack", `header_type a { fields { x : 8; } } header a h; action n() { modify_field(h[0].x, 1); }`, "not a stack"},
		{"parser no start", `header_type a { fields { x : 8; } } header a h; parser other { extract(h); return ingress; }`, "no start state"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resolveErr(t, c.src, c.want)
		})
	}
}

func TestSelectCaseArityMismatchAST(t *testing.T) {
	// The parser enforces arity syntactically; a hand-built AST can still
	// violate it and must be rejected by Resolve.
	prog, err := parser.Parse("arity", `
header_type a { fields { x : 8; y : 8; } } header a h;
parser start { extract(h); return select(h.x, h.y) { 1, 2 : ingress; default : ingress; } }
`)
	if err != nil {
		t.Fatal(err)
	}
	prog.ParserStates[0].Return.Cases[0].Values = prog.ParserStates[0].Return.Cases[0].Values[:1]
	if _, err := Resolve(prog); err == nil || !strings.Contains(err.Error(), "select case has") {
		t.Errorf("Resolve = %v, want arity error", err)
	}
}

func TestSelectCaseArityOK(t *testing.T) {
	// Two keys, two values per case.
	resolve(t, `
header_type a { fields { x : 8; y : 8; } } header a h;
parser start { extract(h); return select(h.x, h.y) { 1, 2 : ingress; default : ingress; } }
`)
}

func TestHeaderOrderFollowsParseGraph(t *testing.T) {
	p := resolve(t, `
header_type a_t { fields { x : 8; } }
header a_t h1;
header a_t h2;
header a_t h3;
header a_t never;
parser start {
    extract(h1);
    return select(latest.x) {
        1 : s2;
        default : s3;
    }
}
parser s2 { extract(h2); return s3; }
parser s3 { extract(h3); return ingress; }
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t); }
`)
	got := strings.Join(p.HeaderOrder, ",")
	if got != "h1,h2,h3,never" {
		t.Errorf("HeaderOrder = %s", got)
	}
}

func TestKnownPrimitives(t *testing.T) {
	for _, prim := range []string{"modify_field", "drop", "resubmit", "recirculate", "register_write"} {
		if !KnownPrimitive(prim) {
			t.Errorf("%s should be known", prim)
		}
	}
	if KnownPrimitive("florble") {
		t.Error("florble should not be known")
	}
	if len(Primitives()) < 20 {
		t.Errorf("primitive count = %d", len(Primitives()))
	}
}

func TestCompoundActionCall(t *testing.T) {
	// Actions may invoke other actions.
	resolve(t, `
action inner() { no_op(); }
action outer() { inner(); drop(); }
table t { actions { outer; } }
control ingress { apply(t); }
`)
}

func TestStackRequiresIndex(t *testing.T) {
	resolveErr(t, `
header_type a { fields { x : 8; } } header a h[4];
action n() { modify_field(h.x, 1); }
`, "requires an index")
}

func TestValidateControlFlowErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"if bad field", `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action n() { no_op(); }
table t { actions { n; } }
control ingress { if (m.nope == 1) { apply(t); } }
`, "no field"},
		{"valid unknown header", `
action n() { no_op(); }
table t { actions { n; } }
control ingress { if (valid(ghost)) { apply(t); } }
`, "unknown instance"},
		{"and with bad side", `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action n() { no_op(); }
table t { actions { n; } }
control ingress { if (m.x == 1 and valid(ghost)) { apply(t); } }
`, "unknown instance"},
		{"not with bad side", `
action n() { no_op(); }
table t { actions { n; } }
control ingress { if (not valid(ghost)) { apply(t); } }
`, "unknown instance"},
		{"apply case unknown action", `
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t) { ghost { } } }
`, "unknown action"},
		{"nested stmt error", `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action n() { no_op(); }
table t { actions { n; } }
control ingress { if (m.x == 1) { apply(ghost); } }
`, "unknown table"},
		{"else stmt error", `
header_type m_t { fields { x : 8; } }
metadata m_t m;
action n() { no_op(); }
table t { actions { n; } }
control ingress { if (m.x == 1) { apply(t); } else { apply(ghost); } }
`, "unknown table"},
		{"hit block error", `
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t) { hit { apply(ghost); } } }
`, "unknown table"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resolveErr(t, c.src, c.want)
		})
	}
}

func TestInstanceWidth(t *testing.T) {
	p := resolve(t, `
header_type a_t { fields { x : 48; y : 16; } }
header a_t h;
parser start { extract(h); return ingress; }
action n() { no_op(); }
table t { actions { n; } }
control ingress { apply(t); }
`)
	if w := p.Instances["h"].Width(); w != 64 {
		t.Errorf("width = %d", w)
	}
}

func TestCheckHeaderRefViaValidRead(t *testing.T) {
	resolveErr(t, `
header_type a_t { fields { x : 8; } }
header a_t h[2];
action n() { no_op(); }
table t { reads { valid(h[5]) : exact; } actions { n; } }
`, "out of range")
	resolveErr(t, `
action n() { no_op(); }
table t { reads { valid(ghost) : exact; } actions { n; } }
`, "unknown instance")
	// A stack valid read without an index is rejected.
	resolveErr(t, `
header_type a_t { fields { x : 8; } }
header a_t h[2];
action n() { no_op(); }
table t { reads { valid(h) : exact; } actions { n; } }
`, "requires an index")
}

func TestExtractErrors(t *testing.T) {
	resolveErr(t, `
parser start { extract(ghost); return ingress; }
`, "unknown instance")
	resolveErr(t, `
header_type a_t { fields { x : 8; } }
header a_t h;
parser start { extract(h[next]); return ingress; }
`, "not a stack")
}
