// Package hlir resolves a parsed P4 program into a high-level intermediate
// representation: names are bound to declarations, field references are
// checked and given widths and offsets, and the program is validated for the
// invariants the simulator relies on (a start state exists, applied tables
// exist, actions referenced by tables exist, and so on).
//
// It plays the role p4-hlir plays in the paper's toolchain (Figure 1).
package hlir

import (
	"fmt"

	"hyper4/internal/p4/ast"
)

// StandardMetadata is the name of the implicitly declared standard metadata
// instance available to every program.
const StandardMetadata = "standard_metadata"

// Well-known standard metadata fields.
const (
	FieldIngressPort  = "ingress_port"
	FieldEgressSpec   = "egress_spec"
	FieldEgressPort   = "egress_port"
	FieldPacketLength = "packet_length"
	FieldInstanceType = "instance_type"
)

// DropSpec is the egress_spec value that drops a packet (bmv2 convention for
// a 9-bit port space).
const DropSpec = 511

// standardMetadataType mirrors the bmv2 simple_switch standard metadata.
var standardMetadataType = &ast.HeaderType{
	Name: "standard_metadata_t",
	Fields: []ast.FieldDecl{
		{Name: FieldIngressPort, Width: 9},
		{Name: FieldPacketLength, Width: 32},
		{Name: FieldEgressSpec, Width: 9},
		{Name: FieldEgressPort, Width: 9},
		{Name: FieldInstanceType, Width: 32},
	},
}

// Instance is a resolved header or metadata instance.
type Instance struct {
	Decl *ast.Instance
	Type *ast.HeaderType
}

// Width returns the instance's total width in bits (one element's width for
// stacks).
func (i *Instance) Width() int { return i.Type.Width() }

// Program is a resolved P4 program.
type Program struct {
	AST *ast.Program

	HeaderTypes map[string]*ast.HeaderType
	Instances   map[string]*Instance
	FieldLists  map[string]*ast.FieldList
	Calcs       map[string]*ast.FieldListCalc
	States      map[string]*ast.ParserState
	Actions     map[string]*ast.Action
	Tables      map[string]*ast.Table
	Controls    map[string]*ast.Control
	Registers   map[string]*ast.Register
	Counters    map[string]*ast.Counter
	Meters      map[string]*ast.Meter

	// TableOrder preserves declaration order for deterministic iteration.
	TableOrder []string
	// HeaderOrder is the deparse order: header instances in the order they
	// are first extracted on a DFS of the parse graph, stacks expanded.
	HeaderOrder []string
}

// Resolve builds and validates the HLIR for a parsed program.
func Resolve(prog *ast.Program) (*Program, error) {
	p := &Program{
		AST:         prog,
		HeaderTypes: map[string]*ast.HeaderType{},
		Instances:   map[string]*Instance{},
		FieldLists:  map[string]*ast.FieldList{},
		Calcs:       map[string]*ast.FieldListCalc{},
		States:      map[string]*ast.ParserState{},
		Actions:     map[string]*ast.Action{},
		Tables:      map[string]*ast.Table{},
		Controls:    map[string]*ast.Control{},
		Registers:   map[string]*ast.Register{},
		Counters:    map[string]*ast.Counter{},
		Meters:      map[string]*ast.Meter{},
	}
	p.HeaderTypes[standardMetadataType.Name] = standardMetadataType
	for _, ht := range prog.HeaderTypes {
		if _, dup := p.HeaderTypes[ht.Name]; dup {
			return nil, fmt.Errorf("duplicate header type %q", ht.Name)
		}
		p.HeaderTypes[ht.Name] = ht
	}
	p.Instances[StandardMetadata] = &Instance{
		Decl: &ast.Instance{Name: StandardMetadata, TypeName: standardMetadataType.Name, Metadata: true},
		Type: standardMetadataType,
	}
	for _, inst := range prog.Instances {
		if _, dup := p.Instances[inst.Name]; dup {
			return nil, fmt.Errorf("duplicate instance %q", inst.Name)
		}
		ht, ok := p.HeaderTypes[inst.TypeName]
		if !ok {
			return nil, fmt.Errorf("instance %q: unknown header type %q", inst.Name, inst.TypeName)
		}
		if ht.Width()%8 != 0 && !inst.Metadata {
			return nil, fmt.Errorf("header instance %q: type %q width %d is not byte-aligned", inst.Name, ht.Name, ht.Width())
		}
		p.Instances[inst.Name] = &Instance{Decl: inst, Type: ht}
	}
	for _, fl := range prog.FieldLists {
		p.FieldLists[fl.Name] = fl
	}
	for _, c := range prog.FieldListCalcs {
		p.Calcs[c.Name] = c
	}
	for _, st := range prog.ParserStates {
		if _, dup := p.States[st.Name]; dup {
			return nil, fmt.Errorf("duplicate parser state %q", st.Name)
		}
		p.States[st.Name] = st
	}
	for _, a := range prog.Actions {
		if _, dup := p.Actions[a.Name]; dup {
			return nil, fmt.Errorf("duplicate action %q", a.Name)
		}
		p.Actions[a.Name] = a
	}
	for _, t := range prog.Tables {
		if _, dup := p.Tables[t.Name]; dup {
			return nil, fmt.Errorf("duplicate table %q", t.Name)
		}
		p.Tables[t.Name] = t
		p.TableOrder = append(p.TableOrder, t.Name)
	}
	for _, c := range prog.Controls {
		p.Controls[c.Name] = c
	}
	for _, r := range prog.Registers {
		p.Registers[r.Name] = r
	}
	for _, c := range prog.Counters {
		p.Counters[c.Name] = c
	}
	for _, m := range prog.Meters {
		p.Meters[m.Name] = m
	}
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", prog.Name, err)
	}
	p.HeaderOrder = p.computeHeaderOrder()
	return p, nil
}

// FieldWidth returns the bit width of a field reference.
func (p *Program) FieldWidth(ref ast.FieldRef) (int, error) {
	inst, ok := p.Instances[ref.Instance]
	if !ok {
		return 0, fmt.Errorf("unknown instance %q", ref.Instance)
	}
	fd := inst.Type.Field(ref.Field)
	if fd == nil {
		return 0, fmt.Errorf("instance %q has no field %q", ref.Instance, ref.Field)
	}
	return fd.Width, nil
}

// FieldOffset returns the bit offset of a field within its instance.
func (p *Program) FieldOffset(ref ast.FieldRef) (int, error) {
	inst, ok := p.Instances[ref.Instance]
	if !ok {
		return 0, fmt.Errorf("unknown instance %q", ref.Instance)
	}
	off, ok := inst.Type.FieldOffset(ref.Field)
	if !ok {
		return 0, fmt.Errorf("instance %q has no field %q", ref.Instance, ref.Field)
	}
	return off, nil
}

// checkFieldRef validates a field reference, including stack indexing.
func (p *Program) checkFieldRef(ref ast.FieldRef) error {
	inst, ok := p.Instances[ref.Instance]
	if !ok {
		return fmt.Errorf("unknown instance %q", ref.Instance)
	}
	if inst.Decl.IsStack() {
		if ref.Index == ast.IndexNone {
			return fmt.Errorf("stack instance %q requires an index", ref.Instance)
		}
		if ref.Index >= inst.Decl.Count {
			return fmt.Errorf("stack index %d out of range for %q[%d]", ref.Index, ref.Instance, inst.Decl.Count)
		}
	} else if ref.Index >= 0 {
		return fmt.Errorf("instance %q is not a stack", ref.Instance)
	}
	if inst.Type.Field(ref.Field) == nil {
		return fmt.Errorf("instance %q has no field %q", ref.Instance, ref.Field)
	}
	return nil
}

func (p *Program) checkHeaderRef(ref ast.HeaderRef) error {
	inst, ok := p.Instances[ref.Instance]
	if !ok {
		return fmt.Errorf("unknown instance %q", ref.Instance)
	}
	if inst.Decl.IsStack() {
		if ref.Index == ast.IndexNone {
			return fmt.Errorf("stack instance %q requires an index", ref.Instance)
		}
		if ref.Index >= inst.Decl.Count {
			return fmt.Errorf("stack index %d out of range for %q[%d]", ref.Index, ref.Instance, inst.Decl.Count)
		}
	}
	return nil
}

func (p *Program) validate() error {
	if _, ok := p.States["start"]; ok {
		// Validate parser states.
		for _, st := range p.AST.ParserStates {
			if err := p.validateState(st); err != nil {
				return fmt.Errorf("parser %s: %w", st.Name, err)
			}
		}
	} else if len(p.AST.ParserStates) > 0 {
		return fmt.Errorf("parser states declared but no start state")
	}
	for _, a := range p.AST.Actions {
		if err := p.validateAction(a); err != nil {
			return fmt.Errorf("action %s: %w", a.Name, err)
		}
	}
	for _, t := range p.AST.Tables {
		if err := p.validateTable(t); err != nil {
			return fmt.Errorf("table %s: %w", t.Name, err)
		}
	}
	for _, c := range p.AST.Controls {
		if err := p.validateStmts(c.Body); err != nil {
			return fmt.Errorf("control %s: %w", c.Name, err)
		}
	}
	for _, fl := range p.AST.FieldLists {
		for _, e := range fl.Entries {
			if e.Field != nil {
				if err := p.checkFieldRef(*e.Field); err != nil {
					return fmt.Errorf("field_list %s: %w", fl.Name, err)
				}
			} else if e.SubList != "" {
				if _, ok := p.FieldLists[e.SubList]; !ok {
					return fmt.Errorf("field_list %s: unknown sub-list %q", fl.Name, e.SubList)
				}
			}
		}
	}
	for _, c := range p.AST.FieldListCalcs {
		if _, ok := p.FieldLists[c.Input]; !ok {
			return fmt.Errorf("field_list_calculation %s: unknown input list %q", c.Name, c.Input)
		}
		if c.Algorithm != ast.AlgoCsum16 {
			return fmt.Errorf("field_list_calculation %s: unsupported algorithm %q", c.Name, c.Algorithm)
		}
	}
	for _, cf := range p.AST.CalculatedFields {
		if err := p.checkFieldRef(cf.Field); err != nil {
			return fmt.Errorf("calculated_field: %w", err)
		}
		for _, calc := range []string{cf.Verify, cf.Update} {
			if calc != "" {
				if _, ok := p.Calcs[calc]; !ok {
					return fmt.Errorf("calculated_field: unknown calculation %q", calc)
				}
			}
		}
	}
	return nil
}

func (p *Program) validateState(st *ast.ParserState) error {
	for _, stmt := range st.Statements {
		if stmt.Extract != nil {
			if err := p.checkExtractRef(*stmt.Extract); err != nil {
				return err
			}
		} else {
			if err := p.checkFieldRef(stmt.SetField); err != nil {
				return err
			}
		}
	}
	switch st.Return.Kind {
	case ast.ReturnDirect:
		if st.Return.State != ast.StateIngress {
			if _, ok := p.States[st.Return.State]; !ok {
				return fmt.Errorf("unknown parser state %q", st.Return.State)
			}
		}
	case ast.ReturnSelect:
		for _, k := range st.Return.SelectKeys {
			if k.Field != nil {
				if err := p.checkFieldRef(*k.Field); err != nil {
					return err
				}
			}
		}
		for _, c := range st.Return.Cases {
			if !c.Default && len(c.Values) != len(st.Return.SelectKeys) {
				return fmt.Errorf("select case has %d values for %d keys", len(c.Values), len(st.Return.SelectKeys))
			}
			if c.State != ast.StateIngress {
				if _, ok := p.States[c.State]; !ok {
					return fmt.Errorf("unknown parser state %q", c.State)
				}
			}
		}
	}
	return nil
}

// checkExtractRef validates an extract target: a header (not metadata),
// possibly a stack element or [next].
func (p *Program) checkExtractRef(ref ast.HeaderRef) error {
	inst, ok := p.Instances[ref.Instance]
	if !ok {
		return fmt.Errorf("extract of unknown instance %q", ref.Instance)
	}
	if inst.Decl.Metadata {
		return fmt.Errorf("cannot extract metadata instance %q", ref.Instance)
	}
	if inst.Decl.IsStack() {
		if ref.Index == ast.IndexNone {
			return fmt.Errorf("extract of stack %q requires [next] or an index", ref.Instance)
		}
	} else if ref.Index != ast.IndexNone {
		return fmt.Errorf("instance %q is not a stack", ref.Instance)
	}
	return nil
}

func (p *Program) validateAction(a *ast.Action) error {
	for _, call := range a.Body {
		if !KnownPrimitive(call.Name) {
			if _, ok := p.Actions[call.Name]; !ok {
				return fmt.Errorf("unknown primitive or action %q", call.Name)
			}
		}
		for _, arg := range call.Args {
			switch arg.Kind {
			case ast.ExprField:
				if err := p.checkFieldRef(arg.Field); err != nil {
					return err
				}
			case ast.ExprHeader:
				if err := p.checkHeaderRef(arg.Header); err != nil {
					return err
				}
			case ast.ExprName:
				// Could be a field list, register, counter, or meter; checked
				// at execution against the primitive's expectations.
			}
		}
	}
	return nil
}

func (p *Program) validateTable(t *ast.Table) error {
	for _, r := range t.Reads {
		if r.Field != nil {
			if err := p.checkFieldRef(*r.Field); err != nil {
				return err
			}
		}
		if r.Header != nil {
			if err := p.checkHeaderRef(*r.Header); err != nil {
				return err
			}
		}
	}
	if len(t.Actions) == 0 {
		return fmt.Errorf("no actions")
	}
	for _, a := range t.Actions {
		if _, ok := p.Actions[a]; !ok {
			return fmt.Errorf("unknown action %q", a)
		}
	}
	if t.Default != "" {
		if _, ok := p.Actions[t.Default]; !ok {
			return fmt.Errorf("unknown default action %q", t.Default)
		}
	}
	return nil
}

func (p *Program) validateStmts(stmts []ast.Stmt) error {
	for _, s := range stmts {
		switch s.Kind {
		case ast.StmtApply:
			if _, ok := p.Tables[s.Table]; !ok {
				return fmt.Errorf("apply of unknown table %q", s.Table)
			}
			for _, c := range s.ApplyCases {
				if c.Action != "" {
					if _, ok := p.Actions[c.Action]; !ok {
						return fmt.Errorf("apply case for unknown action %q", c.Action)
					}
				}
				if err := p.validateStmts(c.Body); err != nil {
					return err
				}
			}
		case ast.StmtIf:
			if err := p.validateBool(s.Cond); err != nil {
				return err
			}
			if err := p.validateStmts(s.Then); err != nil {
				return err
			}
			if err := p.validateStmts(s.Else); err != nil {
				return err
			}
		case ast.StmtCall:
			if _, ok := p.Controls[s.Control]; !ok {
				return fmt.Errorf("call of unknown control %q", s.Control)
			}
		}
	}
	return nil
}

func (p *Program) validateBool(b ast.BoolExpr) error {
	switch b.Kind {
	case ast.BoolCmp:
		for _, e := range []*ast.Expr{b.Left, b.Right} {
			if e.Kind == ast.ExprField {
				if err := p.checkFieldRef(e.Field); err != nil {
					return err
				}
			}
		}
	case ast.BoolValid:
		return p.checkHeaderRef(*b.Valid)
	case ast.BoolAnd, ast.BoolOr:
		if err := p.validateBool(*b.A); err != nil {
			return err
		}
		return p.validateBool(*b.B)
	case ast.BoolNot:
		return p.validateBool(*b.A)
	}
	return nil
}

// computeHeaderOrder walks the parse graph depth-first from start and records
// header instances in first-extraction order; stack instances appear once
// (elements keep stack order implicitly). Headers never extracted (add_header
// only) are appended in declaration order. This order is the deparse order.
func (p *Program) computeHeaderOrder() []string {
	var order []string
	seen := map[string]bool{}
	visited := map[string]bool{}
	var walk func(state string)
	walk = func(state string) {
		if state == ast.StateIngress || visited[state] {
			return
		}
		visited[state] = true
		st, ok := p.States[state]
		if !ok {
			return
		}
		for _, stmt := range st.Statements {
			if stmt.Extract != nil && !seen[stmt.Extract.Instance] {
				seen[stmt.Extract.Instance] = true
				order = append(order, stmt.Extract.Instance)
			}
		}
		switch st.Return.Kind {
		case ast.ReturnDirect:
			walk(st.Return.State)
		case ast.ReturnSelect:
			for _, c := range st.Return.Cases {
				walk(c.State)
			}
		}
	}
	walk("start")
	for _, inst := range p.AST.Instances {
		if !inst.Metadata && !seen[inst.Name] {
			seen[inst.Name] = true
			order = append(order, inst.Name)
		}
	}
	return order
}

// knownPrimitives is the primitive set the simulator implements.
var knownPrimitives = map[string]bool{
	"modify_field":                true,
	"add_to_field":                true,
	"subtract_from_field":         true,
	"add":                         true,
	"subtract":                    true,
	"bit_and":                     true,
	"bit_or":                      true,
	"bit_xor":                     true,
	"shift_left":                  true,
	"shift_right":                 true,
	"drop":                        true,
	"no_op":                       true,
	"add_header":                  true,
	"remove_header":               true,
	"copy_header":                 true,
	"resubmit":                    true,
	"recirculate":                 true,
	"clone_ingress_pkt_to_egress": true,
	"clone_egress_pkt_to_egress":  true,
	"count":                       true,
	"execute_meter":               true,
	"register_read":               true,
	"register_write":              true,
	"truncate":                    true,
}

// KnownPrimitive reports whether name is a primitive the target implements.
func KnownPrimitive(name string) bool { return knownPrimitives[name] }

// Primitives returns the full primitive set, for documentation and the
// persona generator's coverage accounting. The paper notes P4_14 defines 21
// primitives; this target implements the 24 above (a superset that includes
// the bmv2 clone/stateful variants).
func Primitives() []string {
	out := make([]string, 0, len(knownPrimitives))
	for k := range knownPrimitives {
		out = append(out, k)
	}
	return out
}
