package lexer

import "testing"

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := New(src).All()
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func TestBasicTokens(t *testing.T) {
	toks := kinds(t, "header_type foo { fields { x : 8; } }")
	want := []struct {
		k Kind
		s string
	}{
		{Ident, "header_type"}, {Ident, "foo"}, {Punct, "{"}, {Ident, "fields"},
		{Punct, "{"}, {Ident, "x"}, {Punct, ":"}, {Number, ""}, {Punct, ";"},
		{Punct, "}"}, {Punct, "}"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].Kind, w.k)
		}
		if w.s != "" && toks[i].Text != w.s {
			t.Errorf("token %d text = %q, want %q", i, toks[i].Text, w.s)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := kinds(t, "10 0x0800 0b101 0")
	wants := []int64{10, 0x800, 5, 0}
	for i, w := range wants {
		if toks[i].Kind != Number || toks[i].Num.Int64() != w {
			t.Errorf("token %d = %v, want %d", i, toks[i], w)
		}
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, "a // comment\nb /* block\ncomment */ c # pragma\nd")
	var names []string
	for _, tok := range toks {
		if tok.Kind == Ident {
			names = append(names, tok.Text)
		}
	}
	if len(names) != 4 || names[0] != "a" || names[3] != "d" {
		t.Errorf("idents = %v", names)
	}
}

func TestMultiCharOperators(t *testing.T) {
	toks := kinds(t, "== != <= >= << >> && || < >")
	wantOps := []string{"==", "!=", "<=", ">=", "<<", ">>", "&&", "||", "<", ">"}
	for i, w := range wantOps {
		if toks[i].Kind != Punct || toks[i].Text != w {
			t.Errorf("token %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestLineTracking(t *testing.T) {
	toks := kinds(t, "a\nb\n  c")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 {
		t.Errorf("lines = %d %d %d", toks[0].Line, toks[1].Line, toks[2].Line)
	}
	if toks[2].Col != 3 {
		t.Errorf("col = %d, want 3", toks[2].Col)
	}
}

func TestUnexpectedChar(t *testing.T) {
	if _, err := New("a @ b").All(); err == nil {
		t.Error("expected error for @")
	}
}

func TestEmptyInput(t *testing.T) {
	toks := kinds(t, "")
	if len(toks) != 1 || toks[0].Kind != EOF {
		t.Errorf("empty input tokens = %v", toks)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	toks := kinds(t, "a /* never closed")
	if len(toks) != 2 || toks[0].Text != "a" {
		t.Errorf("tokens = %v", toks)
	}
}
