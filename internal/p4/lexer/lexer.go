// Package lexer tokenizes P4_14 source text.
package lexer

import (
	"fmt"
	"math/big"
	"strings"
	"unicode"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number
	Punct // single- or multi-character punctuation/operator
)

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string   // identifier text or punctuation
	Num  *big.Int // for Number tokens
	Line int
	Col  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case Number:
		return fmt.Sprintf("number %v", t.Num)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Lexer scans P4_14 source.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// multi-character operators, longest first.
var operators = []string{
	"==", "!=", "<=", ">=", "<<", ">>", "&&", "||",
	"{", "}", "(", ")", "[", "]", ";", ":", ",", ".",
	"<", ">", "+", "-", "*", "/", "&", "|", "^", "~", "!", "=", "%",
}

// Next returns the next token, or an error for unrecognized input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line, Col: l.col}, nil
	}
	start := Token{Line: l.line, Col: l.col}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		begin := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance()
		}
		start.Kind = Ident
		start.Text = l.src[begin:l.pos]
		return start, nil
	case c >= '0' && c <= '9':
		begin := l.pos
		base := 10
		if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
			base = 16
			l.advance()
			l.advance()
			begin = l.pos
		} else if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'b' || l.src[l.pos+1] == 'B') {
			base = 2
			l.advance()
			l.advance()
			begin = l.pos
		}
		for l.pos < len(l.src) && isBaseDigit(l.src[l.pos], base) {
			l.advance()
		}
		text := l.src[begin:l.pos]
		if text == "" {
			return Token{}, fmt.Errorf("line %d: malformed number", start.Line)
		}
		n, ok := new(big.Int).SetString(text, base)
		if !ok {
			return Token{}, fmt.Errorf("line %d: malformed number %q", start.Line, text)
		}
		start.Kind = Number
		start.Num = n
		return start, nil
	default:
		for _, op := range operators {
			if strings.HasPrefix(l.src[l.pos:], op) {
				for range op {
					l.advance()
				}
				start.Kind = Punct
				start.Text = op
				return start, nil
			}
		}
		return Token{}, fmt.Errorf("line %d:%d: unexpected character %q", l.line, l.col, rune(c))
	}
}

// All tokenizes the entire input.
func (l *Lexer) All() ([]Token, error) {
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '#':
			// Preprocessor-style lines (e.g. #define) are skipped whole; the
			// subset does not use macros but generated banners may carry them.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *Lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}

func isBaseDigit(c byte, base int) bool {
	switch base {
	case 2:
		return c == '0' || c == '1'
	case 16:
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
	default:
		return c >= '0' && c <= '9'
	}
}
