package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hyper4/internal/pkt"
	pktio "hyper4/internal/runtime"
)

// Host is an end station with a minimal protocol stack: it answers ARP
// requests for its address, answers ICMP echo requests, and counts TCP/UDP
// payload bytes delivered to it.
type Host struct {
	Name string
	MAC  pkt.MAC
	IP   pkt.IP4

	net      *Network
	attached *SwitchNode
	port     int
	// tr is the host's end of the channel link to its switch — the host NIC.
	tr *pktio.ChanTransport

	// Receive-side accounting.
	RxFrames  atomic.Int64
	RxBytes   atomic.Int64 // TCP+UDP payload bytes
	EchoSent  atomic.Int64
	EchoRecvd atomic.Int64

	// echoReply signals the arrival of an echo reply (for ping flood).
	echoReply chan uint16
	// arpReply signals ARP replies (resolved MAC).
	arpReply chan pkt.MAC

	mu       sync.Mutex
	sinkWant int64
	sinkDone chan struct{}
}

// AddHost creates a host.
func (n *Network) AddHost(name string, mac pkt.MAC, ip pkt.IP4) *Host {
	h := &Host{
		Name:      name,
		MAC:       mac,
		IP:        ip,
		net:       n,
		echoReply: make(chan uint16, linkBuf),
		arpReply:  make(chan pkt.MAC, 4),
	}
	n.hosts[name] = h
	return h
}

// Send transmits a frame from the host into the network, padded to the
// Ethernet minimum as a real NIC would. It blocks while the link buffer is
// full (the NIC queue backpressures the application) and fails once the
// network has stopped.
func (h *Host) Send(data []byte) error {
	if h.tr == nil {
		return fmt.Errorf("netsim: host %s not attached", h.Name)
	}
	if err := h.tr.Send(pktio.Frame{Data: pkt.Pad(data)}); err != nil {
		return fmt.Errorf("netsim: network stopped")
	}
	return nil
}

// Expect arms the byte sink: the returned channel closes once the host has
// received at least want TCP/UDP payload bytes (counted from zero now).
func (h *Host) Expect(want int64) <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.RxBytes.Store(0)
	h.sinkWant = want
	h.sinkDone = make(chan struct{})
	return h.sinkDone
}

func (h *Host) run() {
	defer h.net.wg.Done()
	var f pktio.Frame
	for {
		if err := h.tr.Recv(&f); err != nil {
			return
		}
		h.handle(f.Data)
	}
}

func (h *Host) handle(data []byte) {
	h.RxFrames.Add(1)
	eth, rest, err := pkt.DecodeEthernet(data)
	if err != nil {
		return
	}
	switch eth.EtherType {
	case pkt.EtherTypeARP:
		a, err := pkt.DecodeARP(rest)
		if err != nil {
			return
		}
		switch {
		case a.Op == pkt.ARPRequest && a.TargetIP == h.IP:
			reply := pkt.Serialize(
				&pkt.Ethernet{Dst: eth.Src, Src: h.MAC, EtherType: pkt.EtherTypeARP},
				&pkt.ARP{Op: pkt.ARPReply, SenderHW: h.MAC, SenderIP: h.IP, TargetHW: a.SenderHW, TargetIP: a.SenderIP},
			)
			_ = h.Send(reply)
		case a.Op == pkt.ARPReply && a.TargetIP == h.IP:
			select {
			case h.arpReply <- a.SenderHW:
			default:
			}
		}
	case pkt.EtherTypeIPv4:
		ip, payload, err := pkt.DecodeIPv4(rest)
		if err != nil || ip.Dst != h.IP {
			return
		}
		switch ip.Protocol {
		case pkt.IPProtoICMP:
			ic, echoData, err := pkt.DecodeICMP(payload)
			if err != nil {
				return
			}
			switch ic.Type {
			case pkt.ICMPEchoRequest:
				reply := pkt.Serialize(
					&pkt.Ethernet{Dst: eth.Src, Src: h.MAC, EtherType: pkt.EtherTypeIPv4},
					&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: h.IP, Dst: ip.Src},
					&pkt.ICMP{Type: pkt.ICMPEchoReply, ID: ic.ID, Seq: ic.Seq},
					pkt.Payload(echoData),
				)
				_ = h.Send(reply)
			case pkt.ICMPEchoReply:
				h.EchoRecvd.Add(1)
				select {
				case h.echoReply <- ic.Seq:
				default:
				}
			}
		case pkt.IPProtoTCP:
			t, body, err := pkt.DecodeTCP(payload)
			if err != nil {
				return
			}
			_ = t
			h.addPayload(clipPayload(ip, 20+20, body))
		case pkt.IPProtoUDP:
			_, body, err := pkt.DecodeUDP(payload)
			if err != nil {
				return
			}
			h.addPayload(clipPayload(ip, 20+8, body))
		}
	}
}

// clipPayload strips Ethernet padding using the IP total length.
func clipPayload(ip *pkt.IPv4, hdrs int, body []byte) int64 {
	n := int(ip.TotalLen) - hdrs
	if n < 0 {
		n = 0
	}
	if n > len(body) {
		n = len(body)
	}
	return int64(n)
}

func (h *Host) addPayload(n int64) {
	got := h.RxBytes.Add(n)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sinkDone != nil && got >= h.sinkWant {
		close(h.sinkDone)
		h.sinkDone = nil
	}
}
