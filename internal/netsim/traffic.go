package netsim

import (
	"fmt"
	"time"

	"hyper4/internal/pkt"
)

// trafficTimeout bounds each traffic operation.
const trafficTimeout = 30 * time.Second

// PingResult reports a ping flood run.
type PingResult struct {
	Count   int
	Elapsed time.Duration
}

// PerPing returns the mean time per echo exchange.
func (r PingResult) PerPing() time.Duration {
	if r.Count == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Count)
}

// PingFlood emulates "ping -f -c count": each echo request is sent as soon
// as the previous reply arrives (§6.4).
func (n *Network) PingFlood(srcName, dstName string, count int) (PingResult, error) {
	src, ok := n.hosts[srcName]
	if !ok {
		return PingResult{}, fmt.Errorf("netsim: no host %q", srcName)
	}
	dst, ok := n.hosts[dstName]
	if !ok {
		return PingResult{}, fmt.Errorf("netsim: no host %q", dstName)
	}
	// Drain stale replies.
	for {
		select {
		case <-src.echoReply:
			continue
		default:
		}
		break
	}
	deadline := time.NewTimer(trafficTimeout)
	defer deadline.Stop()
	start := time.Now()
	for seq := 1; seq <= count; seq++ {
		req := pkt.Serialize(
			&pkt.Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: src.IP, Dst: dst.IP},
			&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 0x77, Seq: uint16(seq)},
			pkt.Payload("hyper4-ping-payload-5678"),
		)
		if err := src.Send(req); err != nil {
			return PingResult{}, err
		}
		src.EchoSent.Add(1)
		select {
		case <-src.echoReply:
		case <-deadline.C:
			return PingResult{}, fmt.Errorf("netsim: ping %d/%d timed out", seq, count)
		case <-n.stop:
			return PingResult{}, fmt.Errorf("netsim: network stopped")
		}
	}
	return PingResult{Count: count, Elapsed: time.Since(start)}, nil
}

// IperfResult reports a bulk-transfer run.
type IperfResult struct {
	Bytes   int64
	Elapsed time.Duration
}

// Mbps returns the goodput in megabits per second.
func (r IperfResult) Mbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / 1e6 / r.Elapsed.Seconds()
}

// Iperf emulates an iperf3-style bulk TCP transfer: the source streams
// totalBytes of payload in mss-sized segments (backpressured by the link
// buffers); the run completes when the sink has received every byte.
func (n *Network) Iperf(srcName, dstName string, totalBytes int64, mss int) (IperfResult, error) {
	src, ok := n.hosts[srcName]
	if !ok {
		return IperfResult{}, fmt.Errorf("netsim: no host %q", srcName)
	}
	dst, ok := n.hosts[dstName]
	if !ok {
		return IperfResult{}, fmt.Errorf("netsim: no host %q", dstName)
	}
	if mss <= 0 || mss > 1400 {
		return IperfResult{}, fmt.Errorf("netsim: bad mss %d", mss)
	}
	done := dst.Expect(totalBytes)
	payload := make([]byte, mss)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	var seq uint32
	for sent := int64(0); sent < totalBytes; {
		chunk := int64(mss)
		if rem := totalBytes - sent; rem < chunk {
			chunk = rem
		}
		seg := pkt.Serialize(
			&pkt.Ethernet{Dst: dst.MAC, Src: src.MAC, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: src.IP, Dst: dst.IP},
			&pkt.TCP{SrcPort: 5001, DstPort: 5201, Seq: seq, Flags: pkt.TCPAck},
			pkt.Payload(payload[:chunk]),
		)
		if err := src.Send(seg); err != nil {
			return IperfResult{}, err
		}
		seq += uint32(chunk)
		sent += chunk
	}
	select {
	case <-done:
	case <-time.After(trafficTimeout):
		return IperfResult{}, fmt.Errorf("netsim: iperf timed out (%d/%d bytes)", dst.RxBytes.Load(), totalBytes)
	case <-n.stop:
		return IperfResult{}, fmt.Errorf("netsim: network stopped")
	}
	return IperfResult{Bytes: totalBytes, Elapsed: time.Since(start)}, nil
}

// ResolveARP sends an ARP request from src for targetIP and waits for the
// reply, exercising ARP proxies in the path.
func (n *Network) ResolveARP(srcName string, targetIP pkt.IP4) (pkt.MAC, error) {
	src, ok := n.hosts[srcName]
	if !ok {
		return pkt.MAC{}, fmt.Errorf("netsim: no host %q", srcName)
	}
	req := pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: src.MAC, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: src.MAC, SenderIP: src.IP, TargetIP: targetIP},
	)
	if err := src.Send(req); err != nil {
		return pkt.MAC{}, err
	}
	select {
	case mac := <-src.arpReply:
		return mac, nil
	case <-time.After(trafficTimeout):
		return pkt.MAC{}, fmt.Errorf("netsim: ARP for %s timed out", targetIP)
	case <-n.stop:
		return pkt.MAC{}, fmt.Errorf("netsim: network stopped")
	}
}
