// Package netsim is the network substrate for the paper's end-to-end
// measurements (§6.4): switches running internal/sim programs, hosts with a
// small protocol stack (ARP, ICMP echo, TCP/UDP byte sinks), and links as
// in-process channel transports. It replaces the paper's Mininet
// environment; the traffic generators in traffic.go replace iperf3 and
// ping -f.
//
// Every switch runs the packet I/O runtime from internal/runtime: each link
// endpoint is a pktio.ChanTransport attached to a switch port, ingestion and
// egress go through the runtime's RX/TX loops and per-worker rings, and the
// bespoke goroutine-per-node frame plumbing this package used to carry is
// gone. Links are lossless (a full ring backpressures the sender, modeling
// a reliable veth), so the only frame loss inside the fabric is egress to an
// unconnected port — counted, and reported by Stop.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	pktio "hyper4/internal/runtime"
	"hyper4/internal/sim"
)

// linkBuf is the per-link frame buffer (a stand-in for NIC/switch queues).
const linkBuf = 512

// Network is a topology of switches and hosts.
type Network struct {
	switches map[string]*SwitchNode
	hosts    map[string]*Host
	links    []*pktio.ChanTransport // one endpoint per link, for teardown
	started  bool
	stop     chan struct{}
	stopOnce sync.Once
	drops    int64
	wg       sync.WaitGroup // host goroutines; switches are runtime-managed

	// Workers is the per-switch worker count, read when a switch is added.
	// The default 1 keeps each switch a single forwarding loop, which is
	// what the paper's single-core bmv2 baseline models.
	Workers int

	// SwitchOverhead is a fixed per-packet cost added at every switch,
	// modeling the environment the paper measured in (bmv2 behind Mininet
	// veths in a VM has a large fixed per-packet cost that dominates its
	// native numbers). Zero disables it.
	SwitchOverhead time.Duration
}

// New creates an empty network.
func New() *Network {
	return &Network{
		switches: map[string]*SwitchNode{},
		hosts:    map[string]*Host{},
		stop:     make(chan struct{}),
	}
}

// SwitchNode wraps a switch in the topology: the sim.Switch pipeline plus
// the I/O runtime that feeds it.
type SwitchNode struct {
	Name string
	SW   *sim.Switch
	// RT is the packet I/O runtime carrying this switch's traffic; its
	// Metrics expose per-port ring depths and drop counters.
	RT *pktio.Runtime

	net *Network

	// ProcErrs counts packets the switch failed on (pipeline errors).
	ProcErrs atomic.Int64
}

// Process implements pktio.Processor: the per-packet switch overhead model
// in front of the real pipeline, with pipeline errors counted.
func (sn *SwitchNode) Process(data []byte, port int) ([]sim.Output, *sim.Trace, error) {
	if d := sn.net.SwitchOverhead; d > 0 {
		// Busy-wait: time.Sleep overshoots by an order of magnitude at
		// microsecond scales, which would distort the calibration.
		for start := time.Now(); time.Since(start) < d; {
		}
	}
	outs, tr, err := sn.SW.Process(data, port)
	if err != nil {
		sn.ProcErrs.Add(1)
	}
	return outs, tr, err
}

// AddSwitch attaches a switch to the network.
func (n *Network) AddSwitch(name string, sw *sim.Switch) *SwitchNode {
	sn := &SwitchNode{Name: name, SW: sw, net: n}
	sn.RT = pktio.New(sn, pktio.Config{
		Workers:  n.Workers,
		RingSize: linkBuf,
		Lossless: true,
	})
	n.switches[name] = sn
	return sn
}

// Switch returns a switch node by name.
func (n *Network) Switch(name string) *SwitchNode { return n.switches[name] }

// Host returns a host by name.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// Connect attaches a host to a switch port over a fresh channel link.
func (n *Network) Connect(swName string, port int, hostName string) error {
	sn, ok := n.switches[swName]
	if !ok {
		return fmt.Errorf("netsim: no switch %q", swName)
	}
	h, ok := n.hosts[hostName]
	if !ok {
		return fmt.Errorf("netsim: no host %q", hostName)
	}
	if h.tr != nil {
		return fmt.Errorf("netsim: host %q already attached", hostName)
	}
	swEnd, hostEnd := pktio.NewChanPair(linkBuf)
	if err := sn.RT.Attach(port, swEnd); err != nil {
		swEnd.Close()
		return fmt.Errorf("netsim: %s port %d: %w", swName, port, err)
	}
	h.tr = hostEnd
	h.attached = sn
	h.port = port
	n.links = append(n.links, swEnd)
	return nil
}

// ConnectSwitches links two switch ports over a fresh channel link.
func (n *Network) ConnectSwitches(aName string, aPort int, bName string, bPort int) error {
	a, ok := n.switches[aName]
	if !ok {
		return fmt.Errorf("netsim: no switch %q", aName)
	}
	b, ok := n.switches[bName]
	if !ok {
		return fmt.Errorf("netsim: no switch %q", bName)
	}
	aEnd, bEnd := pktio.NewChanPair(linkBuf)
	if err := a.RT.Attach(aPort, aEnd); err != nil {
		aEnd.Close()
		return fmt.Errorf("netsim: %s port %d: %w", aName, aPort, err)
	}
	if err := b.RT.Attach(bPort, bEnd); err != nil {
		_ = a.RT.Detach(aPort)
		return fmt.Errorf("netsim: %s port %d: %w", bName, bPort, err)
	}
	n.links = append(n.links, aEnd)
	return nil
}

// Start launches the switch runtimes and host goroutines.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	for _, sn := range n.switches {
		sn.RT.Start()
	}
	for _, h := range n.hosts {
		if h.tr == nil {
			continue // never connected; nothing to receive
		}
		n.wg.Add(1)
		go h.run()
	}
}

// Stop terminates the network, waits for its goroutines, and returns the
// total number of frames the fabric dropped: ring overflow (none in normal
// lossless operation), frames torn down mid-flight at Stop — egress that
// failed Send once its link closed, plus frames still buffered inside the
// links when everything stopped — and, the common case, frames a program
// emitted toward a port with nothing connected, which previous versions of
// this package dropped silently. Frames a host's stack had accepted but not
// yet acted on are the one loss left uncounted (the host "received" them).
// Idempotent; repeated calls return the same count.
func (n *Network) Stop() int64 {
	n.stopOnce.Do(func() {
		close(n.stop)
		// Close every link first: hosts blocked in Send/Recv and switch RX
		// loops all unblock with ErrClosed, from either end.
		for _, l := range n.links {
			l.Close()
		}
		for _, h := range n.hosts {
			if h.tr != nil {
				h.tr.Close()
			}
		}
		n.wg.Wait()
		var drops int64
		for _, sn := range n.switches {
			sn.RT.Close()
			m := sn.RT.Metrics()
			drops += int64(m.Drops())
			// Queued egress that hit the already-closed link failed Send and
			// was counted as a TX error — teardown loss here.
			for _, p := range m.Ports {
				drops += int64(p.TxErrors)
			}
		}
		// Frames that made it into a link buffer but were never received by
		// the far side before everything stopped.
		for _, l := range n.links {
			drops += int64(l.Buffered())
		}
		n.drops = drops
	})
	return n.drops
}
