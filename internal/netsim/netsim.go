// Package netsim is the network substrate for the paper's end-to-end
// measurements (§6.4): switches running internal/sim programs, hosts with a
// small protocol stack (ARP, ICMP echo, TCP/UDP byte sinks), and links as
// buffered channels. It replaces the paper's Mininet environment; the
// traffic generators in traffic.go replace iperf3 and ping -f.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyper4/internal/sim"
)

// linkBuf is the per-link frame buffer (a stand-in for NIC/switch queues).
const linkBuf = 512

// frame is one packet in flight.
type frame struct {
	data []byte
	port int // ingress port at the receiving node
}

// node is anything that can accept a frame on a port.
type node interface {
	deliver(f frame) bool
	name() string
}

// Network is a topology of switches and hosts.
type Network struct {
	switches map[string]*SwitchNode
	hosts    map[string]*Host
	started  bool
	stop     chan struct{}
	wg       sync.WaitGroup

	// SwitchOverhead is a fixed per-packet cost added at every switch,
	// modeling the environment the paper measured in (bmv2 behind Mininet
	// veths in a VM has a large fixed per-packet cost that dominates its
	// native numbers). Zero disables it.
	SwitchOverhead time.Duration
}

// New creates an empty network.
func New() *Network {
	return &Network{
		switches: map[string]*SwitchNode{},
		hosts:    map[string]*Host{},
		stop:     make(chan struct{}),
	}
}

// SwitchNode wraps a switch in the topology.
type SwitchNode struct {
	Name string
	SW   *sim.Switch

	in    chan frame
	peers map[int]node // port → attached node
	// peerPort maps local port → ingress port at the peer (switch links).
	peerPort map[int]int
	net      *Network

	// ProcErrs counts packets the switch failed on (pipeline errors).
	ProcErrs atomic.Int64
}

func (s *SwitchNode) name() string { return s.Name }

func (s *SwitchNode) deliver(f frame) bool {
	select {
	case s.in <- f:
		return true
	case <-s.net.stop:
		return false
	}
}

// AddSwitch attaches a switch to the network.
func (n *Network) AddSwitch(name string, sw *sim.Switch) *SwitchNode {
	sn := &SwitchNode{
		Name:     name,
		SW:       sw,
		in:       make(chan frame, linkBuf),
		peers:    map[int]node{},
		peerPort: map[int]int{},
		net:      n,
	}
	n.switches[name] = sn
	return sn
}

// Switch returns a switch node by name.
func (n *Network) Switch(name string) *SwitchNode { return n.switches[name] }

// Host returns a host by name.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// Connect attaches a host to a switch port.
func (n *Network) Connect(swName string, port int, hostName string) error {
	sn, ok := n.switches[swName]
	if !ok {
		return fmt.Errorf("netsim: no switch %q", swName)
	}
	h, ok := n.hosts[hostName]
	if !ok {
		return fmt.Errorf("netsim: no host %q", hostName)
	}
	if _, busy := sn.peers[port]; busy {
		return fmt.Errorf("netsim: %s port %d already connected", swName, port)
	}
	if h.attached != nil {
		return fmt.Errorf("netsim: host %q already attached", hostName)
	}
	sn.peers[port] = h
	sn.peerPort[port] = 0
	h.attached = sn
	h.port = port
	return nil
}

// ConnectSwitches links two switch ports.
func (n *Network) ConnectSwitches(aName string, aPort int, bName string, bPort int) error {
	a, ok := n.switches[aName]
	if !ok {
		return fmt.Errorf("netsim: no switch %q", aName)
	}
	b, ok := n.switches[bName]
	if !ok {
		return fmt.Errorf("netsim: no switch %q", bName)
	}
	if _, busy := a.peers[aPort]; busy {
		return fmt.Errorf("netsim: %s port %d already connected", aName, aPort)
	}
	if _, busy := b.peers[bPort]; busy {
		return fmt.Errorf("netsim: %s port %d already connected", bName, bPort)
	}
	a.peers[aPort] = b
	a.peerPort[aPort] = bPort
	b.peers[bPort] = a
	b.peerPort[bPort] = aPort
	return nil
}

// Start launches switch and host goroutines.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	for _, sn := range n.switches {
		n.wg.Add(1)
		go sn.run()
	}
	for _, h := range n.hosts {
		n.wg.Add(1)
		go h.run()
	}
}

// Stop terminates the network and waits for its goroutines.
func (n *Network) Stop() {
	select {
	case <-n.stop:
		return // already stopped
	default:
	}
	close(n.stop)
	n.wg.Wait()
}

func (sn *SwitchNode) run() {
	defer sn.net.wg.Done()
	for {
		select {
		case <-sn.net.stop:
			return
		case f := <-sn.in:
			if d := sn.net.SwitchOverhead; d > 0 {
				// Busy-wait: time.Sleep overshoots by an order of magnitude
				// at microsecond scales, which would distort the calibration.
				for start := time.Now(); time.Since(start) < d; {
				}
			}
			outs, _, err := sn.SW.Process(f.data, f.port)
			if err != nil {
				sn.ProcErrs.Add(1)
				continue
			}
			for _, o := range outs {
				peer, ok := sn.peers[o.Port]
				if !ok {
					continue // unconnected port: frame falls on the floor
				}
				if !peer.deliver(frame{data: o.Data, port: sn.peerPort[o.Port]}) {
					return
				}
			}
		}
	}
}
