package netsim

import (
	"testing"
	"time"

	"hyper4/internal/bitfield"
	"hyper4/internal/functions"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// parserResolve compiles inline P4 for failure-injection fixtures.
func parserResolve(src string) (*hlir.Program, error) {
	p, err := parser.Parse("inline", src)
	if err != nil {
		return nil, err
	}
	return hlir.Resolve(p)
}

var (
	mac1 = pkt.MustMAC("00:00:00:00:00:01")
	mac2 = pkt.MustMAC("00:00:00:00:00:02")
	ip1  = pkt.MustIP4("10.0.0.1")
	ip2  = pkt.MustIP4("10.0.0.2")
)

// l2Net builds h1 -(1)- s1 -(2)- h2 with a native L2 switch.
func l2Net(t *testing.T) *Network {
	t.Helper()
	sw, err := functions.NewSwitch("s1", functions.L2Switch)
	if err != nil {
		t.Fatal(err)
	}
	c := functions.NewL2Controller(sw)
	if err := c.AddHost(mac1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(mac2, 2); err != nil {
		t.Fatal(err)
	}
	n := New()
	n.AddSwitch("s1", sw)
	n.AddHost("h1", mac1, ip1)
	n.AddHost("h2", mac2, ip2)
	if err := n.Connect("s1", 1, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s1", 2, "h2"); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPingFlood(t *testing.T) {
	n := l2Net(t)
	n.Start()
	defer n.Stop()
	res, err := n.PingFlood("h1", "h2", 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 50 || res.Elapsed <= 0 {
		t.Errorf("result: %+v", res)
	}
	if got := n.Host("h1").EchoRecvd.Load(); got != 50 {
		t.Errorf("replies received = %d", got)
	}
	if res.PerPing() <= 0 {
		t.Errorf("per-ping = %v", res.PerPing())
	}
}

func TestIperf(t *testing.T) {
	n := l2Net(t)
	n.Start()
	defer n.Stop()
	const total = 512 * 1024
	res, err := n.Iperf("h1", "h2", total, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != total {
		t.Errorf("bytes = %d", res.Bytes)
	}
	if res.Mbps() <= 0 {
		t.Errorf("mbps = %v", res.Mbps())
	}
}

func TestResolveARPThroughSwitch(t *testing.T) {
	n := l2Net(t)
	// The L2 switch floods nothing; ARP requests go to the broadcast MAC,
	// which has no dmac entry — install one pointing at h2's port.
	bc := pkt.Broadcast
	if _, err := n.Switch("s1").SW.TableAdd("dmac", "forward",
		[]sim.MatchParam{sim.Exact(bitfield.FromBytes(48, bc[:]))}, sim.Args(9, 2), 0); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	mac, err := n.ResolveARP("h1", ip2)
	if err != nil {
		t.Fatal(err)
	}
	if mac != mac2 {
		t.Errorf("resolved %v, want %v", mac, mac2)
	}
}

func TestMultiSwitchLine(t *testing.T) {
	// h1 - s1 - s2 - h2, both L2 switches.
	mk := func(name string, hostMAC pkt.MAC, hostPort, trunkPort int, far pkt.MAC, farPort int) *sim.Switch {
		sw, err := functions.NewSwitch(name, functions.L2Switch)
		if err != nil {
			t.Fatal(err)
		}
		c := functions.NewL2Controller(sw)
		if err := c.AddHost(hostMAC, hostPort); err != nil {
			t.Fatal(err)
		}
		if err := c.AddHost(far, farPort); err != nil {
			t.Fatal(err)
		}
		return sw
	}
	n := New()
	n.AddSwitch("s1", mk("s1", mac1, 1, 2, mac2, 2))
	n.AddSwitch("s2", mk("s2", mac2, 2, 1, mac1, 1))
	n.AddHost("h1", mac1, ip1)
	n.AddHost("h2", mac2, ip2)
	if err := n.Connect("s1", 1, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s2", 2, "h2"); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectSwitches("s1", 2, "s2", 1); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	res, err := n.PingFlood("h1", "h2", 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 20 {
		t.Errorf("result: %+v", res)
	}
	if got := n.Switch("s2").SW.Stats().PacketsIn; got < 20 {
		t.Errorf("s2 saw %d packets", got)
	}
}

func TestConnectErrors(t *testing.T) {
	n := New()
	sw, err := functions.NewSwitch("s1", functions.L2Switch)
	if err != nil {
		t.Fatal(err)
	}
	n.AddSwitch("s1", sw)
	n.AddHost("h1", mac1, ip1)
	if err := n.Connect("nope", 1, "h1"); err == nil {
		t.Error("unknown switch should error")
	}
	if err := n.Connect("s1", 1, "nope"); err == nil {
		t.Error("unknown host should error")
	}
	if err := n.Connect("s1", 1, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s1", 1, "h1"); err == nil {
		t.Error("double connect should error")
	}
	if err := n.ConnectSwitches("s1", 1, "s1", 3); err == nil {
		t.Error("busy port should error")
	}
	if _, err := n.PingFlood("ghost", "h1", 1); err == nil {
		t.Error("unknown src should error")
	}
	if _, err := n.Iperf("h1", "ghost", 1, 100); err == nil {
		t.Error("unknown dst should error")
	}
	if _, err := n.Iperf("h1", "h1", 1, 9999); err == nil {
		t.Error("bad mss should error")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	n := l2Net(t)
	n.Start()
	n.Stop()
	n.Stop()
}

// TestUnconnectedPortDropsSurfaced steers frames at a port with nothing
// attached and verifies the loss is counted instead of silently vanishing:
// visible live in the switch runtime's metrics and summed by Stop.
func TestUnconnectedPortDropsSurfaced(t *testing.T) {
	n := l2Net(t)
	// Point an extra dmac entry at port 9, which has no link.
	ghost := pkt.MustMAC("00:00:00:00:00:99")
	if _, err := n.Switch("s1").SW.TableAdd("dmac", "forward",
		[]sim.MatchParam{sim.Exact(bitfield.FromBytes(48, ghost[:]))}, sim.Args(9, 9), 0); err != nil {
		t.Fatal(err)
	}
	n.Start()
	const lost = 7
	for i := 0; i < lost; i++ {
		f := pkt.Serialize(
			&pkt.Ethernet{Dst: ghost, Src: mac1, EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ip1, Dst: ip2},
			&pkt.UDP{SrcPort: 1000, DstPort: 2000},
			pkt.Payload([]byte("to nowhere")),
		)
		if err := n.Host("h1").Send(f); err != nil {
			t.Fatal(err)
		}
	}
	sn := n.Switch("s1")
	deadline := time.Now().Add(5 * time.Second)
	for sn.RT.Metrics().Unrouted < lost {
		if time.Now().After(deadline) {
			t.Fatalf("unrouted = %d, want %d", sn.RT.Metrics().Unrouted, lost)
		}
		time.Sleep(time.Millisecond)
	}
	if drops := n.Stop(); drops < lost {
		t.Fatalf("Stop() = %d dropped frames, want >= %d", drops, lost)
	}
	if again := n.Stop(); again < lost {
		t.Fatalf("second Stop() = %d, want same count", again)
	}
}

func TestPingTimeoutOnBlackhole(t *testing.T) {
	t.Skip("timeout path takes 30s; covered by code inspection")
	_ = time.Second
}

// TestProcErrsCounted injects a frame that makes the switch error (a
// resubmit loop) and verifies the network survives and counts it.
func TestProcErrsCounted(t *testing.T) {
	prog, err := parserResolve(`
header_type h_t { fields { v : 8; } }
header h_t h;
action again() { resubmit(); }
table t { actions { again; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
`)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("s1", prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("t", "again", nil); err != nil {
		t.Fatal(err)
	}
	n := New()
	sn := n.AddSwitch("s1", sw)
	n.AddHost("h1", mac1, ip1)
	if err := n.Connect("s1", 1, "h1"); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	if err := n.Host("h1").Send([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sn.ProcErrs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("processing error not counted")
		}
		time.Sleep(time.Millisecond)
	}
}
