package bench

import (
	"fmt"
	"strings"

	"hyper4/internal/core/persona"
	"hyper4/internal/pkt"
	"hyper4/internal/rmt"
	"hyper4/internal/sim"
)

// swProc is the part of sim.Switch the pass-count probes use.
type swProc interface {
	Process(data []byte, port int) ([]sim.Output, *sim.Trace, error)
}

// icmpEcho builds the ping packet used by several experiments.
func icmpEcho() []byte {
	return pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: h2MAC, Src: h1MAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoICMP, Src: h1IP, Dst: h2IP},
		&pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 9, Seq: 1},
	))
}

// FigurePoint is one (stages, primitives) sample of Figures 7 and 8.
type FigurePoint struct {
	Stages     int
	Primitives int
	LoC        int // Figure 7(a): total persona source lines
	DropLoC    int // Figure 7(b): lines supporting the drop primitive
	ModLoC     int // Figure 7(c): lines supporting modify_field
	Tables     int // Figure 8: declared tables
	Actions    int
}

// FigureSweep generates personas across the paper's sweep: stages 1–5 and
// primitives-per-action 1,3,5,7,9 (Figures 7 and 8 share it).
func FigureSweep() ([]FigurePoint, error) {
	var out []FigurePoint
	for stages := 1; stages <= 5; stages++ {
		for _, prims := range []int{1, 3, 5, 7, 9} {
			cfg := persona.Config{
				Stages: stages, Primitives: prims,
				ParseDefault: persona.Reference.ParseDefault,
				ParseStep:    persona.Reference.ParseStep,
				ParseMax:     persona.Reference.ParseMax,
			}
			p, err := persona.Generate(cfg)
			if err != nil {
				return nil, fmt.Errorf("figure sweep %d/%d: %w", stages, prims, err)
			}
			out = append(out, FigurePoint{
				Stages:     stages,
				Primitives: prims,
				LoC:        p.LoC,
				DropLoC:    primitiveLoC(p.Source, "drop"),
				ModLoC:     primitiveLoC(p.Source, "mod_ed_const"),
				Tables:     p.TableCount,
				Actions:    p.ActionCount,
			})
		}
	}
	return out, nil
}

// primitiveLoC counts source lines attributable to one primitive opcode:
// every line mentioning its prep/exec action names. Per-opcode actions are
// constant-size, but each primitive slot's prep and exec tables list them,
// so the count grows linearly in stages × primitives — the shape Figure
// 7(b)/(c) reports.
func primitiveLoC(src, op string) int {
	prep, exec := "a_prep_"+op, "a_exec_"+op
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.Contains(line, prep) || strings.Contains(line, exec) {
			n++
		}
	}
	return n
}

// SpaceRow summarizes §6.2's space analysis for the reference persona.
type SpaceRow struct {
	Tables         int // paper: 346
	Actions        int // paper: 130
	ResizeActions  int // paper: 80
	LoC            int // §5.1: ~6400
	EntryBitsED    int // ternary entry on extracted data: value+mask (paper: ≥1600)
	EntryBitsMeta  int // ternary entry on emulated metadata (paper: ≥512)
	ExtractedWidth int
	MetaWidth      int
}

// Space computes the reference persona's space figures.
func Space() (SpaceRow, error) {
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		return SpaceRow{}, err
	}
	return SpaceRow{
		Tables:         p.TableCount,
		Actions:        p.ActionCount,
		ResizeActions:  len(persona.Reference.ByteCounts()),
		LoC:            p.LoC,
		EntryBitsED:    2 * persona.Reference.ExtractedWidth(),
		EntryBitsMeta:  2 * persona.MetaWidth,
		ExtractedWidth: persona.Reference.ExtractedWidth(),
		MetaWidth:      persona.MetaWidth,
	}, nil
}

// RMTAnalysis reproduces §6.5 for the ARP proxy's most complex packet.
func RMTAnalysis() (*rmt.Analysis, error) {
	sw, err := FunctionSwitch("arp_proxy", HyPer4)
	if err != nil {
		return nil, err
	}
	// The proxied request exercises the nine-primitive reply — the most
	// demanding path §6.5 analyzes.
	_, tr, err := sw.Process(WorkloadPackets("arp_proxy")[0], 1)
	if err != nil {
		return nil, err
	}
	return rmt.AnalyzeTrace(sw, tr, rmt.RMT)
}
