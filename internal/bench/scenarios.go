// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation (§6), each returning structured rows that
// cmd/hp4bench prints and the repository's benchmarks assert on.
package bench

import (
	"fmt"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/netsim"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// Mode selects native execution or HyPer4 emulation.
type Mode int

// Execution modes.
const (
	Native Mode = iota
	HyPer4
	// HyPer4Ctl is HyPer4 emulation configured through the typed
	// control-plane API — one atomic ctl.WriteBatch of textual ops, the
	// same wire shape hp4ctl ships — instead of direct DPMU installer
	// calls. The data path is identical to HyPer4, so its throughput must
	// sit within noise of the plain HyPer4 measurement.
	HyPer4Ctl
	// HyPer4Hooks is HyPer4 emulation with a fault injector attached whose
	// spec injects nothing: it measures the cost of the armed injection
	// hooks themselves, which must sit within noise of plain HyPer4 (a nil
	// injector — the default — costs a single pointer check).
	HyPer4Hooks
	// HyPer4Fused is HyPer4 emulation with the DPMU's fused fast path
	// enabled (DESIGN.md §13): per-vdev compiled dispatch plans replace the
	// interpreted persona walk for fusable traffic.
	HyPer4Fused
)

// String names the mode for labels and sub-benchmarks.
func (m Mode) String() string {
	switch m {
	case Native:
		return "native"
	case HyPer4Ctl:
		return "hp4-ctl"
	case HyPer4Hooks:
		return "hp4-hooks"
	case HyPer4Fused:
		return "hp4-fused"
	}
	return "hp4"
}

// Fixed addresses used across scenarios.
var (
	h1MAC = pkt.MustMAC("00:00:00:00:00:01")
	h2MAC = pkt.MustMAC("00:00:00:00:00:02")
	h1IP  = pkt.MustIP4("10.0.0.1")
	h2IP  = pkt.MustIP4("10.0.0.2")
	s2MAC = pkt.MustMAC("aa:aa:aa:aa:aa:02")
)

// compileCache avoids recompiling functions for every scenario.
var compileCache = map[string]*hp4c.Compiled{}

func compiled(fn string) (*hp4c.Compiled, error) {
	if c, ok := compileCache[fn]; ok {
		return c, nil
	}
	prog, err := functions.Load(fn)
	if err != nil {
		return nil, err
	}
	c, err := hp4c.Compile(prog, persona.Reference)
	if err != nil {
		return nil, err
	}
	compileCache[fn] = c
	return c, nil
}

// fuseIf turns the DPMU's fused fast path on when the mode asks for it.
// Builders call it after their full population so the initial compile sees
// the final table state.
func fuseIf(mode Mode, d *dpmu.DPMU) {
	if mode == HyPer4Fused {
		d.SetFusion(true)
	}
}

// newPersonaSwitch builds a persona switch with a DPMU.
func newPersonaSwitch(name string) (*sim.Switch, *dpmu.DPMU, error) {
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		return nil, nil, err
	}
	sw, err := sim.New(name, p.Program)
	if err != nil {
		return nil, nil, err
	}
	d, err := dpmu.New(sw, p)
	if err != nil {
		return nil, nil, err
	}
	return sw, d, nil
}

// hostEntry binds a MAC to an egress port of an L2 switch.
type hostEntry struct {
	mac  pkt.MAC
	port int
}

// l2Switch builds a (native or emulated) L2 switch with the given
// forwarding entries.
func l2Switch(name string, mode Mode, hosts []hostEntry) (*sim.Switch, error) {
	if mode == Native {
		sw, err := functions.NewSwitch(name, functions.L2Switch)
		if err != nil {
			return nil, err
		}
		c := functions.NewL2Controller(sw)
		for _, h := range hosts {
			if err := c.AddHost(h.mac, h.port); err != nil {
				return nil, err
			}
		}
		return sw, nil
	}
	sw, d, err := newPersonaSwitch(name)
	if err != nil {
		return nil, err
	}
	comp, err := compiled(functions.L2Switch)
	if err != nil {
		return nil, err
	}
	if _, err := d.Load("l2", comp, "bench", 0); err != nil {
		return nil, err
	}
	c := functions.NewL2ControllerFunc(d.Installer("bench", "l2"))
	// Ports are mapped in host order (deduplicated) so repeated builds
	// install virtual-network rows deterministically and dump identically.
	seen := map[int]bool{}
	var ports []int
	for _, h := range hosts {
		if err := c.AddHost(h.mac, h.port); err != nil {
			return nil, err
		}
		if !seen[h.port] {
			seen[h.port] = true
			ports = append(ports, h.port)
		}
	}
	if err := d.AssignPort("bench", dpmu.Assignment{PhysPort: -1, VDev: "l2", VIngress: 0}); err != nil {
		return nil, err
	}
	for _, port := range ports {
		if err := d.MapVPort("bench", "l2", port, port); err != nil {
			return nil, err
		}
	}
	fuseIf(mode, d)
	return sw, nil
}

// firewallSwitch builds a (native or emulated) firewall blocking TCP port
// 9999 with hosts h1@1, h2@2.
func firewallSwitch(name string, mode Mode) (*sim.Switch, error) {
	populate := func(c *functions.FirewallController) error {
		if err := c.AddHost(h1MAC, 1); err != nil {
			return err
		}
		if err := c.AddHost(h2MAC, 2); err != nil {
			return err
		}
		return c.BlockTCPDstPort(9999)
	}
	if mode == Native {
		sw, err := functions.NewSwitch(name, functions.Firewall)
		if err != nil {
			return nil, err
		}
		if err := populate(functions.NewFirewallController(sw)); err != nil {
			return nil, err
		}
		return sw, nil
	}
	sw, d, err := newPersonaSwitch(name)
	if err != nil {
		return nil, err
	}
	comp, err := compiled(functions.Firewall)
	if err != nil {
		return nil, err
	}
	if _, err := d.Load("fw", comp, "bench", 0); err != nil {
		return nil, err
	}
	if err := populate(functions.NewFirewallControllerFunc(d.Installer("bench", "fw"))); err != nil {
		return nil, err
	}
	if err := d.AssignPort("bench", dpmu.Assignment{PhysPort: -1, VDev: "fw", VIngress: 0}); err != nil {
		return nil, err
	}
	for _, port := range []int{1, 2} {
		if err := d.MapVPort("bench", "fw", port, port); err != nil {
			return nil, err
		}
	}
	fuseIf(mode, d)
	return sw, nil
}

// composedSwitch builds the middle switch of Example 1 C: the sequential
// composition arp_proxy → firewall → router. Trunk ports 1 (toward h1) and
// 2 (toward h2).
func composedSwitch(name string, mode Mode) (*sim.Switch, error) {
	if mode == Native {
		sw, err := functions.NewSwitch(name, functions.Composed)
		if err != nil {
			return nil, err
		}
		c, err := functions.NewComposedController(sw)
		if err != nil {
			return nil, err
		}
		if err := c.AddProxiedHost(h2IP, h2MAC); err != nil {
			return nil, err
		}
		if err := c.BlockTCPDstPort(9999); err != nil {
			return nil, err
		}
		for _, r := range []struct {
			ip   pkt.IP4
			port int
			mac  pkt.MAC
		}{{h1IP, 1, h1MAC}, {h2IP, 2, h2MAC}} {
			if err := c.AddRoute(r.ip, 32, r.ip, r.port); err != nil {
				return nil, err
			}
			if err := c.AddNextHop(r.ip, r.mac); err != nil {
				return nil, err
			}
			if err := c.AddPortMAC(r.port, s2MAC); err != nil {
				return nil, err
			}
		}
		return sw, nil
	}

	sw, d, err := newPersonaSwitch(name)
	if err != nil {
		return nil, err
	}
	const owner = "bench"
	for _, fn := range []string{functions.ARPProxy, functions.Firewall, functions.Router} {
		comp, err := compiled(fn)
		if err != nil {
			return nil, err
		}
		if _, err := d.Load(fn, comp, owner, 0); err != nil {
			return nil, err
		}
	}
	ac := functions.NewARPControllerFunc(d.Installer(owner, functions.ARPProxy))
	if err := ac.Init(); err != nil {
		return nil, err
	}
	if err := ac.AddProxiedHost(h2IP, h2MAC); err != nil {
		return nil, err
	}
	// All switched traffic — including replies addressed to the router's
	// own MAC — continues to the next function in the chain.
	for _, mac := range []pkt.MAC{h1MAC, h2MAC, s2MAC} {
		if err := ac.AddHost(mac, 10); err != nil {
			return nil, err
		}
	}
	fc := functions.NewFirewallControllerFunc(d.Installer(owner, functions.Firewall))
	if err := fc.BlockTCPDstPort(9999); err != nil {
		return nil, err
	}
	for _, mac := range []pkt.MAC{h1MAC, h2MAC, s2MAC} {
		if err := fc.AddHost(mac, 10); err != nil {
			return nil, err
		}
	}
	rc := functions.NewRouterControllerFunc(d.Installer(owner, functions.Router))
	if err := rc.Init(); err != nil {
		return nil, err
	}
	for _, r := range []struct {
		ip   pkt.IP4
		port int
		mac  pkt.MAC
	}{{h1IP, 1, h1MAC}, {h2IP, 2, h2MAC}} {
		if err := rc.AddRoute(r.ip, 32, r.ip, r.port); err != nil {
			return nil, err
		}
		if err := rc.AddNextHop(r.ip, r.mac); err != nil {
			return nil, err
		}
		if err := rc.AddPortMAC(r.port, s2MAC); err != nil {
			return nil, err
		}
	}
	for _, port := range []int{1, 2} {
		if err := d.AssignPort(owner, dpmu.Assignment{PhysPort: port, VDev: functions.ARPProxy, VIngress: port}); err != nil {
			return nil, err
		}
		if err := d.MapVPort(owner, functions.ARPProxy, port, port); err != nil {
			return nil, err
		}
		if err := d.MapVPort(owner, functions.Router, port, port); err != nil {
			return nil, err
		}
	}
	if err := d.LinkVPorts(owner, functions.ARPProxy, 10, functions.Firewall, 1); err != nil {
		return nil, err
	}
	if err := d.LinkVPorts(owner, functions.Firewall, 10, functions.Router, 1); err != nil {
		return nil, err
	}
	fuseIf(mode, d)
	return sw, nil
}

// Scenario names for Table 5.
const (
	ScenarioL2       = "l2_sw"
	ScenarioFirewall = "firewall"
	ScenarioEx1B     = "Ex. 1 B"
	ScenarioEx1C     = "Ex. 1 C"
)

// Scenarios lists the Table 5 rows in paper order.
func Scenarios() []string {
	return []string{ScenarioL2, ScenarioFirewall, ScenarioEx1B, ScenarioEx1C}
}

// BuildNet constructs the topology for a Table 5 scenario: h1 and h2 at the
// edges, with one or three switches between them.
func BuildNet(scenario string, mode Mode) (*netsim.Network, error) {
	n := netsim.New()
	n.AddHost("h1", h1MAC, h1IP)
	n.AddHost("h2", h2MAC, h2IP)
	hosts := []hostEntry{{h1MAC, 1}, {h2MAC, 2}}
	switch scenario {
	case ScenarioL2:
		sw, err := l2Switch("s1", mode, hosts)
		if err != nil {
			return nil, err
		}
		n.AddSwitch("s1", sw)
		if err := connectEdge(n, "s1", "s1"); err != nil {
			return nil, err
		}
	case ScenarioFirewall:
		sw, err := firewallSwitch("s1", mode)
		if err != nil {
			return nil, err
		}
		n.AddSwitch("s1", sw)
		if err := connectEdge(n, "s1", "s1"); err != nil {
			return nil, err
		}
	case ScenarioEx1B, ScenarioEx1C:
		// h1 - s1(l2) - s2 - s3(l2) - h2; s2 is a firewall (B) or the
		// composed chain (C).
		// Edge switches also forward the middle router's MAC toward it, so
		// replies addressed to the router (Ex. 1 C) cross the trunk.
		s1, err := l2Switch("s1", mode, []hostEntry{{h1MAC, 1}, {h2MAC, 2}, {s2MAC, 2}})
		if err != nil {
			return nil, err
		}
		s3, err := l2Switch("s3", mode, []hostEntry{{h1MAC, 1}, {h2MAC, 2}, {s2MAC, 1}})
		if err != nil {
			return nil, err
		}
		var s2 *sim.Switch
		if scenario == ScenarioEx1B {
			s2, err = firewallSwitch("s2", mode)
		} else {
			s2, err = composedSwitch("s2", mode)
		}
		if err != nil {
			return nil, err
		}
		n.AddSwitch("s1", s1)
		n.AddSwitch("s2", s2)
		n.AddSwitch("s3", s3)
		if err := n.Connect("s1", 1, "h1"); err != nil {
			return nil, err
		}
		if err := n.Connect("s3", 2, "h2"); err != nil {
			return nil, err
		}
		if err := n.ConnectSwitches("s1", 2, "s2", 1); err != nil {
			return nil, err
		}
		if err := n.ConnectSwitches("s2", 2, "s3", 1); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bench: unknown scenario %q", scenario)
	}
	return n, nil
}

func connectEdge(n *netsim.Network, s1, s2 string) error {
	if err := n.Connect(s1, 1, "h1"); err != nil {
		return err
	}
	return n.Connect(s2, 2, "h2")
}
