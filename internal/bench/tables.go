package bench

import (
	"fmt"

	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/sim"
)

// Table1Row is one row of the paper's Table 1: match-action stages incurred
// by the most complex packet, natively vs emulated.
type Table1Row struct {
	Program     string
	Native      int
	HyPer4      int
	PaperNative int
	PaperHyPer4 int
}

// paperTable1 holds the published values.
var paperTable1 = map[string][2]int{
	functions.L2Switch: {2, 13},
	functions.Firewall: {3, 22},
	functions.Router:   {4, 28},
	functions.ARPProxy: {4, 48},
}

// Table1 measures the number of matches (table applications) for the most
// complex processing per function, natively and under HyPer4.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, fn := range functions.Names() {
		row := Table1Row{Program: fn,
			PaperNative: paperTable1[fn][0], PaperHyPer4: paperTable1[fn][1]}
		for _, mode := range []Mode{Native, HyPer4} {
			sw, err := FunctionSwitch(fn, mode)
			if err != nil {
				return nil, fmt.Errorf("table1 %s %s: %w", fn, mode, err)
			}
			maxApplies := 0
			for _, p := range WorkloadPackets(fn) {
				_, tr, err := sw.Process(p, 1)
				if err != nil {
					return nil, fmt.Errorf("table1 %s %s: %w", fn, mode, err)
				}
				if tr.Applies > maxApplies {
					maxApplies = tr.Applies
				}
			}
			if mode == Native {
				row.Native = maxApplies
			} else {
				row.HyPer4 = maxApplies
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReferencedTables returns the set of persona tables a compiled program
// references: the shared setup/egress machinery plus, per stage slot, the
// slot's match table and the primitive tables its actions can exercise.
// This is the quantity behind the paper's Tables 2 and 3.
func ReferencedTables(comp *hp4c.Compiled) map[string]bool {
	cfg := comp.Cfg
	out := map[string]bool{
		persona.TblNorm:      true,
		persona.TblAssign:    true,
		persona.TblParseCtrl: true,
		persona.TblVirtnet:   true,
		persona.TblDropped:   true,
		persona.TblRecirc:    true,
		persona.TblResize:    true,
		persona.TblWriteback: true,
	}
	if comp.NeedsIPv4Csum {
		out[persona.TblCsum] = true
	}
	for _, slot := range comp.SlotList {
		out[persona.StageTable(slot.Stage, persona.KindName(slot.Kind))] = true
		// The widest action bound to this table determines how many
		// primitive slots its entries can exercise.
		maxPrims := 0
		tbl := comp.Prog.Tables[slot.Table]
		for _, act := range tbl.Actions {
			if ca := comp.Actions[act]; ca != nil && len(ca.Prims) > maxPrims {
				maxPrims = len(ca.Prims)
			}
		}
		if maxPrims > cfg.Primitives {
			maxPrims = cfg.Primitives
		}
		for p := 1; p <= maxPrims; p++ {
			out[persona.PrimTable(slot.Stage, p, "prep")] = true
			out[persona.PrimTable(slot.Stage, p, "exec")] = true
			out[persona.PrimTable(slot.Stage, p, "done")] = true
		}
	}
	return out
}

// Table23Cell is one cell of Tables 2/3: for a program pair, how many
// persona tables both reference (shared) and how many each references that
// the other does not (unique).
type Table23Cell struct {
	A, B           string
	Shared         int
	UniqueA        int
	UniqueB        int
	TotalA, TotalB int
}

// Table23 computes the shared/unique persona-table counts for every pair of
// the four functions (paper Tables 2 and 3).
func Table23() ([]Table23Cell, error) {
	names := functions.Names()
	refs := map[string]map[string]bool{}
	for _, fn := range names {
		comp, err := compiled(fn)
		if err != nil {
			return nil, err
		}
		refs[fn] = ReferencedTables(comp)
	}
	var cells []Table23Cell
	for i, a := range names {
		for _, b := range names[i:] {
			cell := Table23Cell{A: a, B: b, TotalA: len(refs[a]), TotalB: len(refs[b])}
			for t := range refs[a] {
				if refs[b][t] {
					cell.Shared++
				} else {
					cell.UniqueA++
				}
			}
			for t := range refs[b] {
				if !refs[a][t] {
					cell.UniqueB++
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// Table4Row is one row of the paper's Table 4: ternary match pressure for
// the most complex packet of each program under HyPer4.
type Table4Row struct {
	Program        string
	TotalBits      int // includes wildcarded bits
	ActiveBits     int // mask bits actively compared
	TernaryMatches int

	PaperTotal, PaperActive, PaperMatches int
}

var paperTable4 = map[string][3]int{
	functions.L2Switch: {808, 56, 2},
	functions.Router:   {1224, 80, 4},
	functions.ARPProxy: {1848, 66, 5},
	functions.Firewall: {1928, 59, 6},
}

// Table4 measures ternary match usage under emulation.
func Table4() ([]Table4Row, error) {
	order := []string{functions.L2Switch, functions.Router, functions.ARPProxy, functions.Firewall}
	var rows []Table4Row
	for _, fn := range order {
		sw, err := FunctionSwitch(fn, HyPer4)
		if err != nil {
			return nil, err
		}
		var best *sim.Trace
		for _, p := range WorkloadPackets(fn) {
			_, tr, err := sw.Process(p, 1)
			if err != nil {
				return nil, err
			}
			if best == nil || tr.TernaryBitsTotal > best.TernaryBitsTotal {
				best = tr
			}
		}
		pv := paperTable4[fn]
		rows = append(rows, Table4Row{
			Program:        fn,
			TotalBits:      best.TernaryBitsTotal,
			ActiveBits:     best.TernaryBitsActive,
			TernaryMatches: best.TernaryMatches,
			PaperTotal:     pv[0], PaperActive: pv[1], PaperMatches: pv[2],
		})
	}
	return rows, nil
}
