package bench

import (
	"fmt"
	"strconv"

	"hyper4/internal/core/ctl"
	"hyper4/internal/functions"
	"hyper4/internal/sim"
)

// ctlSwitch builds an emulated function configured purely through the typed
// control-plane API: the whole setup — load, table population, port wiring —
// is one atomic ctl.WriteBatch of textual ops, exactly what hp4ctl would
// ship over HTTP, rather than direct DPMU installer calls. Only l2_switch is
// wired up; the point is measuring the management path's product, not
// re-benching every function twice.
func ctlSwitch(name, fn string) (*sim.Switch, error) {
	if fn != functions.L2Switch {
		return nil, fmt.Errorf("bench: mode hp4-ctl supports only %s, not %q", functions.L2Switch, fn)
	}
	sw, d, err := newPersonaSwitch(name)
	if err != nil {
		return nil, err
	}
	ops := []ctl.Op{{Kind: ctl.OpLoadVDev, VDev: "l2", Function: functions.L2Switch}}
	for _, h := range []hostEntry{{h1MAC, 1}, {h2MAC, 2}} {
		mac := h.mac.String()
		ops = append(ops,
			ctl.Op{Kind: ctl.OpTableAdd, VDev: "l2", Table: "smac", Action: "_nop", Match: []string{mac}},
			ctl.Op{Kind: ctl.OpTableAdd, VDev: "l2", Table: "dmac", Action: "forward", Match: []string{mac}, Args: []string{strconv.Itoa(h.port)}},
		)
	}
	ops = append(ops, ctl.Op{Kind: ctl.OpAssign, VDev: "l2", PhysPort: -1, VIngress: 0})
	for _, port := range []int{1, 2} {
		ops = append(ops, ctl.Op{Kind: ctl.OpMapVPort, VDev: "l2", VPort: port, PhysPort: port})
	}
	if _, err := ctl.New(d).WriteBatch("bench", ops); err != nil {
		return nil, err
	}
	return sw, nil
}
