package bench

import (
	"reflect"
	"testing"

	"hyper4/internal/functions"
)

// TestCtlSwitchMatchesInstaller proves the control-plane-configured bench
// switch is the same device as the installer-configured one: the full switch
// dump — persona table contents, defaults, precedence — is bit-identical,
// so any throughput delta between the hp4 and hp4-ctl modes is noise.
func TestCtlSwitchMatchesInstaller(t *testing.T) {
	direct, err := FunctionSwitch(functions.L2Switch, HyPer4)
	if err != nil {
		t.Fatal(err)
	}
	viaCtl, err := FunctionSwitch(functions.L2Switch, HyPer4Ctl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Dump(), viaCtl.Dump()) {
		t.Fatalf("ctl-configured switch differs from installer-configured:\ndirect %+v\nctl    %+v",
			direct.Dump(), viaCtl.Dump())
	}

	for _, in := range WorkloadPackets(functions.L2Switch) {
		want, _, err := direct.Process(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := viaCtl.Process(in, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("forwarding differs: direct %+v, ctl %+v", want, got)
		}
		if len(got) != 1 || got[0].Port != 2 {
			t.Fatalf("h1->h2 frame should egress port 2: %+v", got)
		}
	}
}

// TestCtlSwitchUnsupportedFunction pins the mode's scope: only l2_switch is
// wired through the control-plane path.
func TestCtlSwitchUnsupportedFunction(t *testing.T) {
	if _, err := FunctionSwitch(functions.Firewall, HyPer4Ctl); err == nil {
		t.Fatal("hp4-ctl firewall should be rejected")
	}
}

// TestCtlThroughputRuns smoke-tests the throughput path end to end in the
// new mode with a tiny packet budget.
func TestCtlThroughputRuns(t *testing.T) {
	res, err := Throughput(functions.L2Switch, HyPer4Ctl, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "hp4-ctl" || res.Packets < 64 || res.SerialNsOp <= 0 {
		t.Fatalf("throughput result: %+v", res)
	}
}
