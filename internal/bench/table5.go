package bench

import (
	"fmt"
	"math"
	"time"
)

// Table5Opts sizes the bandwidth/latency measurement.
type Table5Opts struct {
	Runs       int   // repetitions for mean ± σ (paper: 10)
	IperfBytes int64 // bulk bytes per bandwidth run
	Pings      int   // echoes per latency run (paper: 1000)
	MSS        int   // TCP segment payload size
	// SwitchOverhead models the fixed per-packet cost of the paper's
	// environment (bmv2 + Mininet veths in a VM). 100µs reproduces the
	// paper's native L2 bandwidth magnitude (~110 Mbps).
	SwitchOverhead time.Duration
}

// DefaultTable5Opts is sized to finish quickly while preserving shape; the
// cmd/hp4bench tool raises Runs and Pings toward the paper's setup.
var DefaultTable5Opts = Table5Opts{Runs: 3, IperfBytes: 1 << 20, Pings: 200, MSS: 1400, SwitchOverhead: 100 * time.Microsecond}

// Table5Row is one row of the paper's Table 5: mean ± σ of bandwidth and
// per-ping latency, native vs HyPer4.
type Table5Row struct {
	Scenario string

	NativeMbps, NativeMbpsSD float64
	HP4Mbps, HP4MbpsSD       float64
	// Latency per ping (the paper reports total flood time for 1000 pings;
	// we report the equivalent per-ping mean so counts can differ).
	NativeLat, NativeLatSD time.Duration
	HP4Lat, HP4LatSD       time.Duration

	// Derived comparisons against the paper's shape.
	BandwidthPenalty float64 // 1 - hp4/native (paper: 0.83–0.89)
	LatencyRatio     float64 // hp4/native (paper: 3.4–4.7)

	PaperPenalty float64
	PaperLatency float64
}

var paperTable5 = map[string][2]float64{
	ScenarioL2:       {0.83, 3.4},
	ScenarioFirewall: {0.89, 4.7},
	ScenarioEx1B:     {0.83, 3.4},
	ScenarioEx1C:     {0.88, 3.9},
}

// Table5 runs the bandwidth and latency measurements for every scenario.
func Table5(opts Table5Opts) ([]Table5Row, error) {
	if opts.Runs < 1 {
		opts = DefaultTable5Opts
	}
	var rows []Table5Row
	for _, sc := range Scenarios() {
		row := Table5Row{Scenario: sc,
			PaperPenalty: paperTable5[sc][0], PaperLatency: paperTable5[sc][1]}
		for _, mode := range []Mode{Native, HyPer4} {
			var mbps, lat []float64
			for run := 0; run < opts.Runs; run++ {
				n, err := BuildNet(sc, mode)
				if err != nil {
					return nil, fmt.Errorf("table5 %s %s: %w", sc, mode, err)
				}
				n.SwitchOverhead = opts.SwitchOverhead
				n.Start()
				ir, err := n.Iperf("h1", "h2", opts.IperfBytes, opts.MSS)
				if err != nil {
					n.Stop()
					return nil, fmt.Errorf("table5 %s %s iperf: %w", sc, mode, err)
				}
				pr, err := n.PingFlood("h1", "h2", opts.Pings)
				n.Stop()
				if err != nil {
					return nil, fmt.Errorf("table5 %s %s ping: %w", sc, mode, err)
				}
				mbps = append(mbps, ir.Mbps())
				lat = append(lat, float64(pr.PerPing()))
			}
			mM, mSD := meanSD(mbps)
			lM, lSD := meanSD(lat)
			if mode == Native {
				row.NativeMbps, row.NativeMbpsSD = mM, mSD
				row.NativeLat, row.NativeLatSD = time.Duration(lM), time.Duration(lSD)
			} else {
				row.HP4Mbps, row.HP4MbpsSD = mM, mSD
				row.HP4Lat, row.HP4LatSD = time.Duration(lM), time.Duration(lSD)
			}
		}
		if row.NativeMbps > 0 {
			row.BandwidthPenalty = 1 - row.HP4Mbps/row.NativeMbps
		}
		if row.NativeLat > 0 {
			row.LatencyRatio = float64(row.HP4Lat) / float64(row.NativeLat)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func meanSD(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// PassCounts reproduces §6.4's resubmit/recirculate discussion: per
// scenario-defining packet, the number of extra pipeline passes.
type PassCountRow struct {
	Case         string
	Resubmits    int
	Recirculates int
	PaperResub   int
	PaperRecirc  int
}

// PassCounts measures pipeline re-entries for the packets §6.4 discusses.
func PassCounts() ([]PassCountRow, error) {
	type probe struct {
		name        string
		build       func() (swProc, error)
		packet      []byte
		resub, reci int
	}
	tcp := WorkloadPackets("firewall")[0]
	probes := []probe{
		{"l2_sw / any packet",
			func() (swProc, error) { return l2Switch("s", HyPer4, []hostEntry{{h1MAC, 1}, {h2MAC, 2}}) },
			WorkloadPackets("l2_switch")[0], 0, 0},
		{"firewall / ping",
			func() (swProc, error) { return firewallSwitch("s", HyPer4) },
			icmpEcho(), 1, 0},
		{"firewall / TCP packet",
			func() (swProc, error) { return firewallSwitch("s", HyPer4) },
			tcp, 2, 0},
		{"Ex. 1 C middle / ping",
			func() (swProc, error) { return composedSwitch("s", HyPer4) },
			icmpEcho(), 2, 2},
		{"Ex. 1 C middle / TCP packet",
			func() (swProc, error) { return composedSwitch("s", HyPer4) },
			tcp, 3, 2},
	}
	var rows []PassCountRow
	for _, pr := range probes {
		sw, err := pr.build()
		if err != nil {
			return nil, fmt.Errorf("passcounts %s: %w", pr.name, err)
		}
		_, tr, err := sw.Process(pr.packet, 1)
		if err != nil {
			return nil, fmt.Errorf("passcounts %s: %w", pr.name, err)
		}
		rows = append(rows, PassCountRow{
			Case: pr.name, Resubmits: tr.Resubmits, Recirculates: tr.Recirculates,
			PaperResub: pr.resub, PaperRecirc: pr.reci,
		})
	}
	return rows, nil
}
