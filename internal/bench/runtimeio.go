package bench

import (
	"fmt"
	"runtime"
	"time"

	pktio "hyper4/internal/runtime"
)

// RuntimeThroughput measures end-to-end packets/sec through the full packet
// I/O runtime — RX loop, per-worker rings, worker sweeps through the switch,
// TX loop — rather than calling Process directly. Frames enter and leave over
// in-process channel transports so the number isolates the runtime's own
// overhead (sharding, ring hops, wakeups) from socket syscalls. workers sets
// the runtime's worker fan-out; the serial columns of the returned row carry
// the end-to-end measurement and the batch columns are left zero.
func RuntimeThroughput(fn string, mode Mode, workers, minPackets int) (ThroughputResult, error) {
	sw, err := FunctionSwitch(fn, mode)
	if err != nil {
		return ThroughputResult{}, err
	}
	src := WorkloadPackets(fn)
	if len(src) == 0 {
		return ThroughputResult{}, fmt.Errorf("bench: no workload for %q", fn)
	}
	if minPackets < len(src) {
		minPackets = len(src)
	}

	rt := pktio.New(sw, pktio.Config{Workers: workers, RingSize: 1024, Lossless: true})
	rt.Start()
	defer rt.Close()
	near1, far1 := pktio.NewChanPair(1024)
	near2, far2 := pktio.NewChanPair(1024)
	if err := rt.Attach(1, near1); err != nil {
		return ThroughputResult{}, err
	}
	if err := rt.Attach(2, near2); err != nil {
		return ThroughputResult{}, err
	}
	// Egress sinks; without consumers the lossless TX path would block.
	go func() {
		var f pktio.Frame
		for far1.Recv(&f) == nil {
		}
	}()
	go func() {
		var f pktio.Frame
		for far2.Recv(&f) == nil {
		}
	}()

	send := func(n, off int) error {
		for i := 0; i < n; i++ {
			if err := far1.Send(pktio.Frame{Data: src[(off+i)%len(src)]}); err != nil {
				return err
			}
		}
		return nil
	}
	waitProcessed := func(n uint64) error {
		deadline := time.Now().Add(30 * time.Second)
		for rt.Metrics().Processed < n {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: io runtime stalled at %d of %d packets",
					rt.Metrics().Processed, n)
			}
			time.Sleep(20 * time.Microsecond)
		}
		return nil
	}

	warm := min(len(src), 8)
	if err := send(warm, 0); err != nil {
		return ThroughputResult{}, err
	}
	if err := waitProcessed(uint64(warm)); err != nil {
		return ThroughputResult{}, err
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	lat0 := sw.Metrics().Latency
	start := time.Now()
	if err := send(minPackets, warm); err != nil {
		return ThroughputResult{}, err
	}
	if err := waitProcessed(uint64(warm + minPackets)); err != nil {
		return ThroughputResult{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	lat := sw.Metrics().Latency.Sub(lat0)

	n := float64(minPackets)
	return ThroughputResult{
		Function:    fn,
		Mode:        fmt.Sprintf("%s+io-w%d", mode, workers),
		Workers:     workers,
		Packets:     minPackets,
		SerialNsOp:  float64(elapsed.Nanoseconds()) / n,
		SerialPPS:   n / elapsed.Seconds(),
		SerialAlloc: float64(m1.Mallocs-m0.Mallocs) / n,
		P50Ns:       lat.Quantile(0.50).Nanoseconds(),
		P90Ns:       lat.Quantile(0.90).Nanoseconds(),
		P99Ns:       lat.Quantile(0.99).Nanoseconds(),
		P999Ns:      lat.Quantile(0.999).Nanoseconds(),
	}, nil
}
