package bench

import (
	"testing"

	"hyper4/internal/functions"
)

// TestTable1Shape verifies Table 1's shape: emulation inflates the match
// count by roughly 6–7× for the simple functions and ~12× for the ARP proxy.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-10s native=%d (paper %d)  hp4=%d (paper %d)  ratio=%.1fx",
			r.Program, r.Native, r.PaperNative, r.HyPer4, r.PaperHyPer4,
			float64(r.HyPer4)/float64(r.Native))
		if r.Native != r.PaperNative {
			t.Errorf("%s native = %d, paper %d", r.Program, r.Native, r.PaperNative)
		}
		ratio := float64(r.HyPer4) / float64(r.Native)
		if ratio < 3 {
			t.Errorf("%s emulation ratio %.1f too low; paper ≈6–12x", r.Program, ratio)
		}
		// Within 2x of the paper's absolute count.
		if r.HyPer4 < r.PaperHyPer4/2 || r.HyPer4 > r.PaperHyPer4*2 {
			t.Errorf("%s hp4 = %d, paper %d (outside 2x band)", r.Program, r.HyPer4, r.PaperHyPer4)
		}
	}
	// The ARP proxy is the most expensive, as in the paper.
	var arp, l2 int
	for _, r := range rows {
		switch r.Program {
		case functions.ARPProxy:
			arp = r.HyPer4
		case functions.L2Switch:
			l2 = r.HyPer4
		}
	}
	if arp <= l2 {
		t.Errorf("arp_proxy (%d) should cost more than l2_switch (%d)", arp, l2)
	}
}

// TestTable23Shape verifies the sharing property behind Tables 2 and 3: most
// program pairs share more persona tables than they uniquely reference.
func TestTable23Shape(t *testing.T) {
	cells, err := Table23()
	if err != nil {
		t.Fatal(err)
	}
	sharedWins, total := 0, 0
	for _, c := range cells {
		if c.A == c.B {
			if c.Shared != c.TotalA {
				t.Errorf("diagonal %s: shared=%d total=%d", c.A, c.Shared, c.TotalA)
			}
			continue
		}
		t.Logf("%s × %s: shared=%d uniqueA=%d uniqueB=%d", c.A, c.B, c.Shared, c.UniqueA, c.UniqueB)
		total += 2
		if c.Shared > c.UniqueA {
			sharedWins++
		}
		if c.Shared > c.UniqueB {
			sharedWins++
		}
	}
	// Paper: "in eight out of twelve cases, more tables are shared between
	// programs than not".
	if sharedWins*2 < total {
		t.Errorf("sharing should dominate: %d of %d cases", sharedWins, total)
	}
}

// TestTable4Shape verifies ternary-pressure ordering: every program ternary-
// matches hundreds of wildcarded bits with a much smaller active set.
func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s total=%d (paper %d) active=%d (paper %d) matches=%d (paper %d)",
			r.Program, r.TotalBits, r.PaperTotal, r.ActiveBits, r.PaperActive,
			r.TernaryMatches, r.PaperMatches)
		if r.TotalBits < 800 {
			t.Errorf("%s total ternary bits = %d; the wide field alone is 800", r.Program, r.TotalBits)
		}
		if r.ActiveBits >= r.TotalBits/4 {
			t.Errorf("%s active bits (%d) should be a small fraction of total (%d)", r.Program, r.ActiveBits, r.TotalBits)
		}
		if r.TernaryMatches < 1 {
			t.Errorf("%s ternary matches = %d", r.Program, r.TernaryMatches)
		}
	}
}

// TestPassCounts asserts §6.4's exact resubmit/recirculate counts.
func TestPassCounts(t *testing.T) {
	rows, err := PassCounts()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Resubmits != r.PaperResub || r.Recirculates != r.PaperRecirc {
			t.Errorf("%s: resubmits=%d recirc=%d, paper %d/%d",
				r.Case, r.Resubmits, r.Recirculates, r.PaperResub, r.PaperRecirc)
		}
	}
}

// TestTable5Shape runs a reduced Table 5 and asserts the headline claim:
// HyPer4 costs most of the bandwidth and multiplies latency.
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := Table5(Table5Opts{Runs: 1, IperfBytes: 256 * 1024, Pings: 50, MSS: 1400})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s native %.1f Mbps / hp4 %.1f Mbps (penalty %.0f%%, paper %.0f%%)  lat %v -> %v (%.1fx, paper %.1fx)",
			r.Scenario, r.NativeMbps, r.HP4Mbps, 100*r.BandwidthPenalty, 100*r.PaperPenalty,
			r.NativeLat, r.HP4Lat, r.LatencyRatio, r.PaperLatency)
		if r.BandwidthPenalty < 0.5 {
			t.Errorf("%s: bandwidth penalty %.2f, expected large (paper %.2f)", r.Scenario, r.BandwidthPenalty, r.PaperPenalty)
		}
		if r.LatencyRatio < 2 {
			t.Errorf("%s: latency ratio %.2f, expected >2 (paper %.1f)", r.Scenario, r.LatencyRatio, r.PaperLatency)
		}
	}
}

// TestFigureSweepShape asserts linear growth (Figures 7 and 8).
func TestFigureSweepShape(t *testing.T) {
	points, err := FigureSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 25 {
		t.Fatalf("points = %d", len(points))
	}
	byKey := map[[2]int]FigurePoint{}
	for _, p := range points {
		byKey[[2]int{p.Stages, p.Primitives}] = p
	}
	// Linearity in stages at fixed primitives.
	d1 := byKey[[2]int{2, 9}].LoC - byKey[[2]int{1, 9}].LoC
	d2 := byKey[[2]int{5, 9}].LoC - byKey[[2]int{4, 9}].LoC
	if d1 != d2 || d1 <= 0 {
		t.Errorf("stage growth not linear: +%d vs +%d", d1, d2)
	}
	// Linearity in primitives at fixed stages.
	e1 := byKey[[2]int{4, 3}].LoC - byKey[[2]int{4, 1}].LoC
	e2 := byKey[[2]int{4, 9}].LoC - byKey[[2]int{4, 7}].LoC
	if e1 != e2 || e1 <= 0 {
		t.Errorf("primitive growth not linear: +%d vs +%d", e1, e2)
	}
	// Figure 7(b)/(c): per-primitive support code also grows.
	if byKey[[2]int{5, 9}].DropLoC <= byKey[[2]int{1, 1}].DropLoC {
		t.Error("drop-primitive LoC should grow with the sweep")
	}
	if byKey[[2]int{5, 9}].ModLoC <= byKey[[2]int{1, 1}].ModLoC {
		t.Error("modify_field LoC should grow with the sweep")
	}
	// Figure 8: tables grow linearly too.
	t1 := byKey[[2]int{2, 5}].Tables - byKey[[2]int{1, 5}].Tables
	t2 := byKey[[2]int{5, 5}].Tables - byKey[[2]int{4, 5}].Tables
	if t1 != t2 || t1 <= 0 {
		t.Errorf("table growth not linear: +%d vs +%d", t1, t2)
	}
	ref := byKey[[2]int{4, 9}]
	t.Logf("reference point (4 stages, 9 prims): %d LoC (paper ~6400), %d tables (paper 346)", ref.LoC, ref.Tables)
}

func TestSpace(t *testing.T) {
	s, err := Space()
	if err != nil {
		t.Fatal(err)
	}
	if s.EntryBitsED != 1600 {
		t.Errorf("extracted entry bits = %d, paper: 1600", s.EntryBitsED)
	}
	if s.EntryBitsMeta != 512 {
		t.Errorf("metadata entry bits = %d, paper: 512", s.EntryBitsMeta)
	}
	if s.LoC < 4000 || s.LoC > 12000 {
		t.Errorf("persona LoC = %d, paper ~6400", s.LoC)
	}
	t.Logf("space: %d tables, %d actions (%d resize), %d LoC", s.Tables, s.Actions, s.ResizeActions, s.LoC)
}

func TestRMTAnalysisShape(t *testing.T) {
	a, err := RMTAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if !a.FitsPHV {
		t.Errorf("PHV should fit: %+v", a.PHV)
	}
	if a.FitsIngressStages {
		t.Errorf("arp proxy should exceed RMT ingress stages: %d", a.IngressPhys)
	}
	t.Logf("RMT: PHV %d/%d, ingress stages %d→%d phys (paper 46→51), egress %d→%d, over %.0f%%",
		a.PHV.Total, a.Spec.PHVBits, a.IngressHP4Stages, a.IngressPhys,
		a.EgressHP4Stages, a.EgressPhys, a.IngressOverPct)
}

// TestGridAblation verifies the parse-grid tradeoff: finer steps cost
// source lines, and the TCP path's extracted bytes shrink toward the exact
// 54-byte requirement.
func TestGridAblation(t *testing.T) {
	rows, err := GridAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("step=%2d: persona %d LoC, %d parser states, tcp bytes=%d, resubmits=%d",
			r.Step, r.PersonaLoC, r.ParserStates, r.TCPBytes, r.TCPResubmits)
		if r.TCPBytes < 54 {
			t.Errorf("step %d extracted %d bytes < requirement 54", r.Step, r.TCPBytes)
		}
		if r.TCPResubmits != 2 {
			t.Errorf("step %d resubmits = %d (decision points fix the count)", r.Step, r.TCPResubmits)
		}
	}
	if rows[0].PersonaLoC <= rows[len(rows)-1].PersonaLoC {
		t.Error("finer grid should cost more LoC")
	}
	if rows[0].TCPBytes > rows[len(rows)-1].TCPBytes {
		t.Error("finer grid should not extract more bytes")
	}
}

// TestDeviceDensity verifies the amortization claim: adding devices grows
// installed state but leaves the per-packet cost of one slice near-flat.
func TestDeviceDensity(t *testing.T) {
	rows, err := DeviceDensity([]int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("devices=%d: %.0f ns/pkt, %d applies, %d persona rows", r.Devices, r.NsPerPkt, r.Applies, r.TotalRows)
	}
	if rows[2].TotalRows <= rows[0].TotalRows {
		t.Error("more devices should install more rows")
	}
	if rows[0].Applies != rows[2].Applies {
		t.Errorf("per-packet stage count should not depend on co-resident devices: %d vs %d",
			rows[0].Applies, rows[2].Applies)
	}
	// Per-packet cost should grow far slower than device count (sub-2x for 8x devices).
	if rows[2].NsPerPkt > rows[0].NsPerPkt*2 {
		t.Errorf("per-packet cost grew too much with density: %.0f -> %.0f ns", rows[0].NsPerPkt, rows[2].NsPerPkt)
	}
}

// TestPartialVirtualizationAblation verifies §7.1's claim: the fixed-parser
// persona removes every parse resubmission and cuts per-packet work.
func TestPartialVirtualizationAblation(t *testing.T) {
	rows, err := PartialVirtualization()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s full: %d applies / %d passes / %d resubmits / %.0f ns; partial: %d / %d / %d / %.0f ns",
			r.Program, r.FullApplies, r.FullPasses, r.FullResubmits, r.FullNsPerPkt,
			r.PartApplies, r.PartPasses, r.PartResubmits, r.PartNsPerPkt)
		if r.PartResubmits != 0 {
			t.Errorf("%s partial resubmits = %d, want 0", r.Program, r.PartResubmits)
		}
		if r.FullResubmits == 0 {
			t.Errorf("%s full resubmits = 0; workload should need reparsing", r.Program)
		}
		if r.PartApplies >= r.FullApplies {
			t.Errorf("%s partial applies %d should be below full %d", r.Program, r.PartApplies, r.FullApplies)
		}
		if r.PartNsPerPkt >= r.FullNsPerPkt {
			t.Errorf("%s partial should be faster: %.0f vs %.0f ns", r.Program, r.PartNsPerPkt, r.FullNsPerPkt)
		}
	}
}
