package bench

import (
	"fmt"
	"runtime"
	"time"

	"hyper4/internal/functions"
	"hyper4/internal/sim"
)

// ThroughputResult is one serial-vs-parallel throughput measurement.
type ThroughputResult struct {
	Function    string  `json:"function"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"` // GOMAXPROCS during the run
	Packets     int     `json:"packets"`
	SerialNsOp  float64 `json:"serial_ns_per_pkt"`
	SerialPPS   float64 `json:"serial_pkts_per_sec"`
	BatchNsOp   float64 `json:"parallel_ns_per_pkt"`
	BatchPPS    float64 `json:"parallel_pkts_per_sec"`
	Speedup     float64 `json:"speedup"`
	SerialAlloc float64 `json:"serial_allocs_per_pkt"`
	P50Ns       int64   `json:"serial_p50_ns"`
	P90Ns       int64   `json:"serial_p90_ns"`
	P99Ns       int64   `json:"serial_p99_ns"`
	P999Ns      int64   `json:"serial_p999_ns"`
}

// ThroughputFunctions are the workloads the throughput experiment sweeps:
// two single functions and the Example 1 C composed chain, whose emulated
// packets cross two virtual links (and whose fused plans chain across
// them).
func ThroughputFunctions() []string {
	return []string{functions.L2Switch, functions.Firewall, functions.Composed}
}

// Throughput measures serial Process and batched ProcessBatch throughput for
// one function and mode, driving at least minPackets packets through each
// path (the function's workload packets, repeated).
func Throughput(fn string, mode Mode, minPackets int) (ThroughputResult, error) {
	sw, err := FunctionSwitch(fn, mode)
	if err != nil {
		return ThroughputResult{}, err
	}
	src := WorkloadPackets(fn)
	if len(src) == 0 {
		return ThroughputResult{}, fmt.Errorf("bench: no workload for %q", fn)
	}
	if minPackets < len(src) {
		minPackets = len(src)
	}
	inputs := make([]sim.Input, minPackets)
	for i := range inputs {
		inputs[i] = sim.Input{Data: src[i%len(src)], Port: 1}
	}
	// Warm the state pool and any lazy paths before timing.
	if _, err := sw.ProcessBatch(inputs[:min(len(inputs), 8)]); err != nil {
		return ThroughputResult{}, err
	}

	runtime.GC() // start the timed phases from a collected heap
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	lat0 := sw.Metrics().Latency
	start := time.Now()
	for _, in := range inputs {
		if _, _, err := sw.Process(in.Data, in.Port); err != nil {
			return ThroughputResult{}, err
		}
	}
	serial := time.Since(start)
	runtime.ReadMemStats(&m1)
	serialAllocs := float64(m1.Mallocs-m0.Mallocs) / float64(len(inputs))
	// Percentiles come from the switch's own latency histogram, restricted
	// to the serial loop via a snapshot delta.
	lat := sw.Metrics().Latency.Sub(lat0)

	// Collect the serial loop's garbage before timing the batched phase:
	// without this, the batched run pays the serial loop's deferred GC debt,
	// which shows up as a phantom sub-1x "speedup" at low worker counts.
	runtime.GC()
	start = time.Now()
	if _, err := sw.ProcessBatch(inputs); err != nil {
		return ThroughputResult{}, err
	}
	batched := time.Since(start)

	n := float64(len(inputs))
	res := ThroughputResult{
		Function:    fn,
		Mode:        mode.String(),
		Workers:     runtime.GOMAXPROCS(0),
		Packets:     len(inputs),
		SerialNsOp:  float64(serial.Nanoseconds()) / n,
		SerialPPS:   n / serial.Seconds(),
		BatchNsOp:   float64(batched.Nanoseconds()) / n,
		BatchPPS:    n / batched.Seconds(),
		SerialAlloc: serialAllocs,
		P50Ns:       lat.Quantile(0.50).Nanoseconds(),
		P90Ns:       lat.Quantile(0.90).Nanoseconds(),
		P99Ns:       lat.Quantile(0.99).Nanoseconds(),
		P999Ns:      lat.Quantile(0.999).Nanoseconds(),
	}
	if batched > 0 {
		res.Speedup = serial.Seconds() / batched.Seconds()
	}
	return res, nil
}
