package bench

import (
	"bytes"
	"testing"

	"hyper4/internal/functions"
	"hyper4/internal/sim"
)

// TestBatchSerialEquivalence drives every function's workload through both
// the serial Process path and the batched parallel path, in Native and
// HyPer4 modes, and requires byte-identical per-packet outputs. This is the
// contract the concurrency rework must preserve: parallelism may reorder
// cross-packet extern updates, but each packet's forwarding behavior is
// deterministic.
func TestBatchSerialEquivalence(t *testing.T) {
	type build struct {
		name string
		mk   func(mode Mode) (*sim.Switch, error)
		pkts [][]byte
	}
	builds := []build{
		{functions.L2Switch, func(m Mode) (*sim.Switch, error) { return FunctionSwitch(functions.L2Switch, m) }, WorkloadPackets(functions.L2Switch)},
		{functions.Router, func(m Mode) (*sim.Switch, error) { return FunctionSwitch(functions.Router, m) }, WorkloadPackets(functions.Router)},
		{functions.Firewall, func(m Mode) (*sim.Switch, error) { return FunctionSwitch(functions.Firewall, m) }, WorkloadPackets(functions.Firewall)},
		{functions.ARPProxy, func(m Mode) (*sim.Switch, error) { return FunctionSwitch(functions.ARPProxy, m) }, WorkloadPackets(functions.ARPProxy)},
		{"composed", func(m Mode) (*sim.Switch, error) { return composedSwitch("s", m) }, WorkloadPackets(functions.Firewall)},
	}
	for _, bl := range builds {
		for _, mode := range []Mode{Native, HyPer4} {
			t.Run(bl.name+"/"+mode.String(), func(t *testing.T) {
				sw, err := bl.mk(mode)
				if err != nil {
					t.Fatal(err)
				}
				// Interleave the workload packets into a batch large enough
				// to occupy every worker.
				inputs := make([]sim.Input, 48)
				for i := range inputs {
					inputs[i] = sim.Input{Data: bl.pkts[i%len(bl.pkts)], Port: 1}
				}
				want := make([]sim.Result, len(inputs))
				for i, in := range inputs {
					want[i].Outputs, want[i].Trace, want[i].Err = sw.Process(in.Data, in.Port)
					if want[i].Err != nil {
						t.Fatalf("serial packet %d: %v", i, want[i].Err)
					}
				}
				got, err := sw.ProcessBatch(inputs)
				if err != nil {
					t.Fatal(err)
				}
				for i := range inputs {
					w, g := want[i], got[i]
					if g.Err != nil {
						t.Fatalf("batched packet %d: %v", i, g.Err)
					}
					if len(g.Outputs) != len(w.Outputs) {
						t.Fatalf("packet %d: %d outputs batched, %d serial", i, len(g.Outputs), len(w.Outputs))
					}
					for j := range g.Outputs {
						if g.Outputs[j].Port != w.Outputs[j].Port {
							t.Errorf("packet %d output %d: port %d vs %d", i, j, g.Outputs[j].Port, w.Outputs[j].Port)
						}
						if !bytes.Equal(g.Outputs[j].Data, w.Outputs[j].Data) {
							t.Errorf("packet %d output %d differs:\n  batched %x\n  serial  %x", i, j, g.Outputs[j].Data, w.Outputs[j].Data)
						}
					}
					if g.Trace.Applies != w.Trace.Applies || g.Trace.Passes != w.Trace.Passes {
						t.Errorf("packet %d trace: applies %d/%d passes %d/%d", i,
							g.Trace.Applies, w.Trace.Applies, g.Trace.Passes, w.Trace.Passes)
					}
				}
			})
		}
	}
}

// TestThroughputHelper sanity-checks the measurement helper the benchmark
// and hp4bench -parallel share.
func TestThroughputHelper(t *testing.T) {
	res, err := Throughput(functions.L2Switch, Native, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets < 64 || res.SerialPPS <= 0 || res.BatchPPS <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
}
