package bench

import (
	"testing"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/functions"
	"hyper4/internal/netsim"
)

// TestEndToEndARPThroughPersona runs a live ARP resolution against an
// emulated ARP proxy: the host broadcasts a who-has, the persona answers on
// behalf of the proxied address, and the host's stack receives the reply.
func TestEndToEndARPThroughPersona(t *testing.T) {
	sw, d, err := newPersonaSwitch("s1")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := compiled(functions.ARPProxy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("arp", comp, "it", 0); err != nil {
		t.Fatal(err)
	}
	c := functions.NewARPControllerFunc(d.Installer("it", "arp"))
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddProxiedHost(h2IP, h2MAC); err != nil {
		t.Fatal(err)
	}
	if err := c.AddHost(h1MAC, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AssignPort("it", dpmu.Assignment{PhysPort: -1, VDev: "arp", VIngress: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.MapVPort("it", "arp", 1, 1); err != nil {
		t.Fatal(err)
	}

	n := netsim.New()
	n.AddSwitch("s1", sw)
	n.AddHost("h1", h1MAC, h1IP)
	if err := n.Connect("s1", 1, "h1"); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	// h2 does not exist on the network — only the proxy answers for it.
	mac, err := n.ResolveARP("h1", h2IP)
	if err != nil {
		t.Fatal(err)
	}
	if mac != h2MAC {
		t.Errorf("resolved %v, want %v", mac, h2MAC)
	}
}

// TestEndToEndIperfThroughComposition pushes a bulk transfer end to end
// through the full emulated arp→firewall→router chain between two hosts.
func TestEndToEndIperfThroughComposition(t *testing.T) {
	sw, err := composedSwitch("s1", HyPer4)
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New()
	n.AddSwitch("s1", sw)
	n.AddHost("h1", h1MAC, h1IP)
	n.AddHost("h2", h2MAC, h2IP)
	if err := n.Connect("s1", 1, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s1", 2, "h2"); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	res, err := n.Iperf("h1", "h2", 128*1024, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mbps() <= 0 {
		t.Errorf("mbps = %v", res.Mbps())
	}
	pr, err := n.PingFlood("h1", "h2", 20)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Count != 20 {
		t.Errorf("pings: %+v", pr)
	}
	// The chain's per-packet cost shows up in switch statistics.
	stats := sw.Stats()
	if stats.Recirculates == 0 || stats.Resubmits == 0 {
		t.Errorf("composition should recirculate and resubmit: %+v", stats)
	}
}

// TestEndToEndMixedModes runs a native edge and an emulated middle in one
// topology, as an operator migrating gradually would.
func TestEndToEndMixedModes(t *testing.T) {
	s1, err := l2Switch("s1", Native, []hostEntry{{h1MAC, 1}, {h2MAC, 2}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := firewallSwitch("s2", HyPer4)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := l2Switch("s3", Native, []hostEntry{{h1MAC, 1}, {h2MAC, 2}})
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New()
	n.AddSwitch("s1", s1)
	n.AddSwitch("s2", s2)
	n.AddSwitch("s3", s3)
	n.AddHost("h1", h1MAC, h1IP)
	n.AddHost("h2", h2MAC, h2IP)
	if err := n.Connect("s1", 1, "h1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s3", 2, "h2"); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectSwitches("s1", 2, "s2", 1); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectSwitches("s2", 2, "s3", 1); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	pr, err := n.PingFlood("h1", "h2", 25)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Count != 25 {
		t.Errorf("pings: %+v", pr)
	}
}
