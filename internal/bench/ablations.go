package bench

import (
	"fmt"
	"time"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// GridAblationRow shows the parse-grid tradeoff (§5.1's default/step/max
// parameters): a finer step wastes fewer extracted bytes but needs more
// parser states and source lines; a coarser step resubmits no less (the
// resubmit count depends on decision points, not grid size) but drags more
// bytes per pass.
type GridAblationRow struct {
	Step         int
	PersonaLoC   int
	ParserStates int
	TCPResubmits int
	TCPBytes     int // bytes extracted for the firewall's TCP path
}

// GridAblation sweeps the parse step for the firewall workload.
func GridAblation() ([]GridAblationRow, error) {
	var rows []GridAblationRow
	for _, step := range []int{2, 5, 10, 20, 40} {
		cfg := persona.Config{
			Stages:       persona.Reference.Stages,
			Primitives:   persona.Reference.Primitives,
			ParseDefault: 20,
			ParseStep:    step,
			ParseMax:     100,
		}
		p, err := persona.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("grid ablation step=%d: %w", step, err)
		}
		prog, err := functions.Load(functions.Firewall)
		if err != nil {
			return nil, err
		}
		comp, err := hp4c.Compile(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("grid ablation step=%d: %w", step, err)
		}
		sw, err := sim.New("s", p.Program)
		if err != nil {
			return nil, err
		}
		d, err := dpmu.New(sw, p)
		if err != nil {
			return nil, err
		}
		if _, err := d.Load("fw", comp, "ab", 0); err != nil {
			return nil, err
		}
		fc := functions.NewFirewallControllerFunc(d.Installer("ab", "fw"))
		if err := fc.AddHost(h2MAC, 2); err != nil {
			return nil, err
		}
		if err := d.AssignPort("ab", dpmu.Assignment{PhysPort: -1, VDev: "fw", VIngress: 1}); err != nil {
			return nil, err
		}
		if err := d.MapVPort("ab", "fw", 2, 2); err != nil {
			return nil, err
		}
		_, tr, err := sw.Process(WorkloadPackets(functions.Firewall)[0], 1)
		if err != nil {
			return nil, fmt.Errorf("grid ablation step=%d: %w", step, err)
		}
		tcpBytes := 0
		for _, pp := range comp.Paths {
			if pp.Valid["tcp"] {
				tcpBytes = pp.Bytes
			}
		}
		rows = append(rows, GridAblationRow{
			Step:         step,
			PersonaLoC:   p.LoC,
			ParserStates: len(cfg.ByteCounts()) + 1,
			TCPResubmits: tr.Resubmits,
			TCPBytes:     tcpBytes,
		})
	}
	return rows, nil
}

// DensityRow shows how per-packet cost scales with the number of virtual
// devices sharing the persona — the amortization argument of §1 ("the cost
// may be amortized over many programs sharing the same physical substrate").
type DensityRow struct {
	Devices   int
	NsPerPkt  float64
	Applies   int
	TotalRows int // persona entries installed
}

// DeviceDensity loads n L2 switches side by side (a port slice each) and
// measures the cost of traffic through the first slice.
func DeviceDensity(counts []int) ([]DensityRow, error) {
	var rows []DensityRow
	for _, n := range counts {
		sw, d, err := newPersonaSwitch("s")
		if err != nil {
			return nil, err
		}
		comp, err := compiled(functions.L2Switch)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("l2_%d", i)
			if _, err := d.Load(name, comp, "ab", 0); err != nil {
				return nil, err
			}
			c := functions.NewL2ControllerFunc(d.Installer("ab", name))
			base := i*2 + 1
			if err := c.AddHost(h1MAC, base); err != nil {
				return nil, err
			}
			if err := c.AddHost(h2MAC, base+1); err != nil {
				return nil, err
			}
			for _, port := range []int{base, base + 1} {
				if err := d.AssignPort("ab", dpmu.Assignment{PhysPort: port, VDev: name, VIngress: port}); err != nil {
					return nil, err
				}
				if err := d.MapVPort("ab", name, port, port); err != nil {
					return nil, err
				}
			}
		}
		frame := pkt.Pad(pkt.Serialize(&pkt.Ethernet{Dst: h2MAC, Src: h1MAC, EtherType: 0x0800}))
		// Warm up, then time.
		if _, _, err := sw.Process(frame, 1); err != nil {
			return nil, err
		}
		const iters = 200
		start := time.Now()
		var applies int
		for i := 0; i < iters; i++ {
			_, tr, err := sw.Process(frame, 1)
			if err != nil {
				return nil, err
			}
			applies = tr.Applies
		}
		elapsed := time.Since(start)
		total := 0
		for _, tbl := range sw.TableNames() {
			c, _ := sw.TableEntryCount(tbl)
			total += c
		}
		rows = append(rows, DensityRow{
			Devices:   n,
			NsPerPkt:  float64(elapsed.Nanoseconds()) / iters,
			Applies:   applies,
			TotalRows: total,
		})
	}
	return rows, nil
}

// PartialRow compares full virtualization against the §7.1 partial
// (fixed-parser) persona for one function's most complex packet.
type PartialRow struct {
	Program string

	FullApplies, FullPasses, FullResubmits int
	FullNsPerPkt                           float64
	PartApplies, PartPasses, PartResubmits int
	PartNsPerPkt                           float64
}

// partialCfg is the reference configuration with the fixed parser.
var partialCfg = persona.Config{
	Stages: persona.Reference.Stages, Primitives: persona.Reference.Primitives,
	ParseDefault: persona.Reference.ParseDefault,
	ParseStep:    persona.Reference.ParseStep,
	ParseMax:     persona.Reference.ParseMax,
	FixedParser:  true,
}

// PartialVirtualization measures §7.1's tradeoff for the firewall and
// router (the two functions whose parse paths need resubmission under full
// virtualization).
func PartialVirtualization() ([]PartialRow, error) {
	build := func(fn string, cfg persona.Config) (*sim.Switch, error) {
		p, err := persona.Generate(cfg)
		if err != nil {
			return nil, err
		}
		sw, err := sim.New("s", p.Program)
		if err != nil {
			return nil, err
		}
		d, err := dpmu.New(sw, p)
		if err != nil {
			return nil, err
		}
		prog, err := functions.Load(fn)
		if err != nil {
			return nil, err
		}
		comp, err := hp4c.Compile(prog, cfg)
		if err != nil {
			return nil, err
		}
		if _, err := d.Load("dev", comp, "ab", 0); err != nil {
			return nil, err
		}
		switch fn {
		case functions.Firewall:
			c := functions.NewFirewallControllerFunc(d.Installer("ab", "dev"))
			if err := c.AddHost(h2MAC, 2); err != nil {
				return nil, err
			}
			if err := c.BlockTCPDstPort(9999); err != nil {
				return nil, err
			}
		case functions.Router:
			c := functions.NewRouterControllerFunc(d.Installer("ab", "dev"))
			if err := c.Init(); err != nil {
				return nil, err
			}
			if err := c.AddRoute(h2IP, 32, h2IP, 2); err != nil {
				return nil, err
			}
			if err := c.AddNextHop(h2IP, h2MAC); err != nil {
				return nil, err
			}
			if err := c.AddPortMAC(2, s2MAC); err != nil {
				return nil, err
			}
		}
		if err := d.AssignPort("ab", dpmu.Assignment{PhysPort: -1, VDev: "dev", VIngress: 1}); err != nil {
			return nil, err
		}
		if err := d.MapVPort("ab", "dev", 2, 2); err != nil {
			return nil, err
		}
		return sw, nil
	}
	measure := func(sw *sim.Switch, p []byte) (applies, passes, resubmits int, ns float64, err error) {
		const iters = 100
		if _, _, err = sw.Process(p, 1); err != nil { // warm up
			return
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			var tr *sim.Trace
			if _, tr, err = sw.Process(p, 1); err != nil {
				return
			}
			applies, passes, resubmits = tr.Applies, tr.Passes, tr.Resubmits
		}
		ns = float64(time.Since(start).Nanoseconds()) / iters
		return
	}
	var rows []PartialRow
	for _, fn := range []string{functions.Firewall, functions.Router} {
		p := WorkloadPackets(fn)[0]
		row := PartialRow{Program: fn}
		full, err := build(fn, persona.Reference)
		if err != nil {
			return nil, fmt.Errorf("partial ablation %s full: %w", fn, err)
		}
		row.FullApplies, row.FullPasses, row.FullResubmits, row.FullNsPerPkt, err = measure(full, p)
		if err != nil {
			return nil, err
		}
		part, err := build(fn, partialCfg)
		if err != nil {
			return nil, fmt.Errorf("partial ablation %s partial: %w", fn, err)
		}
		row.PartApplies, row.PartPasses, row.PartResubmits, row.PartNsPerPkt, err = measure(part, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
