package bench

import (
	"fmt"

	"hyper4/internal/chaos"
	"hyper4/internal/core/dpmu"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// arpSwitch builds a (native or emulated) ARP proxy answering for h2,
// switching h1/h2 at ports 1/2.
func arpSwitch(name string, mode Mode) (*sim.Switch, error) {
	populate := func(c *functions.ARPController) error {
		if err := c.Init(); err != nil {
			return err
		}
		if err := c.AddProxiedHost(h2IP, h2MAC); err != nil {
			return err
		}
		if err := c.AddHost(h1MAC, 1); err != nil {
			return err
		}
		return c.AddHost(h2MAC, 2)
	}
	if mode == Native {
		sw, err := functions.NewSwitch(name, functions.ARPProxy)
		if err != nil {
			return nil, err
		}
		nc, err := functions.NewARPController(sw)
		if err != nil {
			return nil, err
		}
		if err := nc.AddProxiedHost(h2IP, h2MAC); err != nil {
			return nil, err
		}
		if err := nc.AddHost(h1MAC, 1); err != nil {
			return nil, err
		}
		if err := nc.AddHost(h2MAC, 2); err != nil {
			return nil, err
		}
		return sw, nil
	}
	sw, d, err := newPersonaSwitch(name)
	if err != nil {
		return nil, err
	}
	comp, err := compiled(functions.ARPProxy)
	if err != nil {
		return nil, err
	}
	if _, err := d.Load("arp", comp, "bench", 0); err != nil {
		return nil, err
	}
	if err := populate(functions.NewARPControllerFunc(d.Installer("bench", "arp"))); err != nil {
		return nil, err
	}
	if err := d.AssignPort("bench", dpmu.Assignment{PhysPort: -1, VDev: "arp", VIngress: 1}); err != nil {
		return nil, err
	}
	for _, port := range []int{1, 2} {
		if err := d.MapVPort("bench", "arp", port, port); err != nil {
			return nil, err
		}
	}
	fuseIf(mode, d)
	return sw, nil
}

// routerSwitch builds a (native or emulated) router with routes for h1/h2.
func routerSwitch(name string, mode Mode) (*sim.Switch, error) {
	populate := func(c *functions.RouterController) error {
		if err := c.Init(); err != nil {
			return err
		}
		for _, r := range []struct {
			ip   pkt.IP4
			port int
			mac  pkt.MAC
		}{{h1IP, 1, h1MAC}, {h2IP, 2, h2MAC}} {
			if err := c.AddRoute(r.ip, 32, r.ip, r.port); err != nil {
				return err
			}
			if err := c.AddNextHop(r.ip, r.mac); err != nil {
				return err
			}
			if err := c.AddPortMAC(r.port, s2MAC); err != nil {
				return err
			}
		}
		return nil
	}
	if mode == Native {
		sw, err := functions.NewSwitch(name, functions.Router)
		if err != nil {
			return nil, err
		}
		c, err := functions.NewRouterController(sw)
		if err != nil {
			return nil, err
		}
		for _, r := range []struct {
			ip   pkt.IP4
			port int
			mac  pkt.MAC
		}{{h1IP, 1, h1MAC}, {h2IP, 2, h2MAC}} {
			if err := c.AddRoute(r.ip, 32, r.ip, r.port); err != nil {
				return nil, err
			}
			if err := c.AddNextHop(r.ip, r.mac); err != nil {
				return nil, err
			}
			if err := c.AddPortMAC(r.port, s2MAC); err != nil {
				return nil, err
			}
		}
		return sw, nil
	}
	sw, d, err := newPersonaSwitch(name)
	if err != nil {
		return nil, err
	}
	comp, err := compiled(functions.Router)
	if err != nil {
		return nil, err
	}
	if _, err := d.Load("r", comp, "bench", 0); err != nil {
		return nil, err
	}
	if err := populate(functions.NewRouterControllerFunc(d.Installer("bench", "r"))); err != nil {
		return nil, err
	}
	if err := d.AssignPort("bench", dpmu.Assignment{PhysPort: -1, VDev: "r", VIngress: 1}); err != nil {
		return nil, err
	}
	for _, port := range []int{1, 2} {
		if err := d.MapVPort("bench", "r", port, port); err != nil {
			return nil, err
		}
	}
	fuseIf(mode, d)
	return sw, nil
}

// FunctionSwitch builds a configured switch for one of the paper's four
// functions in either mode.
func FunctionSwitch(fn string, mode Mode) (*sim.Switch, error) {
	if mode == HyPer4Ctl {
		return ctlSwitch("s", fn)
	}
	if mode == HyPer4Hooks {
		sw, err := FunctionSwitch(fn, HyPer4)
		if err != nil {
			return nil, err
		}
		sw.SetInjector(chaos.New(chaos.Spec{}))
		return sw, nil
	}
	switch fn {
	case functions.L2Switch:
		return l2Switch("s", mode, []hostEntry{{h1MAC, 1}, {h2MAC, 2}})
	case functions.Firewall:
		return firewallSwitch("s", mode)
	case functions.ARPProxy:
		return arpSwitch("s", mode)
	case functions.Router:
		return routerSwitch("s", mode)
	case functions.Composed:
		return composedSwitch("s", mode)
	}
	return nil, fmt.Errorf("bench: unknown function %q", fn)
}

// WorkloadPackets returns the packets driving Table 1 and Table 4 for one
// function: the traffic whose most complex path the paper measures.
func WorkloadPackets(fn string) [][]byte {
	tcp := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: h2MAC, Src: h1MAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: h1IP, Dst: h2IP},
		&pkt.TCP{SrcPort: 4000, DstPort: 5201},
		pkt.Payload("data"),
	))
	udp := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: h2MAC, Src: h1MAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: h1IP, Dst: h2IP},
		&pkt.UDP{SrcPort: 4000, DstPort: 53},
	))
	arpProxied := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: h1MAC, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: h1MAC, SenderIP: h1IP, TargetIP: h2IP},
	))
	arpOther := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: h2MAC, Src: h1MAC, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: h1MAC, SenderIP: h1IP, TargetIP: pkt.MustIP4("10.0.0.99")},
	))
	switch fn {
	case functions.L2Switch:
		return [][]byte{tcp}
	case functions.Firewall:
		return [][]byte{tcp, udp}
	case functions.Router:
		return [][]byte{udp, tcp}
	case functions.ARPProxy:
		return [][]byte{arpProxied, arpOther}
	case functions.Composed:
		// The full chain: switched by the ARP proxy, passed by the
		// firewall, routed — two virtual-link crossings per packet.
		return [][]byte{tcp, udp}
	}
	return nil
}
