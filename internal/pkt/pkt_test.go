package pkt

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMACParse(t *testing.T) {
	m, err := ParseMAC("00:11:22:33:44:55")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "00:11:22:33:44:55" {
		t.Errorf("round trip: %s", m)
	}
	if _, err := ParseMAC("nope"); err == nil {
		t.Error("bad MAC should error")
	}
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast.IsBroadcast")
	}
	if m.IsBroadcast() {
		t.Error("unicast IsBroadcast")
	}
}

func TestIP4Parse(t *testing.T) {
	ip, err := ParseIP4("10.0.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "10.0.1.2" {
		t.Errorf("round trip: %s", ip)
	}
	if ip.Uint32() != 0x0a000102 {
		t.Errorf("Uint32 = %#x", ip.Uint32())
	}
	if IP4FromUint32(0x0a000102) != ip {
		t.Error("IP4FromUint32 round trip")
	}
	for _, bad := range []string{"nope", "::1", "1.2.3.4.5"} {
		if _, err := ParseIP4(bad); err == nil {
			t.Errorf("ParseIP4(%q) should error", bad)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example header.
	hdr := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	if got := Checksum(hdr); got != 0xb861 {
		t.Errorf("Checksum = %#04x, want 0xb861", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data is padded with a zero byte.
	even := Checksum([]byte{0x01, 0x02, 0x03, 0x00})
	odd := Checksum([]byte{0x01, 0x02, 0x03})
	if even != odd {
		t.Errorf("odd-length pad: %#x vs %#x", odd, even)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{Dst: MustMAC("aa:bb:cc:dd:ee:ff"), Src: MustMAC("11:22:33:44:55:66"), EtherType: EtherTypeIPv4}
	b := e.Serialize(nil)
	if len(b) != 14 {
		t.Fatalf("len = %d", len(b))
	}
	got, rest, err := DecodeEthernet(append(b, 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Errorf("round trip: %+v", got)
	}
	if !bytes.Equal(rest, []byte{0xde, 0xad}) {
		t.Errorf("payload: %x", rest)
	}
	if _, _, err := DecodeEthernet(b[:13]); err == nil {
		t.Error("short ethernet should error")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{
		Op:       ARPRequest,
		SenderHW: MustMAC("11:22:33:44:55:66"),
		SenderIP: MustIP4("10.0.0.1"),
		TargetHW: MAC{},
		TargetIP: MustIP4("10.0.0.2"),
	}
	b := a.Serialize(nil)
	if len(b) != 28 {
		t.Fatalf("len = %d", len(b))
	}
	got, err := DecodeARP(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := DecodeARP(b[:27]); err == nil {
		t.Error("short arp should error")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := &IPv4{
		TOS: 0, TotalLen: 40, ID: 7, Flags: 2, FragOff: 0,
		TTL: 64, Protocol: IPProtoTCP, Checksum: 0x1234,
		Src: MustIP4("192.168.0.1"), Dst: MustIP4("192.168.0.2"),
	}
	b := ip.Serialize(nil)
	got, rest, err := DecodeIPv4(append(b, 0x99))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *ip {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, ip)
	}
	if len(rest) != 1 {
		t.Errorf("payload len = %d", len(rest))
	}
	if _, _, err := DecodeIPv4(b[:19]); err == nil {
		t.Error("short ipv4 should error")
	}
	bad := append([]byte{}, b...)
	bad[0] = 0x65 // version 6
	if _, _, err := DecodeIPv4(bad); err == nil {
		t.Error("wrong version should error")
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, TotalLen: 28,
		Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2")}
	ip.Checksum = ip.HeaderChecksum()
	hdr := ip.Serialize(nil)
	if got := Checksum(hdr); got != 0 {
		t.Errorf("checksum over checksummed header = %#x, want 0", got)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := &TCP{SrcPort: 1234, DstPort: 80, Seq: 99, Ack: 100,
		Flags: TCPSyn | TCPAck, Window: 65535, Checksum: 0xaaaa, Urgent: 0}
	b := tc.Serialize(nil)
	got, rest, err := DecodeTCP(append(b, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *tc {
		t.Errorf("round trip: %+v", got)
	}
	if len(rest) != 3 {
		t.Errorf("payload len = %d", len(rest))
	}
	if _, _, err := DecodeTCP(b[:19]); err == nil {
		t.Error("short tcp should error")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 53, DstPort: 5353, Length: 20, Checksum: 0xbbbb}
	b := u.Serialize(nil)
	got, _, err := DecodeUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *u {
		t.Errorf("round trip: %+v", got)
	}
	if _, _, err := DecodeUDP(b[:7]); err == nil {
		t.Error("short udp should error")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ic := &ICMP{Type: ICMPEchoRequest, Code: 0, Checksum: 0x1111, ID: 42, Seq: 7}
	b := ic.Serialize(nil)
	got, _, err := DecodeICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *ic {
		t.Errorf("round trip: %+v", got)
	}
}

func TestSerializeFixesIPv4Fields(t *testing.T) {
	b := Serialize(
		&Ethernet{Dst: Broadcast, Src: MustMAC("11:22:33:44:55:66"), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2")},
		&UDP{SrcPort: 1000, DstPort: 2000},
		Payload("hello"),
	)
	_, ipb, err := DecodeEthernet(b)
	if err != nil {
		t.Fatal(err)
	}
	ip, rest, err := DecodeIPv4(ipb)
	if err != nil {
		t.Fatal(err)
	}
	if int(ip.TotalLen) != 20+8+5 {
		t.Errorf("TotalLen = %d, want 33", ip.TotalLen)
	}
	if Checksum(ipb[:20]) != 0 {
		t.Error("IPv4 checksum not valid")
	}
	u, payload, err := DecodeUDP(rest)
	if err != nil {
		t.Fatal(err)
	}
	if int(u.Length) != 13 {
		t.Errorf("UDP length = %d, want 13", u.Length)
	}
	if string(payload) != "hello" {
		t.Errorf("payload = %q", payload)
	}
	// Verify UDP checksum by recomputing over pseudo-header + segment.
	if got := pseudoHeaderChecksum(ip.Src, ip.Dst, IPProtoUDP, rest); got != 0 {
		t.Errorf("UDP checksum verify = %#x, want 0", got)
	}
}

func TestSerializeTCPChecksum(t *testing.T) {
	b := Serialize(
		&Ethernet{Dst: MustMAC("aa:aa:aa:aa:aa:aa"), Src: MustMAC("bb:bb:bb:bb:bb:bb"), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoTCP, Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2")},
		&TCP{SrcPort: 5001, DstPort: 5201, Seq: 1},
		Payload(strings.Repeat("x", 100)),
	)
	_, ipb, _ := DecodeEthernet(b)
	ip, rest, err := DecodeIPv4(ipb)
	if err != nil {
		t.Fatal(err)
	}
	if got := pseudoHeaderChecksum(ip.Src, ip.Dst, IPProtoTCP, rest); got != 0 {
		t.Errorf("TCP checksum verify = %#x, want 0", got)
	}
}

func TestSerializeICMPChecksum(t *testing.T) {
	b := Serialize(
		&Ethernet{Dst: MustMAC("aa:aa:aa:aa:aa:aa"), Src: MustMAC("bb:bb:bb:bb:bb:bb"), EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoICMP, Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2")},
		&ICMP{Type: ICMPEchoRequest, ID: 1, Seq: 2},
		Payload("ping-data"),
	)
	_, ipb, _ := DecodeEthernet(b)
	_, rest, err := DecodeIPv4(ipb)
	if err != nil {
		t.Fatal(err)
	}
	if got := Checksum(rest); got != 0 {
		t.Errorf("ICMP checksum verify = %#x, want 0", got)
	}
}

func TestSerializeRespectsExplicitFields(t *testing.T) {
	// Non-zero checksum and length fields are passed through untouched.
	b := Serialize(
		&IPv4{TTL: 1, Protocol: IPProtoUDP, TotalLen: 999, Checksum: 0xdead,
			Src: MustIP4("1.1.1.1"), Dst: MustIP4("2.2.2.2")},
	)
	ip, _, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if ip.TotalLen != 999 || ip.Checksum != 0xdead {
		t.Errorf("explicit fields overwritten: %+v", ip)
	}
}

func TestSummary(t *testing.T) {
	cases := []struct {
		layers []Layer
		want   string
	}{
		{
			[]Layer{&Ethernet{Src: MustMAC("11:22:33:44:55:66"), Dst: Broadcast, EtherType: EtherTypeARP},
				&ARP{Op: ARPRequest, SenderIP: MustIP4("10.0.0.1"), TargetIP: MustIP4("10.0.0.2")}},
			"who-has 10.0.0.2",
		},
		{
			[]Layer{&Ethernet{Src: MustMAC("11:22:33:44:55:66"), Dst: Broadcast, EtherType: EtherTypeIPv4},
				&IPv4{TTL: 64, Protocol: IPProtoICMP, Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2")},
				&ICMP{Type: ICMPEchoRequest, ID: 3, Seq: 4}},
			"echo-request",
		},
		{
			[]Layer{&Ethernet{Src: MustMAC("11:22:33:44:55:66"), Dst: Broadcast, EtherType: EtherTypeIPv4},
				&IPv4{TTL: 64, Protocol: IPProtoTCP, Src: MustIP4("10.0.0.1"), Dst: MustIP4("10.0.0.2")},
				&TCP{SrcPort: 1, DstPort: 2}},
			"TCP 1 > 2",
		},
	}
	for _, c := range cases {
		got := Summary(Serialize(c.layers...))
		if !strings.Contains(got, c.want) {
			t.Errorf("Summary = %q, want substring %q", got, c.want)
		}
	}
	if got := Summary([]byte{1, 2}); !strings.Contains(got, "short") {
		t.Errorf("short packet summary = %q", got)
	}
}

func TestPropChecksumDetectsSingleBitFlip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, 2+r.Intn(64)*2) // even length
		r.Read(data)
		ck := Checksum(data)
		// Embed checksum; full sum must be zero.
		withCk := append(append([]byte{}, data...), 0, 0)
		binary.BigEndian.PutUint16(withCk[len(data):], ck)
		if Checksum(withCk) != 0 {
			return false
		}
		// Flip one bit: checksum must no longer verify.
		i := r.Intn(len(data))
		bit := byte(1) << r.Intn(8)
		withCk[i] ^= bit
		return Checksum(withCk) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropEthernetRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, et uint16, payload []byte) bool {
		e := &Ethernet{Dst: dst, Src: src, EtherType: et}
		b := e.Serialize(nil)
		b = append(b, payload...)
		got, rest, err := DecodeEthernet(b)
		return err == nil && *got == *e && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
