package pkt

import (
	"encoding/binary"
	"fmt"
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// Len implements Layer.
func (e *Ethernet) Len() int { return 14 }

// Serialize implements Layer.
func (e *Ethernet) Serialize(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// DecodeEthernet parses an Ethernet header and returns it with the payload.
func DecodeEthernet(b []byte) (*Ethernet, []byte, error) {
	if len(b) < 14 {
		return nil, nil, fmt.Errorf("pkt: ethernet too short (%d bytes)", len(b))
	}
	e := &Ethernet{EtherType: binary.BigEndian.Uint16(b[12:14])}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	return e, b[14:], nil
}

// ARP is an IPv4-over-Ethernet ARP message.
type ARP struct {
	Op       uint16 // ARPRequest or ARPReply
	SenderHW MAC
	SenderIP IP4
	TargetHW MAC
	TargetIP IP4
}

// Len implements Layer.
func (a *ARP) Len() int { return 28 }

// Serialize implements Layer.
func (a *ARP) Serialize(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, 1)             // htype: ethernet
	b = binary.BigEndian.AppendUint16(b, EtherTypeIPv4) // ptype
	b = append(b, 6, 4)                                 // hlen, plen
	b = binary.BigEndian.AppendUint16(b, a.Op)
	b = append(b, a.SenderHW[:]...)
	b = append(b, a.SenderIP[:]...)
	b = append(b, a.TargetHW[:]...)
	return append(b, a.TargetIP[:]...)
}

// DecodeARP parses an ARP message.
func DecodeARP(b []byte) (*ARP, error) {
	if len(b) < 28 {
		return nil, fmt.Errorf("pkt: arp too short (%d bytes)", len(b))
	}
	a := &ARP{Op: binary.BigEndian.Uint16(b[6:8])}
	copy(a.SenderHW[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetHW[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16 // filled by Packet.Serialize when zero
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16 // filled by Packet.Serialize when zero
	Src      IP4
	Dst      IP4
}

// Len implements Layer.
func (ip *IPv4) Len() int { return 20 }

// Serialize implements Layer.
func (ip *IPv4) Serialize(b []byte) []byte {
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, ip.TotalLen)
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b = append(b, ip.TTL, ip.Protocol)
	b = binary.BigEndian.AppendUint16(b, ip.Checksum)
	b = append(b, ip.Src[:]...)
	return append(b, ip.Dst[:]...)
}

// DecodeIPv4 parses an IPv4 header and returns it with the payload.
func DecodeIPv4(b []byte) (*IPv4, []byte, error) {
	if len(b) < 20 {
		return nil, nil, fmt.Errorf("pkt: ipv4 too short (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return nil, nil, fmt.Errorf("pkt: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < 20 || len(b) < ihl {
		return nil, nil, fmt.Errorf("pkt: bad IHL %d", ihl)
	}
	ip := &IPv4{
		TOS:      b[1],
		TotalLen: binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Flags:    b[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(b[6:8]) & 0x1fff,
		TTL:      b[8],
		Protocol: b[9],
		Checksum: binary.BigEndian.Uint16(b[10:12]),
	}
	copy(ip.Src[:], b[12:16])
	copy(ip.Dst[:], b[16:20])
	return ip, b[ihl:], nil
}

// HeaderChecksum computes the correct header checksum for ip (with the
// checksum field treated as zero).
func (ip *IPv4) HeaderChecksum() uint16 {
	saved := ip.Checksum
	ip.Checksum = 0
	hdr := ip.Serialize(nil)
	ip.Checksum = saved
	return Checksum(hdr)
}

// ICMP is an ICMP echo message header.
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16 // filled by Packet.Serialize when zero
	ID       uint16
	Seq      uint16
}

// Len implements Layer.
func (ic *ICMP) Len() int { return 8 }

// Serialize implements Layer.
func (ic *ICMP) Serialize(b []byte) []byte {
	b = append(b, ic.Type, ic.Code)
	b = binary.BigEndian.AppendUint16(b, ic.Checksum)
	b = binary.BigEndian.AppendUint16(b, ic.ID)
	return binary.BigEndian.AppendUint16(b, ic.Seq)
}

// DecodeICMP parses an ICMP echo header and returns it with the payload.
func DecodeICMP(b []byte) (*ICMP, []byte, error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("pkt: icmp too short (%d bytes)", len(b))
	}
	return &ICMP{
		Type:     b[0],
		Code:     b[1],
		Checksum: binary.BigEndian.Uint16(b[2:4]),
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Seq:      binary.BigEndian.Uint16(b[6:8]),
	}, b[8:], nil
}

// TCP is a TCP header without options.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	Flags    uint8 // FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
	Window   uint16
	Checksum uint16 // filled by Packet.Serialize when zero
	Urgent   uint16
}

// TCP flag bits.
const (
	TCPFin = 0x01
	TCPSyn = 0x02
	TCPRst = 0x04
	TCPPsh = 0x08
	TCPAck = 0x10
)

// Len implements Layer.
func (t *TCP) Len() int { return 20 }

// Serialize implements Layer.
func (t *TCP) Serialize(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, t.Flags) // data offset 5 words
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = binary.BigEndian.AppendUint16(b, t.Checksum)
	return binary.BigEndian.AppendUint16(b, t.Urgent)
}

// DecodeTCP parses a TCP header and returns it with the payload.
func DecodeTCP(b []byte) (*TCP, []byte, error) {
	if len(b) < 20 {
		return nil, nil, fmt.Errorf("pkt: tcp too short (%d bytes)", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < 20 || len(b) < off {
		return nil, nil, fmt.Errorf("pkt: bad TCP data offset %d", off)
	}
	return &TCP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Seq:      binary.BigEndian.Uint32(b[4:8]),
		Ack:      binary.BigEndian.Uint32(b[8:12]),
		Flags:    b[13],
		Window:   binary.BigEndian.Uint16(b[14:16]),
		Checksum: binary.BigEndian.Uint16(b[16:18]),
		Urgent:   binary.BigEndian.Uint16(b[18:20]),
	}, b[off:], nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // filled by Packet.Serialize when zero
	Checksum uint16 // filled by Packet.Serialize when zero
}

// Len implements Layer.
func (u *UDP) Len() int { return 8 }

// Serialize implements Layer.
func (u *UDP) Serialize(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, u.Length)
	return binary.BigEndian.AppendUint16(b, u.Checksum)
}

// DecodeUDP parses a UDP header and returns it with the payload.
func DecodeUDP(b []byte) (*UDP, []byte, error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("pkt: udp too short (%d bytes)", len(b))
	}
	return &UDP{
		SrcPort:  binary.BigEndian.Uint16(b[0:2]),
		DstPort:  binary.BigEndian.Uint16(b[2:4]),
		Length:   binary.BigEndian.Uint16(b[4:6]),
		Checksum: binary.BigEndian.Uint16(b[6:8]),
	}, b[8:], nil
}

// Payload is raw bytes appended after the last protocol header.
type Payload []byte

// Len implements Layer.
func (p Payload) Len() int { return len(p) }

// Serialize implements Layer.
func (p Payload) Serialize(b []byte) []byte { return append(b, p...) }
