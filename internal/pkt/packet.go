package pkt

import (
	"encoding/binary"
	"fmt"
)

// Serialize assembles a stack of layers into wire bytes, fixing up length and
// checksum fields that are zero: IPv4 total length and header checksum, TCP
// and UDP checksums (pseudo-header), UDP length, and the ICMP checksum.
// Layers are given outermost first.
func Serialize(layers ...Layer) []byte {
	// First pass: compute lengths below each layer.
	total := 0
	for _, l := range layers {
		total += l.Len()
	}
	// Fix up length fields before serializing.
	remaining := total
	for _, l := range layers {
		remaining -= l.Len()
		switch h := l.(type) {
		case *IPv4:
			if h.TotalLen == 0 {
				h.TotalLen = uint16(h.Len() + remaining)
			}
		case *UDP:
			if h.Length == 0 {
				h.Length = uint16(h.Len() + remaining)
			}
		}
	}
	// Serialize bottom-up so inner bytes are available for checksums.
	offsets := make([]int, len(layers))
	b := make([]byte, 0, total)
	off := 0
	for i, l := range layers {
		offsets[i] = off
		b = l.Serialize(b)
		off = len(b)
	}
	// Checksum fixups, innermost first so outer checksums cover final bytes.
	var enclosing *IPv4
	var enclosingIdx int
	for i, l := range layers {
		if ip, ok := l.(*IPv4); ok {
			enclosing = ip
			enclosingIdx = i
		}
	}
	for i := len(layers) - 1; i >= 0; i-- {
		start := offsets[i]
		switch h := layers[i].(type) {
		case *ICMP:
			if h.Checksum == 0 {
				binary.BigEndian.PutUint16(b[start+2:], 0)
				ck := Checksum(b[start:])
				binary.BigEndian.PutUint16(b[start+2:], ck)
			}
		case *TCP:
			if h.Checksum == 0 && enclosing != nil && enclosingIdx < i {
				binary.BigEndian.PutUint16(b[start+16:], 0)
				ck := pseudoHeaderChecksum(enclosing.Src, enclosing.Dst, IPProtoTCP, b[start:])
				binary.BigEndian.PutUint16(b[start+16:], ck)
			}
		case *UDP:
			if h.Checksum == 0 && enclosing != nil && enclosingIdx < i {
				binary.BigEndian.PutUint16(b[start+6:], 0)
				ck := pseudoHeaderChecksum(enclosing.Src, enclosing.Dst, IPProtoUDP, b[start:])
				if ck == 0 {
					ck = 0xffff
				}
				binary.BigEndian.PutUint16(b[start+6:], ck)
			}
		case *IPv4:
			if h.Checksum == 0 {
				binary.BigEndian.PutUint16(b[start+10:], 0)
				ck := Checksum(b[start : start+h.Len()])
				binary.BigEndian.PutUint16(b[start+10:], ck)
			}
		}
	}
	return b
}

// MinFrame is the minimum Ethernet frame size (without FCS). Real NICs pad
// transmitted frames to this size; hosts in the network simulator do the
// same so that short frames (ARP, bare TCP ACKs) reach switches padded, as
// the paper's Mininet/veth environment would deliver them.
const MinFrame = 60

// Pad zero-pads a frame to the Ethernet minimum, returning the input when
// already long enough.
func Pad(b []byte) []byte {
	if len(b) >= MinFrame {
		return b
	}
	out := make([]byte, MinFrame)
	copy(out, b)
	return out
}

// Summary decodes as much of a packet as it can and returns a one-line
// human-readable description, for logs and example output.
func Summary(b []byte) string {
	eth, rest, err := DecodeEthernet(b)
	if err != nil {
		return fmt.Sprintf("short packet (%d bytes)", len(b))
	}
	s := fmt.Sprintf("%s > %s", eth.Src, eth.Dst)
	switch eth.EtherType {
	case EtherTypeARP:
		a, err := DecodeARP(rest)
		if err != nil {
			return s + " ARP (truncated)"
		}
		if a.Op == ARPRequest {
			return fmt.Sprintf("%s ARP who-has %s tell %s", s, a.TargetIP, a.SenderIP)
		}
		return fmt.Sprintf("%s ARP %s is-at %s", s, a.SenderIP, a.SenderHW)
	case EtherTypeIPv4:
		ip, rest2, err := DecodeIPv4(rest)
		if err != nil {
			return s + " IPv4 (truncated)"
		}
		s = fmt.Sprintf("%s IPv4 %s > %s ttl=%d", s, ip.Src, ip.Dst, ip.TTL)
		switch ip.Protocol {
		case IPProtoICMP:
			ic, _, err := DecodeICMP(rest2)
			if err != nil {
				return s + " ICMP (truncated)"
			}
			kind := "type=" + fmt.Sprint(ic.Type)
			switch ic.Type {
			case ICMPEchoRequest:
				kind = "echo-request"
			case ICMPEchoReply:
				kind = "echo-reply"
			}
			return fmt.Sprintf("%s ICMP %s id=%d seq=%d", s, kind, ic.ID, ic.Seq)
		case IPProtoTCP:
			t, payload, err := DecodeTCP(rest2)
			if err != nil {
				return s + " TCP (truncated)"
			}
			return fmt.Sprintf("%s TCP %d > %d seq=%d len=%d", s, t.SrcPort, t.DstPort, t.Seq, len(payload))
		case IPProtoUDP:
			u, payload, err := DecodeUDP(rest2)
			if err != nil {
				return s + " UDP (truncated)"
			}
			return fmt.Sprintf("%s UDP %d > %d len=%d", s, u.SrcPort, u.DstPort, len(payload))
		}
		return fmt.Sprintf("%s proto=%d", s, ip.Protocol)
	}
	return fmt.Sprintf("%s ethertype=%#04x", s, eth.EtherType)
}
