// Package pkt provides encoding and decoding for the protocol layers used by
// the HyPer4 evaluation: Ethernet, ARP, IPv4, ICMP, TCP, and UDP.
//
// The API follows the layered style of gopacket: each layer is a struct with
// exported fields, a Decode method that consumes bytes, and a Serialize
// method that produces them. Packet assembles a layer stack into wire bytes
// and computes the checksums that depend on enclosing layers.
package pkt

import (
	"encoding/binary"
	"fmt"
	"net"
)

// EtherTypes and IP protocol numbers used throughout the repo.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806

	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17

	ARPRequest = 1
	ARPReply   = 2

	ICMPEchoRequest = 8
	ICMPEchoReply   = 0
)

// Layer is one protocol layer of a packet.
type Layer interface {
	// Serialize appends the wire form of the layer to b and returns the
	// extended slice. Length and checksum fields that depend on the payload
	// are fixed up by Packet.Serialize, not here.
	Serialize(b []byte) []byte
	// Len returns the wire length of this layer's header in bytes.
	Len() int
}

// MAC is a 6-byte hardware address.
type MAC [6]byte

// ParseMAC parses a colon-separated MAC address.
func ParseMAC(s string) (MAC, error) {
	hw, err := net.ParseMAC(s)
	if err != nil || len(hw) != 6 {
		return MAC{}, fmt.Errorf("pkt: bad MAC %q", s)
	}
	var m MAC
	copy(m[:], hw)
	return m, nil
}

// MustMAC is ParseMAC that panics on error, for tests and fixtures.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// String renders the address in colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// Broadcast is the all-ones MAC address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IP4 is an IPv4 address.
type IP4 [4]byte

// ParseIP4 parses a dotted-quad IPv4 address.
func ParseIP4(s string) (IP4, error) {
	ip := net.ParseIP(s)
	if ip == nil {
		return IP4{}, fmt.Errorf("pkt: bad IPv4 %q", s)
	}
	v4 := ip.To4()
	if v4 == nil {
		return IP4{}, fmt.Errorf("pkt: not IPv4 %q", s)
	}
	var out IP4
	copy(out[:], v4)
	return out, nil
}

// MustIP4 is ParseIP4 that panics on error, for tests and fixtures.
func MustIP4(s string) IP4 {
	ip, err := ParseIP4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address in dotted-quad form.
func (ip IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian integer.
func (ip IP4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IP4FromUint32 builds an address from a big-endian integer.
func IP4FromUint32(x uint32) IP4 {
	var ip IP4
	binary.BigEndian.PutUint32(ip[:], x)
	return ip
}

// Checksum computes the RFC 1071 internet checksum over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderChecksum computes the TCP/UDP pseudo-header + payload checksum.
func pseudoHeaderChecksum(src, dst IP4, proto uint8, segment []byte) uint16 {
	ph := make([]byte, 12, 12+len(segment))
	copy(ph[0:4], src[:])
	copy(ph[4:8], dst[:])
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:12], uint16(len(segment)))
	ph = append(ph, segment...)
	return Checksum(ph)
}
