package sim

import (
	"reflect"
	"testing"

	"hyper4/internal/bitfield"
)

const dumpTestP4 = `
header_type ethernet_t {
    fields { dst : 48; src : 48; etherType : 16; }
}
header ethernet_t ethernet;

parser start {
    extract(ethernet);
    return ingress;
}

action _nop() { no_op(); }
action _drop() { drop(); }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }

table dmac {
    reads { ethernet.dst : exact; }
    actions { forward; _drop; _nop; }
}
table filter {
    reads { ethernet.etherType : ternary; }
    actions { _drop; _nop; }
}

control ingress {
    apply(dmac);
    apply(filter);
}
`

func newDumpSwitch(t *testing.T) *Switch {
	t.Helper()
	return load(t, dumpTestP4)
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	sw := newDumpSwitch(t)
	mac := func(b byte) bitfield.Value { return bitfield.FromUint(48, uint64(b)) }
	if _, err := sw.TableAdd("dmac", "forward", []MatchParam{Exact(mac(1))}, Args(9, 1), 0); err != nil {
		t.Fatal(err)
	}
	h2, err := sw.TableAdd("dmac", "forward", []MatchParam{Exact(mac(2))}, Args(9, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("filter", "_drop",
		[]MatchParam{Ternary(bitfield.FromUint(16, 0x0806), bitfield.Ones(16))}, nil, 5); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("dmac", "_drop", nil); err != nil {
		t.Fatal(err)
	}
	sw.SetMirror(7, 3)

	before := sw.Dump()

	// Mutate everything the dump covers, then rewind.
	if err := sw.TableDelete("dmac", h2); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("dmac", "_nop", []MatchParam{Exact(mac(9))}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("dmac", "_nop", nil); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableClear("filter"); err != nil {
		t.Fatal(err)
	}
	sw.SetMirror(8, 4)
	if mutated := sw.Dump(); reflect.DeepEqual(before, mutated) {
		t.Fatal("mutations not visible in dump")
	}

	sw.RestoreDump(before)
	after := sw.Dump()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("restore not bit-identical:\nbefore %+v\nafter  %+v", before, after)
	}

	// The restored switch still forwards: handle counters resumed, so a fresh
	// add does not collide with a restored handle.
	h, err := sw.TableAdd("dmac", "forward", []MatchParam{Exact(mac(3))}, Args(9, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if h <= h2 {
		t.Fatalf("handle %d not past restored nextHandle (h2=%d)", h, h2)
	}
}

func TestDumpRestorePreservesLookup(t *testing.T) {
	sw := newDumpSwitch(t)
	dst := make([]byte, 14)
	dst[5] = 1 // ethernet.dst = ...01
	if _, err := sw.TableAdd("dmac", "forward",
		[]MatchParam{Exact(bitfield.FromUint(48, 1))}, Args(9, 5), 0); err != nil {
		t.Fatal(err)
	}
	outs, _, err := sw.Process(dst, 1)
	if err != nil || len(outs) != 1 || outs[0].Port != 5 {
		t.Fatalf("pre-dump forwarding: %v %v", outs, err)
	}
	d := sw.Dump()
	if err := sw.TableClear("dmac"); err != nil {
		t.Fatal(err)
	}
	sw.RestoreDump(d)
	outs, _, err = sw.Process(dst, 1)
	if err != nil || len(outs) != 1 || outs[0].Port != 5 {
		t.Fatalf("post-restore forwarding: %v %v", outs, err)
	}
}
