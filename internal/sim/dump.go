package sim

import "hyper4/internal/bitfield"

// This file captures and restores the switch's control-plane state — the
// state management operations can change, as opposed to the state traffic
// changes. A SwitchDump is the unit of the control-plane API's atomicity
// protocol (internal/core/ctl): a batch checkpoint takes a Dump, a failed
// batch rolls back with RestoreDump, and the rollback tests diff two Dumps
// to prove the switch is bit-identical to its pre-batch state.

// EntryDump is one installed entry as captured by Dump. Params and Args are
// shared with the live entry (both are immutable after install).
type EntryDump struct {
	Handle   int
	Params   []MatchParam
	Action   string
	Args     []bitfield.Value
	Priority int
	Hits     int64
}

// TableDump is one table's control-plane state.
type TableDump struct {
	// Entries are in match-precedence order, as the table stores them.
	Entries       []EntryDump
	NextHandle    int
	DefaultAction string
	DefaultArgs   []bitfield.Value
}

// MeterRates is the configured thresholds of one meter cell (usage within
// the current window is traffic state and is not captured).
type MeterRates struct {
	YellowAt uint64
	RedAt    uint64
}

// SwitchDump is the full control-plane state of a switch: every table's
// entries and default action, the clone-session mirror map, and meter
// thresholds. Registers and counters are traffic state and are excluded.
type SwitchDump struct {
	Tables  map[string]TableDump
	Mirrors map[int]int
	Meters  map[string][]MeterRates
}

// Dump captures the switch's control-plane state. The result is safe to hold
// across later mutations: slices and maps are copied, and the entry payloads
// they reference are immutable.
func (sw *Switch) Dump() *SwitchDump {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	d := &SwitchDump{
		Tables:  make(map[string]TableDump, len(sw.tables)),
		Mirrors: make(map[int]int, len(sw.mirrors)),
		Meters:  make(map[string][]MeterRates, len(sw.meters)),
	}
	for name, t := range sw.tables {
		td := TableDump{
			Entries:       make([]EntryDump, len(t.entries)),
			NextHandle:    t.nextHandle,
			DefaultAction: t.defaultAction,
			DefaultArgs:   t.defaultArgs,
		}
		for i, e := range t.entries {
			td.Entries[i] = EntryDump{
				Handle:   e.Handle,
				Params:   e.Params,
				Action:   e.Action,
				Args:     e.Args,
				Priority: e.Priority,
				Hits:     e.hits.Load(),
			}
		}
		d.Tables[name] = td
	}
	for sess, port := range sw.mirrors {
		d.Mirrors[sess] = port
	}
	for name, m := range sw.meters {
		m.mu.Lock()
		rates := make([]MeterRates, len(m.cells))
		for i, c := range m.cells {
			rates[i] = MeterRates{YellowAt: c.yellowAt, RedAt: c.redAt}
		}
		m.mu.Unlock()
		d.Meters[name] = rates
	}
	return d
}

// RestoreDump rewinds the switch's control-plane state to a previous Dump of
// the same switch: entries (with their handles, precedence positions and hit
// counters), handle counters, default actions, mirrors and meter thresholds
// all return to their captured values. Traffic state (registers, counters,
// meter window usage, lifetime stats) is left alone.
func (sw *Switch) RestoreDump(d *SwitchDump) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	// A restore replaces table contents wholesale; any compiled fast-path
	// plan built against the pre-restore state must stop matching.
	sw.bumpGen()
	for name, t := range sw.tables {
		td := d.Tables[name] // zero value restores an empty table
		t.entries = make([]*Entry, 0, len(td.Entries))
		t.exactIndex = map[string]*Entry{}
		for _, ed := range td.Entries {
			e := &Entry{
				Handle:   ed.Handle,
				Params:   ed.Params,
				Action:   ed.Action,
				Args:     ed.Args,
				Priority: ed.Priority,
			}
			e.prefixSum = e.totalPrefix()
			e.hits.Store(ed.Hits)
			// Dumped order is the table's precedence order; append preserves it.
			t.entries = append(t.entries, e)
			if t.allExact {
				t.exactIndex[exactKeyStringParams(e.Params)] = e
			}
		}
		t.rebuildLPM()
		t.nextHandle = td.NextHandle
		t.defaultAction = td.DefaultAction
		t.defaultArgs = td.DefaultArgs
	}
	sw.mirrors = make(map[int]int, len(d.Mirrors))
	for sess, port := range d.Mirrors {
		sw.mirrors[sess] = port
	}
	for name, m := range sw.meters {
		rates, ok := d.Meters[name]
		if !ok {
			continue
		}
		m.mu.Lock()
		for i := range m.cells {
			if i < len(rates) {
				m.cells[i].yellowAt = rates[i].YellowAt
				m.cells[i].redAt = rates[i].RedAt
			}
		}
		m.mu.Unlock()
	}
}
