package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Input is one packet handed to ProcessBatch.
type Input struct {
	Data []byte
	Port int
}

// Result is the outcome of processing one batched packet. Results are
// positional: Results[i] corresponds to Inputs[i] regardless of which worker
// processed it.
type Result struct {
	Outputs []Output
	Trace   *Trace
	Err     error
}

// ProcessBatch processes a slice of packets concurrently across up to
// GOMAXPROCS worker goroutines and returns one Result per input, in input
// order. Per-packet outputs and traces are byte-identical to serial Process
// calls; only cross-packet extern ordering (register/counter/meter update
// interleaving) is scheduling-dependent, exactly as it is for packets
// arriving on different ports of a hardware switch.
//
// The returned error is the first per-packet error encountered (by input
// index); per-packet errors are also recorded in each Result.
func (sw *Switch) ProcessBatch(pkts []Input) ([]Result, error) {
	results := make([]Result, len(pkts))
	if len(pkts) == 0 {
		return results, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkts) {
		workers = len(pkts)
	}
	if workers <= 1 {
		_ = sw.ProcessSeq(pkts, results)
		return results, firstError(results)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pkts) {
					return
				}
				results[i].Outputs, results[i].Trace, results[i].Err = sw.Process(pkts[i].Data, pkts[i].Port)
			}
		}()
	}
	wg.Wait()
	return results, firstError(results)
}

// ProcessSeq processes pkts serially on the calling goroutine, writing into
// the caller-provided results slice (which must be at least len(pkts) long).
// It is the allocation-free batch entry point the packet I/O runtime's
// workers use: each worker drains a burst from its rings and hands it over
// in one call, reusing the same results backing across bursts. Per-packet
// errors land in results; the return is the first of them, if any.
func (sw *Switch) ProcessSeq(pkts []Input, results []Result) error {
	for i := range pkts {
		results[i].Outputs, results[i].Trace, results[i].Err = sw.Process(pkts[i].Data, pkts[i].Port)
	}
	return firstError(results[:len(pkts)])
}

func firstError(results []Result) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}
