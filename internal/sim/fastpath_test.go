package sim

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/pkt"
)

// TestTableAddDuplicateExactRejected: inserting a second entry with the same
// exact-match key must fail atomically — no entry added, no handle consumed,
// and the original entry still matches.
func TestTableAddDuplicateExactRejected(t *testing.T) {
	sw := load(t, l2Src)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	key := []MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}
	h1, err := sw.TableAdd("dmac", "forward", key, Args(9, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("dmac", "forward", key, Args(9, 7), 0); err == nil {
		t.Fatal("duplicate exact key accepted")
	}
	if n, _ := sw.TableEntryCount("dmac"); n != 1 {
		t.Errorf("entry count after rejected dup = %d, want 1", n)
	}
	// The original entry still routes, and a distinct key still inserts with
	// a fresh handle.
	frame := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "hi")
	out, _, err := sw.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 3 {
		t.Fatalf("outputs = %+v", out)
	}
	mac4 := pkt.MustMAC("00:00:00:00:00:04")
	h2, err := sw.TableAdd("dmac", "forward",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac4[:]))}, Args(9, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2 == h1 {
		t.Errorf("handle reused after rejected dup: %d", h2)
	}
	// Deleting the original frees its key for reinsertion.
	if err := sw.TableDelete("dmac", h1); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("dmac", "forward", key, Args(9, 5), 0); err != nil {
		t.Fatalf("reinsert after delete: %v", err)
	}
}

const cloneDropSrc = `
header_type ethernet_t { fields { dstAddr : 48; srcAddr : 48; etherType : 16; } }
header ethernet_t ethernet;
parser start { extract(ethernet); return ingress; }
action mirror_and_drop() {
    clone_ingress_pkt_to_egress(7);
    drop();
}
table snoop { reads { ethernet.dstAddr : exact; } actions { mirror_and_drop; } }
control ingress { apply(snoop); }
`

// TestCloneI2EIgnoresParentDrop: an I2E clone starts its egress pass with
// every end-of-pipeline flag cleared, so an ingress drop of the original must
// not drop the mirror copy.
func TestCloneI2EIgnoresParentDrop(t *testing.T) {
	sw := load(t, cloneDropSrc)
	sw.SetMirror(7, 5)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	if _, err := sw.TableAdd("snoop", "mirror_and_drop",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, nil, 0); err != nil {
		t.Fatal(err)
	}
	frame := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "hi")
	out, tr, err := sw.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 5 {
		t.Fatalf("want only the mirror copy on port 5, got %+v", out)
	}
	if !bytes.Equal(out[0].Data, frame) {
		t.Errorf("mirror copy modified: %x", out[0].Data)
	}
	if tr.ClonesI2E != 1 {
		t.Errorf("ClonesI2E = %d", tr.ClonesI2E)
	}
}

const mixedLPMSrc = `
header_type ipv4_t { fields { proto : 8; dst : 32; } }
header ipv4_t ipv4;
parser start { extract(ipv4); return ingress; }
action route(port) { modify_field(standard_metadata.egress_spec, port); }
table rt {
    reads { ipv4.proto : exact; ipv4.dst : lpm; }
    actions { route; }
}
control ingress { apply(rt); }
`

// TestMixedLPMPrecedenceCached: in a multi-read table with an LPM component
// the longest summed prefix wins at equal priority, regardless of insertion
// order — exercising the prefix sum cached on the entry at insert time.
func TestMixedLPMPrecedenceCached(t *testing.T) {
	sw := load(t, mixedLPMSrc)
	ip := func(s string) bitfield.Value {
		a := pkt.MustIP4(s)
		return bitfield.FromBytes(32, a[:])
	}
	proto := Exact(bitfield.FromUint(8, 6))
	// Shorter prefix inserted first.
	if _, err := sw.TableAdd("rt", "route",
		[]MatchParam{proto, LPM(ip("10.0.0.0"), 8)}, Args(9, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("rt", "route",
		[]MatchParam{proto, LPM(ip("10.1.0.0"), 16)}, Args(9, 2), 0); err != nil {
		t.Fatal(err)
	}
	probe := func(dst string) int {
		t.Helper()
		a := pkt.MustIP4(dst)
		data := append([]byte{6}, a[:]...)
		out, _, err := sw.Process(data, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("dst %s: outputs %+v", dst, out)
		}
		return out[0].Port
	}
	if got := probe("10.1.2.3"); got != 2 {
		t.Errorf("10.1.2.3 routed to %d, want 2 (longest prefix)", got)
	}
	if got := probe("10.9.2.3"); got != 1 {
		t.Errorf("10.9.2.3 routed to %d, want 1 (/8 fallback)", got)
	}
}

// TestSingleLPMMixedPrioritiesFallsBack: the per-prefix-length index assumes
// uniform priorities; entries at different priorities must still match in
// priority order (via the sorted scan fallback).
func TestSingleLPMMixedPrioritiesFallsBack(t *testing.T) {
	sw := load(t, `
header_type ipv4_t { fields { dst : 32; } }
header ipv4_t ipv4;
parser start { extract(ipv4); return ingress; }
action route(port) { modify_field(standard_metadata.egress_spec, port); }
table rt { reads { ipv4.dst : lpm; } actions { route; } }
control ingress { apply(rt); }
`)
	ip := func(s string) bitfield.Value {
		a := pkt.MustIP4(s)
		return bitfield.FromBytes(32, a[:])
	}
	// A /8 at priority 0 must beat a /24 at priority 5 (lower value wins).
	if _, err := sw.TableAdd("rt", "route",
		[]MatchParam{LPM(ip("10.1.2.0"), 24)}, Args(9, 2), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("rt", "route",
		[]MatchParam{LPM(ip("10.0.0.0"), 8)}, Args(9, 1), 0); err != nil {
		t.Fatal(err)
	}
	addr := pkt.MustIP4("10.1.2.3")
	out, _, err := sw.Process(addr[:], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 1 {
		t.Fatalf("want priority-0 /8 to win, got %+v", out)
	}
}

// TestProcessBatchMatchesSerial: batched processing must produce per-packet
// outputs byte-identical to serial Process calls, in input order.
func TestProcessBatchMatchesSerial(t *testing.T) {
	sw := load(t, l2Src)
	for i, port := range []int{3, 4, 5} {
		mac := pkt.MustMAC(fmt.Sprintf("00:00:00:00:00:%02x", i+2))
		if _, err := sw.TableAdd("dmac", "forward",
			[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, Args(9, uint64(port)), 0); err != nil {
			t.Fatal(err)
		}
	}
	var inputs []Input
	for i := 0; i < 64; i++ {
		dst := fmt.Sprintf("00:00:00:00:00:%02x", i%5) // some hit, some miss
		inputs = append(inputs, Input{
			Data: ethFrame(dst, "00:00:00:00:00:01", 0x1234, fmt.Sprintf("p%d", i)),
			Port: i % 4,
		})
	}
	want := make([]Result, len(inputs))
	for i, in := range inputs {
		want[i].Outputs, want[i].Trace, want[i].Err = sw.Process(in.Data, in.Port)
	}
	got, err := sw.ProcessBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("packet %d: err %v vs serial %v", i, got[i].Err, want[i].Err)
		}
		if len(got[i].Outputs) != len(want[i].Outputs) {
			t.Fatalf("packet %d: %d outputs vs serial %d", i, len(got[i].Outputs), len(want[i].Outputs))
		}
		for j := range got[i].Outputs {
			if got[i].Outputs[j].Port != want[i].Outputs[j].Port ||
				!bytes.Equal(got[i].Outputs[j].Data, want[i].Outputs[j].Data) {
				t.Fatalf("packet %d output %d: %+v vs serial %+v", i, j, got[i].Outputs[j], want[i].Outputs[j])
			}
		}
		if got[i].Trace.Applies != want[i].Trace.Applies || got[i].Trace.Hits != want[i].Trace.Hits {
			t.Errorf("packet %d trace: %+v vs serial %+v", i, got[i].Trace, want[i].Trace)
		}
	}
}

// TestProcessBatchSerialFallback pins the workers==1 degenerate cases: with
// GOMAXPROCS=1 (or a single-packet batch) ProcessBatch must take the serial
// loop rather than paying worker-goroutine setup, and still produce results
// identical to serial Process calls.
func TestProcessBatchSerialFallback(t *testing.T) {
	sw := load(t, l2Src)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	if _, err := sw.TableAdd("dmac", "forward",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, Args(9, 3), 0); err != nil {
		t.Fatal(err)
	}
	frame := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "hi")

	check := func(inputs []Input) {
		t.Helper()
		results, err := sw.ProcessBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if len(r.Outputs) != 1 || r.Outputs[0].Port != 3 {
				t.Fatalf("packet %d: outputs %+v", i, r.Outputs)
			}
		}
	}
	// Single-packet batch: workers clamps to len(pkts)=1.
	check([]Input{{Data: frame, Port: 1}})

	// GOMAXPROCS=1: the whole batch runs on the serial loop. The baseline
	// goroutine count must be unchanged afterwards (no leaked workers), and
	// per-packet allocation must match plain serial Process — worker setup
	// (WaitGroup, closures, atomic cursor) would show up here.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	inputs := make([]Input, 16)
	for i := range inputs {
		inputs[i] = Input{Data: frame, Port: 1}
	}
	check(inputs)
	serial := testing.AllocsPerRun(50, func() {
		if _, _, err := sw.Process(frame, 1); err != nil {
			t.Fatal(err)
		}
	})
	batched := testing.AllocsPerRun(50, func() {
		if _, err := sw.ProcessBatch(inputs); err != nil {
			t.Fatal(err)
		}
	})
	perPkt := (batched - 1) / float64(len(inputs)) // minus the results slice
	if perPkt > serial+1 {
		t.Errorf("workers==1 ProcessBatch allocates %.1f/pkt vs %.1f serial; fallback not serial", perPkt, serial)
	}
}

// TestConcurrentBatchAndControlPlane drives ProcessBatch from several
// goroutines while the control plane adds and deletes entries. Run under
// -race this checks the locking discipline; functionally each packet must
// see a consistent table (either port, never a torn entry).
func TestConcurrentBatchAndControlPlane(t *testing.T) {
	sw := load(t, l2Src)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	key := []MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}
	frame := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "hi")

	inputs := make([]Input, 32)
	for i := range inputs {
		inputs[i] = Input{Data: frame, Port: 1}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h, err := sw.TableAdd("dmac", "forward", key, Args(9, uint64(3+i%2)), 0)
			if err != nil {
				t.Error(err)
				return
			}
			if err := sw.TableDelete("dmac", h); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; round < 50; round++ {
		results, err := sw.ProcessBatch(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			for _, o := range r.Outputs {
				if o.Port != 3 && o.Port != 4 {
					t.Fatalf("torn entry: forwarded to port %d", o.Port)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	st := sw.Stats()
	if st.PacketsIn != 50*len(inputs) {
		t.Errorf("PacketsIn = %d, want %d", st.PacketsIn, 50*len(inputs))
	}
}

// TestProcessSteadyStateAllocs guards the zero-alloc fast path: steady-state
// exact-match processing must stay in single-digit allocations per packet
// (the seed needed 39).
func TestProcessSteadyStateAllocs(t *testing.T) {
	sw := load(t, l2Src)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	if _, err := sw.TableAdd("dmac", "forward",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, Args(9, 3), 0); err != nil {
		t.Fatal(err)
	}
	frame := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "hi")
	// Warm the pool.
	if _, _, err := sw.Process(frame, 1); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, _, err := sw.Process(frame, 1); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 12 {
		t.Errorf("Process allocates %.1f/op, want <= 12", avg)
	}
}
