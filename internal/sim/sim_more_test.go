package sim

import (
	"bytes"
	"testing"

	"hyper4/internal/p4/ast"
)

const cloneE2ESrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table t { actions { fwd; } }
action mirror() { clone_egress_pkt_to_egress(3); }
table e { reads { standard_metadata.instance_type : exact; } actions { mirror; } }
control ingress { apply(t); }
control egress { apply(e); }
`

func TestCloneE2E(t *testing.T) {
	sw := load(t, cloneE2ESrc)
	sw.SetMirror(3, 7)
	if err := sw.TableSetDefault("t", "fwd", nil); err != nil {
		t.Fatal(err)
	}
	// Only normal packets (instance_type 0) trigger the mirror, or the
	// clone would clone itself forever.
	if _, err := sw.TableAdd("e", "mirror", []MatchParam{ExactUint(32, 0)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	out, tr, err := sw.Process([]byte{0xaa, 0xbb}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want original + clone: %+v", out)
	}
	ports := map[int]bool{}
	for _, o := range out {
		ports[o.Port] = true
		if !bytes.Equal(o.Data, []byte{0xaa, 0xbb}) {
			t.Errorf("data: %x", o.Data)
		}
	}
	if !ports[1] || !ports[7] {
		t.Errorf("ports: %v", ports)
	}
	if tr.ClonesE2E != 1 {
		t.Errorf("clones = %d", tr.ClonesE2E)
	}
}

func TestByteMeter(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
meter bw { type : bytes; instance_count : 1; }
header_type m_t { fields { color : 8; } }
metadata m_t m;
action check() {
    execute_meter(bw, 0, m.color);
    modify_field(h.v, m.color);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { check; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
`)
	if err := sw.TableSetDefault("t", "check", nil); err != nil {
		t.Fatal(err)
	}
	// 100-byte yellow threshold: a 64-byte packet stays green, the next
	// crosses into yellow.
	if err := sw.MeterSetRates("bw", 0, 100, 1000); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 64)
	out, _, err := sw.Process(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data[0] != MeterGreen {
		t.Errorf("first packet color = %d", out[0].Data[0])
	}
	out, _, err = sw.Process(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data[0] != MeterYellow {
		t.Errorf("second packet color = %d", out[0].Data[0])
	}
}

func TestIntrospection(t *testing.T) {
	sw := load(t, l2Src)
	reads, err := sw.TableReads("dmac")
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 1 || reads[0].Kind != ast.MatchExact || reads[0].Width != 48 {
		t.Errorf("reads: %+v", reads)
	}
	if _, err := sw.TableReads("ghost"); err == nil {
		t.Error("unknown table should error")
	}
	params, err := sw.ActionParams("forward")
	if err != nil || len(params) != 1 || params[0] != "port" {
		t.Errorf("params: %v, %v", params, err)
	}
	if _, err := sw.ActionParams("ghost"); err == nil {
		t.Error("unknown action should error")
	}
	names := sw.TableNames()
	if len(names) != 1 || names[0] != "dmac" {
		t.Errorf("names: %v", names)
	}
	if !sw.HasTable("dmac") || sw.HasTable("ghost") {
		t.Error("HasTable wrong")
	}
	if n, err := sw.TableEntryCount("dmac"); err != nil || n != 0 {
		t.Errorf("count: %d, %v", n, err)
	}
}

func TestProgramAccessorAndStats(t *testing.T) {
	sw := load(t, l2Src)
	if sw.Program() == nil {
		t.Fatal("Program() nil")
	}
	if _, _, err := sw.Process(ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0, ""), 1); err != nil {
		t.Fatal(err)
	}
	s := sw.Stats()
	if s.PacketsIn != 1 || s.PacketsDropped != 1 || s.TableApplies == 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestMaskedModifyField(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 16; } }
header h_t h;
action m() {
    modify_field(h.v, 0xabcd, 0x0ff0);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { m; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
`)
	if err := sw.TableSetDefault("t", "m", nil); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{0x12, 0x34}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// (0xabcd & 0x0ff0) | (0x1234 & ~0x0ff0) = 0x0bc0 | 0x1004 = 0x1bc4.
	if !bytes.Equal(out[0].Data, []byte{0x1b, 0xc4}) {
		t.Errorf("masked modify = %x", out[0].Data)
	}
}

func TestCopyHeaderValiditySpread(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t a;
header h_t b;
action cp() {
    copy_header(b, a);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { cp; } }
parser start { extract(a); return ingress; }
control ingress { apply(t); }
`)
	if err := sw.TableSetDefault("t", "cp", nil); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{0x7e}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// b becomes valid with a's contents; deparse emits both.
	if !bytes.Equal(out[0].Data, []byte{0x7e, 0x7e}) {
		t.Errorf("data: %x", out[0].Data)
	}
}

func TestRuntimeConditionErrors(t *testing.T) {
	// Unknown primitive argument kinds and bad stateful names surface as
	// processing errors.
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
action bad() { register_write(nope, 0, 1); }
table t { actions { bad; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
`)
	if err := sw.TableSetDefault("t", "bad", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.Process([]byte{1}, 0); err == nil {
		t.Fatal("unknown register should error at execution")
	}
}

func TestComparisonOperators(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
action out(p) { modify_field(standard_metadata.egress_spec, p); }
table t1 { actions { out; } }
table t2 { actions { out; } }
parser start { extract(h); return ingress; }
control ingress {
    if (h.v < 10) { apply(t1); }
    if (h.v >= 10 and h.v <= 20) { apply(t2); }
}
`)
	if err := sw.TableSetDefault("t1", "out", Args(9, 1)); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("t2", "out", Args(9, 2)); err != nil {
		t.Fatal(err)
	}
	out, _, _ := sw.Process([]byte{5}, 0)
	if out[0].Port != 1 {
		t.Errorf("v=5 port %d", out[0].Port)
	}
	out, _, _ = sw.Process([]byte{15}, 0)
	if out[0].Port != 2 {
		t.Errorf("v=15 port %d", out[0].Port)
	}
	out, _, _ = sw.Process([]byte{99}, 0)
	if len(out) != 0 {
		t.Errorf("v=99 should drop: %+v", out)
	}
}

func TestResubmitWithoutFieldList(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
header_type m_t { fields { n : 8; } }
metadata m_t m;
action again() { modify_field(m.n, 5); resubmit(); }
action out() { modify_field(standard_metadata.egress_spec, 1); }
table t { reads { m.n : exact; } actions { again; out; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
`)
	// Without a field list, metadata resets: m.n is 0 again on the second
	// pass — install out for 0 after the resubmit entry is deleted.
	if _, err := sw.TableAdd("t", "again", []MatchParam{ExactUint(8, 0)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.Process([]byte{1}, 0); err == nil {
		t.Fatal("resubmit without preservation should loop to the pass bound")
	}
}

func TestEgressOnlyPortOnClone(t *testing.T) {
	sw := load(t, cloneE2ESrc)
	// No mirror configured: clone is a no-op.
	if err := sw.TableSetDefault("t", "fwd", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("e", "mirror", []MatchParam{ExactUint(32, 0)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outputs: %+v", out)
	}
}
