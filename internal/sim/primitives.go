package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// runPrimitive executes one primitive (or nested compound action) call.
func (sw *Switch) runPrimitive(call ast.PrimitiveCall, bindings map[string]bitfield.Value, ps *packetState, tr *Trace, entry *Entry, t *table, depth int) error {
	// Nested compound action.
	if !hlir.KnownPrimitive(call.Name) {
		args := make([]bitfield.Value, len(call.Args))
		for i, a := range call.Args {
			v, err := sw.evalExpr(a, bindings, ps, 0)
			if err != nil {
				return err
			}
			args[i] = v
		}
		return sw.runAction(call.Name, args, ps, tr, entry, t, depth+1)
	}

	tr.Primitives++

	dstField := func(i int) (ast.FieldRef, int, error) {
		if i >= len(call.Args) || call.Args[i].Kind != ast.ExprField {
			return ast.FieldRef{}, 0, fmt.Errorf("%s: argument %d must be a field", call.Name, i)
		}
		ref := call.Args[i].Field
		w, err := ps.fieldWidth(ref)
		return ref, w, err
	}
	val := func(i, width int) (bitfield.Value, error) {
		if i >= len(call.Args) {
			return bitfield.Value{}, fmt.Errorf("%s: missing argument %d", call.Name, i)
		}
		return sw.evalExpr(call.Args[i], bindings, ps, width)
	}
	name := func(i int) (string, error) {
		if i >= len(call.Args) {
			return "", fmt.Errorf("%s: missing argument %d", call.Name, i)
		}
		switch call.Args[i].Kind {
		case ast.ExprName:
			return call.Args[i].Name, nil
		case ast.ExprParam:
			return call.Args[i].Param, nil
		}
		return "", fmt.Errorf("%s: argument %d must be a name", call.Name, i)
	}
	headerArg := func(i int) (instKey, error) {
		if i >= len(call.Args) {
			return instKey{}, fmt.Errorf("%s: missing argument %d", call.Name, i)
		}
		var href ast.HeaderRef
		switch call.Args[i].Kind {
		case ast.ExprHeader:
			href = call.Args[i].Header
		case ast.ExprName:
			href = ast.HeaderRef{Instance: call.Args[i].Name, Index: ast.IndexNone}
		default:
			return instKey{}, fmt.Errorf("%s: argument %d must be a header", call.Name, i)
		}
		return ps.resolveHeaderRef(href)
	}

	switch call.Name {
	case "no_op":
		return nil

	case "modify_field":
		dst, w, err := dstField(0)
		if err != nil {
			return err
		}
		src, err := val(1, w)
		if err != nil {
			return err
		}
		if len(call.Args) >= 3 { // masked variant
			mask, err := val(2, w)
			if err != nil {
				return err
			}
			cur, err := ps.getField(dst)
			if err != nil {
				return err
			}
			src = src.And(mask).Or(cur.And(mask.Not()))
		}
		return ps.setField(dst, src)

	case "add_to_field", "subtract_from_field":
		dst, w, err := dstField(0)
		if err != nil {
			return err
		}
		amt, err := val(1, w)
		if err != nil {
			return err
		}
		cur, err := ps.getField(dst)
		if err != nil {
			return err
		}
		if call.Name == "add_to_field" {
			return ps.setField(dst, cur.Add(amt))
		}
		return ps.setField(dst, cur.Sub(amt))

	case "add", "subtract", "bit_and", "bit_or", "bit_xor":
		dst, w, err := dstField(0)
		if err != nil {
			return err
		}
		a, err := val(1, w)
		if err != nil {
			return err
		}
		b, err := val(2, w)
		if err != nil {
			return err
		}
		var out bitfield.Value
		switch call.Name {
		case "add":
			out = a.Add(b)
		case "subtract":
			out = a.Sub(b)
		case "bit_and":
			out = a.And(b)
		case "bit_or":
			out = a.Or(b)
		case "bit_xor":
			out = a.Xor(b)
		}
		return ps.setField(dst, out)

	case "shift_left", "shift_right":
		dst, w, err := dstField(0)
		if err != nil {
			return err
		}
		a, err := val(1, w)
		if err != nil {
			return err
		}
		// The shift amount keeps its natural width; it is a count.
		shv, err := val(2, 0)
		if err != nil {
			return err
		}
		n := int(shv.Uint64())
		if call.Name == "shift_left" {
			return ps.setField(dst, a.Shl(n))
		}
		return ps.setField(dst, a.Shr(n))

	case "drop":
		ps.dropped = true
		ps.setStdMeta(hlir.FieldEgressSpec, hlir.DropSpec)
		return nil

	case "add_header":
		k, err := headerArg(0)
		if err != nil {
			return err
		}
		h := ps.header(k)
		if !h.valid {
			h.valid = true
			h.value = bitfield.New(sw.prog.Instances[k.name].Width())
		}
		return nil

	case "remove_header":
		k, err := headerArg(0)
		if err != nil {
			return err
		}
		ps.header(k).valid = false
		return nil

	case "copy_header":
		dst, err := headerArg(0)
		if err != nil {
			return err
		}
		src, err := headerArg(1)
		if err != nil {
			return err
		}
		sh := ps.header(src)
		dh := ps.header(dst)
		dh.valid = sh.valid
		dh.value = sh.value.Clone().Resize(sw.prog.Instances[dst.name].Width())
		return nil

	case "resubmit":
		ps.resubmitRaised = true
		if len(call.Args) > 0 {
			fl, err := name(0)
			if err != nil {
				return err
			}
			ps.resubmitList = fl
		}
		return nil

	case "recirculate":
		ps.recircRaised = true
		if len(call.Args) > 0 {
			fl, err := name(0)
			if err != nil {
				return err
			}
			ps.recircList = fl
		}
		return nil

	case "clone_ingress_pkt_to_egress":
		sess, err := val(0, 32)
		if err != nil {
			return err
		}
		ps.cloneI2ERaised = true
		ps.cloneI2ESession = int(sess.Uint64())
		if len(call.Args) > 1 {
			fl, err := name(1)
			if err != nil {
				return err
			}
			ps.cloneI2EList = fl
		}
		return nil

	case "clone_egress_pkt_to_egress":
		sess, err := val(0, 32)
		if err != nil {
			return err
		}
		ps.cloneE2ERaised = true
		ps.cloneE2ESession = int(sess.Uint64())
		if len(call.Args) > 1 {
			fl, err := name(1)
			if err != nil {
				return err
			}
			ps.cloneE2EList = fl
		}
		return nil

	case "count":
		cname, err := name(0)
		if err != nil {
			return err
		}
		idx, err := val(1, 32)
		if err != nil {
			return err
		}
		return sw.countInc(cname, int(idx.Uint64()), len(ps.data))

	case "execute_meter":
		mname, err := name(0)
		if err != nil {
			return err
		}
		idx, err := val(1, 32)
		if err != nil {
			return err
		}
		dst, w, err := dstField(2)
		if err != nil {
			return err
		}
		color, err := sw.meterExecute(mname, int(idx.Uint64()), len(ps.data))
		if err != nil {
			return err
		}
		return ps.setField(dst, bitfield.FromUint(w, uint64(color)))

	case "register_read":
		dst, w, err := dstField(0)
		if err != nil {
			return err
		}
		rname, err := name(1)
		if err != nil {
			return err
		}
		idx, err := val(2, 32)
		if err != nil {
			return err
		}
		v, err := sw.RegisterRead(rname, int(idx.Uint64()))
		if err != nil {
			return err
		}
		return ps.setField(dst, v.Resize(w))

	case "register_write":
		rname, err := name(0)
		if err != nil {
			return err
		}
		idx, err := val(1, 32)
		if err != nil {
			return err
		}
		src, err := val(2, 0)
		if err != nil {
			return err
		}
		return sw.RegisterWrite(rname, int(idx.Uint64()), src)

	case "truncate":
		n, err := val(0, 32)
		if err != nil {
			return err
		}
		ps.truncateTo = int(n.Uint64())
		return nil
	}
	return fmt.Errorf("primitive %q not implemented", call.Name)
}
