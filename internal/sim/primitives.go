package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// Argument helpers. These are plain functions rather than closures so a
// primitive call performs no per-invocation allocation.

// primDstField resolves argument i as a destination field reference.
func primDstField(call *ast.PrimitiveCall, ps *packetState, i int) (ast.FieldRef, int, error) {
	if i >= len(call.Args) || call.Args[i].Kind != ast.ExprField {
		return ast.FieldRef{}, 0, fmt.Errorf("%s: argument %d must be a field", call.Name, i)
	}
	ref := call.Args[i].Field
	w, err := ps.fieldWidth(ref)
	return ref, w, err
}

// primVal evaluates argument i as a data value at the given width.
func (sw *Switch) primVal(call *ast.PrimitiveCall, frame actionFrame, ps *packetState, i, width int) (bitfield.Value, error) {
	if i >= len(call.Args) {
		return bitfield.Value{}, fmt.Errorf("%s: missing argument %d", call.Name, i)
	}
	return sw.evalExpr(call.Args[i], frame, ps, width)
}

// primName resolves argument i as a bare name (field list, register, ...).
func primName(call *ast.PrimitiveCall, i int) (string, error) {
	if i >= len(call.Args) {
		return "", fmt.Errorf("%s: missing argument %d", call.Name, i)
	}
	switch call.Args[i].Kind {
	case ast.ExprName:
		return call.Args[i].Name, nil
	case ast.ExprParam:
		return call.Args[i].Param, nil
	}
	return "", fmt.Errorf("%s: argument %d must be a name", call.Name, i)
}

// primHeader resolves argument i as a header slot.
func primHeader(call *ast.PrimitiveCall, ps *packetState, i int) (int, error) {
	if i >= len(call.Args) {
		return 0, fmt.Errorf("%s: missing argument %d", call.Name, i)
	}
	var href ast.HeaderRef
	switch call.Args[i].Kind {
	case ast.ExprHeader:
		href = call.Args[i].Header
	case ast.ExprName:
		href = ast.HeaderRef{Instance: call.Args[i].Name, Index: ast.IndexNone}
	default:
		return 0, fmt.Errorf("%s: argument %d must be a header", call.Name, i)
	}
	return ps.resolveHeaderRef(href)
}

// runPrimitive executes one primitive (or nested compound action) call.
func (sw *Switch) runPrimitive(call *ast.PrimitiveCall, frame actionFrame, ps *packetState, tr *Trace, entry *Entry, t *table, depth int) error {
	// Nested compound action.
	if !hlir.KnownPrimitive(call.Name) {
		args := make([]bitfield.Value, len(call.Args))
		for i, a := range call.Args {
			v, err := sw.evalExpr(a, frame, ps, 0)
			if err != nil {
				return err
			}
			args[i] = v
		}
		return sw.runAction(call.Name, args, ps, tr, entry, t, depth+1)
	}

	tr.Primitives++

	switch call.Name {
	case "no_op":
		return nil

	case "modify_field":
		dst, w, err := primDstField(call, ps, 0)
		if err != nil {
			return err
		}
		src, err := sw.primVal(call, frame, ps, 1, w)
		if err != nil {
			return err
		}
		if len(call.Args) >= 3 { // masked variant
			mask, err := sw.primVal(call, frame, ps, 2, w)
			if err != nil {
				return err
			}
			cur, err := ps.getField(dst)
			if err != nil {
				return err
			}
			src = src.And(mask).Or(cur.And(mask.Not()))
		}
		return ps.setField(dst, src)

	case "add_to_field", "subtract_from_field":
		dst, w, err := primDstField(call, ps, 0)
		if err != nil {
			return err
		}
		amt, err := sw.primVal(call, frame, ps, 1, w)
		if err != nil {
			return err
		}
		cur, err := ps.getField(dst)
		if err != nil {
			return err
		}
		// cur is a fresh copy, so mutate it in place and write it back.
		if call.Name == "add_to_field" {
			cur.AddWith(amt)
		} else {
			cur.SubWith(amt)
		}
		return ps.setField(dst, cur)

	case "add", "subtract", "bit_and", "bit_or", "bit_xor":
		dst, w, err := primDstField(call, ps, 0)
		if err != nil {
			return err
		}
		a, err := sw.primVal(call, frame, ps, 1, w)
		if err != nil {
			return err
		}
		b, err := sw.primVal(call, frame, ps, 2, w)
		if err != nil {
			return err
		}
		// a may alias an entry argument (Resize fast path), so combine into
		// a fresh clone rather than mutating a in place.
		out := a.Clone()
		switch call.Name {
		case "add":
			out.AddWith(b)
		case "subtract":
			out.SubWith(b)
		case "bit_and":
			out.AndWith(b)
		case "bit_or":
			out.OrWith(b)
		case "bit_xor":
			out.XorWith(b)
		}
		return ps.setField(dst, out)

	case "shift_left", "shift_right":
		dst, w, err := primDstField(call, ps, 0)
		if err != nil {
			return err
		}
		a, err := sw.primVal(call, frame, ps, 1, w)
		if err != nil {
			return err
		}
		// The shift amount keeps its natural width; it is a count.
		shv, err := sw.primVal(call, frame, ps, 2, 0)
		if err != nil {
			return err
		}
		n := int(shv.Uint64())
		if call.Name == "shift_left" {
			return ps.setField(dst, a.Shl(n))
		}
		return ps.setField(dst, a.Shr(n))

	case "drop":
		ps.dropped = true
		ps.setStdMeta(hlir.FieldEgressSpec, hlir.DropSpec)
		return nil

	case "add_header":
		slot, err := primHeader(call, ps, 0)
		if err != nil {
			return err
		}
		h := &ps.headers[slot]
		if !h.valid {
			h.valid = true
			h.value.Zero()
		}
		return nil

	case "remove_header":
		slot, err := primHeader(call, ps, 0)
		if err != nil {
			return err
		}
		ps.headers[slot].valid = false
		return nil

	case "copy_header":
		dst, err := primHeader(call, ps, 0)
		if err != nil {
			return err
		}
		src, err := primHeader(call, ps, 1)
		if err != nil {
			return err
		}
		sh := &ps.headers[src]
		dh := &ps.headers[dst]
		dh.valid = sh.valid
		dh.value.SetFrom(sh.value)
		return nil

	case "resubmit":
		ps.resubmitRaised = true
		if len(call.Args) > 0 {
			fl, err := primName(call, 0)
			if err != nil {
				return err
			}
			ps.resubmitList = fl
		}
		return nil

	case "recirculate":
		ps.recircRaised = true
		if len(call.Args) > 0 {
			fl, err := primName(call, 0)
			if err != nil {
				return err
			}
			ps.recircList = fl
		}
		return nil

	case "clone_ingress_pkt_to_egress":
		sess, err := sw.primVal(call, frame, ps, 0, 32)
		if err != nil {
			return err
		}
		ps.cloneI2ERaised = true
		ps.cloneI2ESession = int(sess.Uint64())
		if len(call.Args) > 1 {
			fl, err := primName(call, 1)
			if err != nil {
				return err
			}
			ps.cloneI2EList = fl
		}
		return nil

	case "clone_egress_pkt_to_egress":
		sess, err := sw.primVal(call, frame, ps, 0, 32)
		if err != nil {
			return err
		}
		ps.cloneE2ERaised = true
		ps.cloneE2ESession = int(sess.Uint64())
		if len(call.Args) > 1 {
			fl, err := primName(call, 1)
			if err != nil {
				return err
			}
			ps.cloneE2EList = fl
		}
		return nil

	case "count":
		cname, err := primName(call, 0)
		if err != nil {
			return err
		}
		idx, err := sw.primVal(call, frame, ps, 1, 32)
		if err != nil {
			return err
		}
		return sw.countInc(cname, int(idx.Uint64()), len(ps.data))

	case "execute_meter":
		mname, err := primName(call, 0)
		if err != nil {
			return err
		}
		idx, err := sw.primVal(call, frame, ps, 1, 32)
		if err != nil {
			return err
		}
		dst, w, err := primDstField(call, ps, 2)
		if err != nil {
			return err
		}
		color, err := sw.meterExecute(mname, int(idx.Uint64()), len(ps.data))
		if err != nil {
			return err
		}
		return ps.setField(dst, bitfield.FromUint(w, uint64(color)))

	case "register_read":
		dst, w, err := primDstField(call, ps, 0)
		if err != nil {
			return err
		}
		rname, err := primName(call, 1)
		if err != nil {
			return err
		}
		idx, err := sw.primVal(call, frame, ps, 2, 32)
		if err != nil {
			return err
		}
		v, err := sw.RegisterRead(rname, int(idx.Uint64()))
		if err != nil {
			return err
		}
		return ps.setField(dst, v.Resize(w))

	case "register_write":
		rname, err := primName(call, 0)
		if err != nil {
			return err
		}
		idx, err := sw.primVal(call, frame, ps, 1, 32)
		if err != nil {
			return err
		}
		src, err := sw.primVal(call, frame, ps, 2, 0)
		if err != nil {
			return err
		}
		return sw.RegisterWrite(rname, int(idx.Uint64()), src)

	case "truncate":
		n, err := sw.primVal(call, frame, ps, 0, 32)
		if err != nil {
			return err
		}
		ps.truncateTo = int(n.Uint64())
		return nil
	}
	return fmt.Errorf("primitive %q not implemented", call.Name)
}
