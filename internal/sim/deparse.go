package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/pkt"
)

// deparse serializes the packet: calculated-field updates are applied to the
// parsed representation, then every valid header is emitted in parse-graph
// order (HeaderOrder), followed by the unparsed payload, then truncation.
func (sw *Switch) deparse(ps *packetState) ([]byte, error) {
	if err := sw.updateCalculatedFields(ps); err != nil {
		return nil, err
	}
	// Size the output exactly: valid header bytes + remaining payload.
	size := len(ps.data) - ps.consumed
	for _, instName := range sw.prog.HeaderOrder {
		ii := sw.lay.insts[instName]
		for elem := 0; elem < ii.count; elem++ {
			if ps.headers[ii.headerBase+elem].valid {
				size += ii.width / 8
			}
		}
	}
	out := make([]byte, 0, size)
	for _, instName := range sw.prog.HeaderOrder {
		ii := sw.lay.insts[instName]
		for elem := 0; elem < ii.count; elem++ {
			h := &ps.headers[ii.headerBase+elem]
			if !h.valid {
				continue
			}
			out = h.value.AppendSliceTo(out, 0, ii.width)
		}
	}
	out = append(out, ps.data[ps.consumed:]...)
	if ps.truncateTo > 0 && len(out) > ps.truncateTo {
		out = out[:ps.truncateTo]
	}
	return out, nil
}

// updateCalculatedFields recomputes checksum fields declared with "update".
func (sw *Switch) updateCalculatedFields(ps *packetState) error {
	for _, cf := range sw.prog.AST.CalculatedFields {
		if cf.Update == "" {
			continue
		}
		guard := ast.HeaderRef{Instance: cf.Field.Instance, Index: cf.Field.Index}
		if cf.IfValid != nil {
			guard = *cf.IfValid
		}
		slot, err := ps.resolveHeaderRef(guard)
		if err != nil {
			return err
		}
		if !ps.headers[slot].valid {
			continue
		}
		calc := sw.prog.Calcs[cf.Update]
		// Compute the checksum with the target field zeroed, as checksum
		// algorithms require.
		if err := ps.setField(cf.Field, bitfield.New(16)); err != nil {
			return err
		}
		sum, err := sw.computeCalc(calc, ps)
		if err != nil {
			return err
		}
		if err := ps.setField(cf.Field, sum); err != nil {
			return err
		}
	}
	return nil
}

// computeCalc serializes a field list and applies the checksum algorithm.
func (sw *Switch) computeCalc(calc *ast.FieldListCalc, ps *packetState) (bitfield.Value, error) {
	data, bits, err := sw.serializeFieldList(calc.Input, ps)
	if err != nil {
		return bitfield.Value{}, err
	}
	if bits%8 != 0 {
		return bitfield.Value{}, fmt.Errorf("sim: field list %s width %d is not byte aligned", calc.Input, bits)
	}
	switch calc.Algorithm {
	case ast.AlgoCsum16:
		return bitfield.FromUint(calc.OutputWidth, uint64(pkt.Checksum(data))), nil
	}
	return bitfield.Value{}, fmt.Errorf("sim: unsupported checksum algorithm %q", calc.Algorithm)
}

// serializeFieldList concatenates the field values of a (possibly nested)
// field list into bytes, appending the payload when the list includes the
// payload token. All fields in checksum inputs are byte-aligned in practice
// (the csum16 caller rejects unaligned totals), so each field appends whole
// bytes.
func (sw *Switch) serializeFieldList(listName string, ps *packetState) ([]byte, int, error) {
	var out []byte
	bits := 0
	payload := false
	var walk func(name string) error
	walk = func(name string) error {
		fl, ok := sw.prog.FieldLists[name]
		if !ok {
			return fmt.Errorf("sim: unknown field list %q", name)
		}
		for _, e := range fl.Entries {
			switch {
			case e.Payload:
				payload = true
			case e.SubList != "":
				if err := walk(e.SubList); err != nil {
					return err
				}
			case e.Field != nil:
				loc, err := sw.lay.fieldLoc(*e.Field)
				if err != nil {
					return err
				}
				src, err := ps.fieldSource(loc, e.Field.Index)
				if err != nil {
					return err
				}
				if bits%8 != 0 || loc.width%8 != 0 {
					// Unaligned fields fall back to a value round-trip.
					v := src.Slice(loc.off, loc.width)
					grown := bitfield.New(bits + v.Width())
					grown.Insert(0, bitfield.FromBytes(bits, out))
					grown.Insert(bits, v)
					out = grown.Bytes()
				} else {
					out = src.AppendSliceTo(out, loc.off, loc.width)
				}
				bits += loc.width
			}
		}
		return nil
	}
	if err := walk(listName); err != nil {
		return nil, 0, err
	}
	if payload {
		out = append(out, ps.data[ps.consumed:]...)
	}
	return out, bits, nil
}
