package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/pkt"
)

// deparse serializes the packet: calculated-field updates are applied to the
// parsed representation, then every valid header is emitted in parse-graph
// order (HeaderOrder), followed by the unparsed payload, then truncation.
func (sw *Switch) deparse(ps *packetState) ([]byte, error) {
	if err := sw.updateCalculatedFields(ps); err != nil {
		return nil, err
	}
	var out []byte
	for _, instName := range sw.prog.HeaderOrder {
		inst := sw.prog.Instances[instName]
		n := 1
		if inst.Decl.IsStack() {
			n = inst.Decl.Count
		}
		for elem := 0; elem < n; elem++ {
			h, ok := ps.headers[instKey{name: instName, elem: elem}]
			if !ok || !h.valid {
				continue
			}
			out = append(out, h.value.Bytes()...)
		}
	}
	out = append(out, ps.data[ps.consumed:]...)
	if ps.truncateTo > 0 && len(out) > ps.truncateTo {
		out = out[:ps.truncateTo]
	}
	return out, nil
}

// updateCalculatedFields recomputes checksum fields declared with "update".
func (sw *Switch) updateCalculatedFields(ps *packetState) error {
	for _, cf := range sw.prog.AST.CalculatedFields {
		if cf.Update == "" {
			continue
		}
		if cf.IfValid != nil {
			k, err := ps.resolveHeaderRef(*cf.IfValid)
			if err != nil {
				return err
			}
			if h, ok := ps.headers[k]; !ok || !h.valid {
				continue
			}
		} else {
			// Implicitly guard on the target field's header being valid.
			k, err := ps.resolveHeaderRef(ast.HeaderRef{Instance: cf.Field.Instance, Index: cf.Field.Index})
			if err != nil {
				return err
			}
			if h, ok := ps.headers[k]; !ok || !h.valid {
				continue
			}
		}
		calc := sw.prog.Calcs[cf.Update]
		// Compute the checksum with the target field zeroed, as checksum
		// algorithms require.
		if err := ps.setField(cf.Field, bitfield.New(0).Resize(16)); err != nil {
			return err
		}
		sum, err := sw.computeCalc(calc, ps)
		if err != nil {
			return err
		}
		if err := ps.setField(cf.Field, sum); err != nil {
			return err
		}
	}
	return nil
}

// computeCalc serializes a field list and applies the checksum algorithm.
func (sw *Switch) computeCalc(calc *ast.FieldListCalc, ps *packetState) (bitfield.Value, error) {
	bits, payload, err := sw.serializeFieldList(calc.Input, ps)
	if err != nil {
		return bitfield.Value{}, err
	}
	if bits.Width()%8 != 0 {
		return bitfield.Value{}, fmt.Errorf("sim: field list %s width %d is not byte aligned", calc.Input, bits.Width())
	}
	data := bits.Bytes()
	if payload {
		data = append(data, ps.data[ps.consumed:]...)
	}
	switch calc.Algorithm {
	case ast.AlgoCsum16:
		return bitfield.FromUint(calc.OutputWidth, uint64(pkt.Checksum(data))), nil
	}
	return bitfield.Value{}, fmt.Errorf("sim: unsupported checksum algorithm %q", calc.Algorithm)
}

// serializeFieldList concatenates the field values of a (possibly nested)
// field list and reports whether the list includes the payload token.
func (sw *Switch) serializeFieldList(listName string, ps *packetState) (bitfield.Value, bool, error) {
	out := bitfield.New(0)
	payload := false
	var walk func(name string) error
	walk = func(name string) error {
		fl, ok := sw.prog.FieldLists[name]
		if !ok {
			return fmt.Errorf("sim: unknown field list %q", name)
		}
		for _, e := range fl.Entries {
			switch {
			case e.Payload:
				payload = true
			case e.SubList != "":
				if err := walk(e.SubList); err != nil {
					return err
				}
			case e.Field != nil:
				v, err := ps.getField(*e.Field)
				if err != nil {
					return err
				}
				grown := bitfield.New(out.Width() + v.Width())
				grown.Insert(0, out)
				grown.Insert(out.Width(), v)
				out = grown
			}
		}
		return nil
	}
	if err := walk(listName); err != nil {
		return bitfield.Value{}, false, err
	}
	return out, payload, nil
}
