package sim

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// This file is the switch's metrics registry. Everything incremented on the
// packet path is a plain atomic counter owned by a structure that exists
// before the first packet arrives (tables, the action list, fixed histogram
// buckets), so recording a sample never allocates and never takes a lock —
// the same constraint the pooled packet state obeys (DESIGN.md §7, §8).

// latencyBuckets is the number of fixed histogram buckets. Bucket i counts
// Process calls with latency < 2^(minLatShift+i) ns; the last bucket is the
// +Inf overflow. With minLatShift 7 the bounds run 128ns .. ~17s, which spans
// everything from a native exact-match hit to a pathological recirculation
// storm.
const (
	latencyBuckets = 28
	minLatShift    = 7
)

// tableMetrics is the per-table counter block, embedded in table.
type tableMetrics struct {
	hits     atomic.Int64
	misses   atomic.Int64
	defaults atomic.Int64 // misses on which a configured default action ran
}

// switchMetrics is the registry half living on the Switch.
type switchMetrics struct {
	// passes counts pipeline passes by bmv2 instance type.
	passNormal      atomic.Int64
	passResubmit    atomic.Int64
	passRecirculate atomic.Int64
	passCloneI2E    atomic.Int64
	passCloneE2E    atomic.Int64

	// actionCounts is indexed by the dense action index assigned in New;
	// actionIndex maps names to it. Both are immutable after New.
	actionCounts []atomic.Int64
	actionIndex  map[string]int

	latCounts [latencyBuckets]atomic.Int64
	latSumNs  atomic.Int64
	latCount  atomic.Int64

	// Fault containment counters (fault.go): packets failed by kind, plus
	// passes dropped by quarantine enforcement.
	faultPanic     atomic.Int64
	faultPassBound atomic.Int64
	faultParse     atomic.Int64
	faultPipeline  atomic.Int64
	faultDeparse   atomic.Int64
	quarDrops      atomic.Int64
}

// recordFault counts one packet fault by kind.
func (m *switchMetrics) recordFault(kind FaultKind) {
	switch kind {
	case FaultPanic:
		m.faultPanic.Add(1)
	case FaultPassBound:
		m.faultPassBound.Add(1)
	case FaultParse:
		m.faultParse.Add(1)
	case FaultDeparse:
		m.faultDeparse.Add(1)
	default:
		m.faultPipeline.Add(1)
	}
}

func (m *switchMetrics) init(actionNames []string) {
	m.actionCounts = make([]atomic.Int64, len(actionNames))
	m.actionIndex = make(map[string]int, len(actionNames))
	for i, name := range actionNames {
		m.actionIndex[name] = i
	}
}

// recordLatency files one Process duration into the histogram.
func (m *switchMetrics) recordLatency(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	// bits.Len64(ns>>minLatShift) is 0 for ns < 2^minLatShift, else the
	// position of the highest set bit above the shift.
	i := bits.Len64(ns >> minLatShift)
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	m.latCounts[i].Add(1)
	m.latSumNs.Add(int64(ns))
	m.latCount.Add(1)
}

// recordPass counts one pipeline pass by instance type.
func (m *switchMetrics) recordPass(instanceType uint64) {
	switch instanceType {
	case instResubmit:
		m.passResubmit.Add(1)
	case instRecirculate:
		m.passRecirculate.Add(1)
	case instCloneI2E:
		m.passCloneI2E.Add(1)
	case instCloneE2E:
		m.passCloneE2E.Add(1)
	default:
		m.passNormal.Add(1)
	}
}

// --- snapshot types ---

// TableCounters is one table's lifetime match statistics.
type TableCounters struct {
	Hits     int64 // lookups that matched an installed entry
	Misses   int64 // lookups that matched nothing
	Defaults int64 // misses on which a configured default action ran
	Entries  int   // currently installed entries
}

// FaultCounters aggregates the fault-containment counters: packets failed by
// fault kind plus pipeline passes dropped by quarantine enforcement.
type FaultCounters struct {
	Panic           int64
	PassBound       int64
	Parse           int64
	Pipeline        int64
	Deparse         int64
	QuarantineDrops int64
}

// ByKind returns the per-kind fault counts keyed by FaultKind string (the
// exposition shape for Prometheus labels).
func (f FaultCounters) ByKind() map[FaultKind]int64 {
	return map[FaultKind]int64{
		FaultPanic:     f.Panic,
		FaultPassBound: f.PassBound,
		FaultParse:     f.Parse,
		FaultPipeline:  f.Pipeline,
		FaultDeparse:   f.Deparse,
	}
}

// Total is the lifetime packet-fault count across kinds.
func (f FaultCounters) Total() int64 {
	return f.Panic + f.PassBound + f.Parse + f.Pipeline + f.Deparse
}

// PassCounters splits pipeline passes by bmv2 instance type.
type PassCounters struct {
	Normal      int64
	Resubmit    int64
	Recirculate int64
	CloneI2E    int64
	CloneE2E    int64
}

// LatencyHistogram is a fixed-bucket histogram of Process wall time.
// Counts[i] is the number of observations with duration < Bounds[i]; the
// last bucket is unbounded (Bounds holds latencyBuckets-1 finite bounds).
type LatencyHistogram struct {
	Bounds []time.Duration
	Counts []int64
	Count  int64
	SumNs  int64
}

// Sub returns the histogram of observations recorded after the prev
// snapshot was taken — counters only grow, so a plain bucket-wise
// subtraction isolates one measurement interval (e.g. a benchmark loop).
func (h LatencyHistogram) Sub(prev LatencyHistogram) LatencyHistogram {
	d := LatencyHistogram{
		Bounds: h.Bounds,
		Counts: make([]int64, len(h.Counts)),
		Count:  h.Count - prev.Count,
		SumNs:  h.SumNs - prev.SumNs,
	}
	for i := range h.Counts {
		d.Counts[i] = h.Counts[i]
		if i < len(prev.Counts) {
			d.Counts[i] -= prev.Counts[i]
		}
	}
	return d
}

// Quantile estimates the q-th latency quantile (0 < q <= 1) by linear
// interpolation within the winning bucket, the way Prometheus's
// histogram_quantile does. Returns 0 when the histogram is empty.
func (h LatencyHistogram) Quantile(q float64) time.Duration {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := 2 * lo
		if i < len(h.Bounds) {
			hi = h.Bounds[i]
		}
		return lo + time.Duration(float64(hi-lo)*(rank-prev)/float64(c))
	}
	return h.Bounds[len(h.Bounds)-1]
}

// LatencyBucketBounds returns the finite upper bounds of the latency
// histogram, ascending.
func LatencyBucketBounds() []time.Duration {
	out := make([]time.Duration, latencyBuckets-1)
	for i := range out {
		out[i] = time.Duration(1) << (minLatShift + i)
	}
	return out
}

// MetricsSnapshot is a point-in-time copy of every registry counter.
type MetricsSnapshot struct {
	Tables  map[string]TableCounters
	Actions map[string]int64 // action name -> invocation count
	Passes  PassCounters
	Faults  FaultCounters
	Latency LatencyHistogram
}

// Metrics snapshots the registry. Counters are read individually with atomic
// loads; a snapshot taken while packets are in flight is internally
// consistent per counter, not across counters — the standard scrape
// semantics of a live system.
func (sw *Switch) Metrics() MetricsSnapshot {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	snap := MetricsSnapshot{
		Tables:  make(map[string]TableCounters, len(sw.tables)),
		Actions: make(map[string]int64, len(sw.metrics.actionIndex)),
		Passes: PassCounters{
			Normal:      sw.metrics.passNormal.Load(),
			Resubmit:    sw.metrics.passResubmit.Load(),
			Recirculate: sw.metrics.passRecirculate.Load(),
			CloneI2E:    sw.metrics.passCloneI2E.Load(),
			CloneE2E:    sw.metrics.passCloneE2E.Load(),
		},
		Faults: FaultCounters{
			Panic:           sw.metrics.faultPanic.Load(),
			PassBound:       sw.metrics.faultPassBound.Load(),
			Parse:           sw.metrics.faultParse.Load(),
			Pipeline:        sw.metrics.faultPipeline.Load(),
			Deparse:         sw.metrics.faultDeparse.Load(),
			QuarantineDrops: sw.metrics.quarDrops.Load(),
		},
	}
	for name, t := range sw.tables {
		snap.Tables[name] = TableCounters{
			Hits:     t.metrics.hits.Load(),
			Misses:   t.metrics.misses.Load(),
			Defaults: t.metrics.defaults.Load(),
			Entries:  len(t.entries),
		}
	}
	for name, i := range sw.metrics.actionIndex {
		snap.Actions[name] = sw.metrics.actionCounts[i].Load()
	}
	snap.Latency.Bounds = LatencyBucketBounds()
	snap.Latency.Counts = make([]int64, latencyBuckets)
	for i := range sw.metrics.latCounts {
		snap.Latency.Counts[i] = sw.metrics.latCounts[i].Load()
	}
	snap.Latency.Count = sw.metrics.latCount.Load()
	snap.Latency.SumNs = sw.metrics.latSumNs.Load()
	return snap
}

// TableMetrics returns one table's counters.
func (sw *Switch) TableMetrics(name string) (TableCounters, error) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	t, err := sw.table(name)
	if err != nil {
		return TableCounters{}, err
	}
	return TableCounters{
		Hits:     t.metrics.hits.Load(),
		Misses:   t.metrics.misses.Load(),
		Defaults: t.metrics.defaults.Load(),
		Entries:  len(t.entries),
	}, nil
}

// EntryHits returns the number of lookups a specific installed entry has won.
// This is what lets a hypervisor attribute a shared table's traffic back to
// whoever installed each row (the DPMU's per-vdev stats are built on it).
func (sw *Switch) EntryHits(tableName string, handle int) (int64, error) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	t, err := sw.table(tableName)
	if err != nil {
		return 0, err
	}
	for _, e := range t.entries {
		if e.Handle == handle {
			return e.hits.Load(), nil
		}
	}
	return 0, errNoEntry(tableName, handle)
}

// sortedNames returns map keys in sorted order (shared by exposition code).
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
