package sim

import (
	"sort"

	"hyper4/internal/bitfield"
)

// This file is the switch half of the fused fast path (DESIGN.md §13).
// A FastHandler — in practice internal/core/fuse's engine — is installed
// with SetFastPath and consulted at the top of process() with a single
// atomic pointer load, the same idiom the quarantine table uses. The
// handler either fully processes the packet (returning its outputs and
// pass accounting) or declines, in which case the interpreted pipeline
// runs exactly as before. Nothing below this hook changes, so a handler
// that always declines is behaviorally invisible.

// FastResult is a fast-path handler's account of one fully processed
// packet. Outputs carries the emitted packets (empty means dropped);
// Resubmits, Recirculates and Clones are the number of resubmission,
// recirculation and egress-to-egress clone passes the packet incurred
// beyond its first pass, so the switch can keep its pass-type metrics
// conserved with the interpreted path even when the handler walks a
// composed chain or expands a multicast fan-out.
type FastResult struct {
	Outputs      []Output
	Resubmits    int
	Recirculates int
	Clones       int
}

// FastHandler processes packets without the interpreted pipeline. RunFast
// is called with the switch's control-plane read lock held: table state
// cannot change underneath it, and it must not call any Switch method that
// takes mu (the Fast* helpers and Generation are safe). Returning ok=false
// declines the packet — for any reason, at any point before side effects —
// and hands it to the interpreter untouched.
type FastHandler interface {
	RunFast(sw *Switch, data []byte, port int) (FastResult, bool)
}

// fastBox wraps the handler interface so it can live in an atomic.Pointer.
type fastBox struct{ h FastHandler }

// SetFastPath installs (or, with nil, removes) the fast-path handler.
// Safe to call concurrently with Process.
func (sw *Switch) SetFastPath(h FastHandler) {
	if h == nil {
		sw.fast.Store(nil)
		return
	}
	sw.fast.Store(&fastBox{h: h})
}

// FastPath returns the installed handler, or nil.
func (sw *Switch) FastPath() FastHandler {
	if b := sw.fast.Load(); b != nil {
		return b.h
	}
	return nil
}

// Generation returns the control-plane write generation: a counter bumped
// by every table mutation (add, delete, modify, default, clear) under the
// write lock. A compiled plan records the generation it was built against
// and declines any packet once the live value differs, so a stale plan can
// never act on state it no longer reflects.
func (sw *Switch) Generation() uint64 { return sw.gen.Load() }

// bumpGen marks a control-plane mutation. Callers hold mu's write side.
func (sw *Switch) bumpGen() { sw.gen.Add(1) }

// runFast consults the fast path for one packet. Called by process() with
// the read lock held, before any interpreted work. A panic inside the
// handler is swallowed and treated as a decline: the interpreter reruns
// the packet from scratch (the handler is pure until its commit phase, so
// no partial effects can have leaked).
func (sw *Switch) runFast(data []byte, port int) (res FastResult, ok bool) {
	b := sw.fast.Load()
	if b == nil {
		return FastResult{}, false
	}
	defer func() {
		if r := recover(); r != nil {
			res, ok = FastResult{}, false
		}
	}()
	return b.h.RunFast(sw, data, port)
}

// --- helpers a fast-path handler may call during its commit phase ---
// These take only the fine-grained extern locks (never mu), matching the
// lock order Process established: mu's read side is held outside, leaf
// locks inside.

// FastCounterInc bumps a counter cell on behalf of a fast-path handler,
// exactly as the interpreted count() primitive would.
func (sw *Switch) FastCounterInc(name string, idx, packetBytes int) error {
	return sw.countInc(name, idx, packetBytes)
}

// FastMeterExecute records meter usage and returns the color on behalf of
// a fast-path handler, exactly as execute_meter would.
func (sw *Switch) FastMeterExecute(name string, idx, packetBytes int) (int, error) {
	return sw.meterExecute(name, idx, packetBytes)
}

// MirrorPort reports the egress port a clone session maps to, and whether
// the session is configured at all. SetMirror bumps the write generation,
// so a plan compiled against the current mirror table is staleness-safe.
func (sw *Switch) MirrorPort(session int) (int, bool) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	p, ok := sw.mirrors[session]
	return p, ok
}

// RecordHit bumps the entry's hit counter. Fast-path handlers call this in
// their commit phase for every installed entry the fused walk matched, so
// EntryHits — and everything built on it, like the DPMU's per-vdev stats —
// stays conserved between the fused and interpreted paths.
func (e *Entry) RecordHit() { e.hits.Add(1) }

// Hits returns the entry's lifetime hit count.
func (e *Entry) Hits() int64 { return e.hits.Load() }

// --- plan-construction introspection ---

// TableEntriesOrdered returns the installed entries of a table in match
// precedence order (Priority ascending, longest summed prefix first, then
// insertion order) — the order lookup consults them. The slice is a copy;
// the *Entry pointers are the live installed entries, valid until the next
// mutation of the table (watch Generation to detect that).
func (sw *Switch) TableEntriesOrdered(tableName string) ([]*Entry, error) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	t, err := sw.table(tableName)
	if err != nil {
		return nil, err
	}
	out := make([]*Entry, len(t.entries))
	copy(out, t.entries)
	return out, nil
}

// TableDefault returns a table's configured default (miss) action and its
// arguments ("" when none is configured).
func (sw *Switch) TableDefault(tableName string) (string, []bitfield.Value, error) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	t, err := sw.table(tableName)
	if err != nil {
		return "", nil, err
	}
	return t.defaultAction, t.defaultArgs, nil
}

// EntryHandlesByAction returns the handles of entries whose action matches,
// sorted — a convenience for lint-style introspection.
func (sw *Switch) EntryHandlesByAction(tableName, action string) ([]int, error) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	t, err := sw.table(tableName)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range t.entries {
		if e.Action == action {
			out = append(out, e.Handle)
		}
	}
	sort.Ints(out)
	return out, nil
}
