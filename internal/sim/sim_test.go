package sim

import (
	"bytes"
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
	"hyper4/internal/pkt"
)

func load(t *testing.T, src string) *Switch {
	t.Helper()
	prog, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hlir.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New("s1", h)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

const l2Src = `
header_type ethernet_t { fields { dstAddr : 48; srcAddr : 48; etherType : 16; } }
header ethernet_t ethernet;
parser start { extract(ethernet); return ingress; }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
table dmac { reads { ethernet.dstAddr : exact; } actions { forward; _drop; } }
control ingress { apply(dmac); }
`

func ethFrame(dst, src string, et uint16, payload string) []byte {
	return pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC(dst), Src: pkt.MustMAC(src), EtherType: et},
		pkt.Payload(payload),
	)
}

func TestExactForward(t *testing.T) {
	sw := load(t, l2Src)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	if _, err := sw.TableAdd("dmac", "forward",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, Args(9, 3), 0); err != nil {
		t.Fatal(err)
	}
	frame := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "hi")
	out, tr, err := sw.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 3 {
		t.Fatalf("outputs = %+v", out)
	}
	if !bytes.Equal(out[0].Data, frame) {
		t.Errorf("frame modified: %x vs %x", out[0].Data, frame)
	}
	if tr.Applies != 1 || tr.Hits != 1 {
		t.Errorf("trace: %+v", tr)
	}
}

func TestMissDefaultsToDrop(t *testing.T) {
	sw := load(t, l2Src)
	out, tr, err := sw.Process(ethFrame("00:00:00:00:00:09", "00:00:00:00:00:01", 0x1234, ""), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("miss with no default should drop, got %+v", out)
	}
	if tr.Misses != 1 {
		t.Errorf("trace: %+v", tr)
	}
}

func TestDefaultAction(t *testing.T) {
	sw := load(t, l2Src)
	if err := sw.TableSetDefault("dmac", "forward", Args(9, 7)); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process(ethFrame("00:00:00:00:00:09", "00:00:00:00:00:01", 0, ""), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 7 {
		t.Fatalf("default action should forward to 7: %+v", out)
	}
}

func TestDropAction(t *testing.T) {
	sw := load(t, l2Src)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	if _, err := sw.TableAdd("dmac", "_drop",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, nil, 0); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process(ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0, ""), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("drop action should drop: %+v", out)
	}
}

func TestTableRuntimeErrors(t *testing.T) {
	sw := load(t, l2Src)
	if _, err := sw.TableAdd("ghost", "forward", nil, nil, 0); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := sw.TableAdd("dmac", "ghost", []MatchParam{ExactUint(48, 1)}, nil, 0); err == nil {
		t.Error("unknown action should error")
	}
	if _, err := sw.TableAdd("dmac", "forward", []MatchParam{}, Args(9, 1), 0); err == nil {
		t.Error("wrong param count should error")
	}
	if _, err := sw.TableAdd("dmac", "forward", []MatchParam{ExactUint(16, 1)}, Args(9, 1), 0); err == nil {
		t.Error("wrong key width should error")
	}
	if _, err := sw.TableAdd("dmac", "forward", []MatchParam{TernaryUint(48, 1, 1)}, Args(9, 1), 0); err == nil {
		t.Error("wrong match kind should error")
	}
	if _, err := sw.TableAdd("dmac", "forward", []MatchParam{ExactUint(48, 1)}, nil, 0); err == nil {
		t.Error("wrong arg count should error")
	}
}

func TestTableDeleteModify(t *testing.T) {
	sw := load(t, l2Src)
	h, err := sw.TableAdd("dmac", "forward", []MatchParam{ExactUint(48, 2)}, Args(9, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0, "")
	if err := sw.TableModify("dmac", h, "forward", Args(9, 5)); err != nil {
		t.Fatal(err)
	}
	out, _, _ := sw.Process(frame, 1)
	if len(out) != 1 || out[0].Port != 5 {
		t.Fatalf("after modify: %+v", out)
	}
	if err := sw.TableDelete("dmac", h); err != nil {
		t.Fatal(err)
	}
	out, _, _ = sw.Process(frame, 1)
	if len(out) != 0 {
		t.Fatalf("after delete: %+v", out)
	}
	if err := sw.TableDelete("dmac", h); err == nil {
		t.Error("double delete should error")
	}
	hs, _ := sw.TableEntries("dmac")
	if len(hs) != 0 {
		t.Errorf("entries: %v", hs)
	}
}

const ternarySrc = `
header_type h_t { fields { a : 16; } }
header h_t h;
parser start { extract(h); return ingress; }
action out(port) { modify_field(standard_metadata.egress_spec, port); }
table t { reads { h.a : ternary; } actions { out; } }
control ingress { apply(t); }
`

func TestTernaryPriority(t *testing.T) {
	sw := load(t, ternarySrc)
	// Catch-all at low precedence (high number), specific at high precedence.
	if _, err := sw.TableAdd("t", "out", []MatchParam{TernaryUint(16, 0, 0)}, Args(9, 1), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("t", "out", []MatchParam{TernaryUint(16, 0xab00, 0xff00)}, Args(9, 2), 1); err != nil {
		t.Fatal(err)
	}
	out, tr, err := sw.Process([]byte{0xab, 0xcd}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Port != 2 {
		t.Fatalf("specific entry should win: %+v", out)
	}
	if tr.TernaryMatches != 1 || tr.TernaryBitsTotal != 16 || tr.TernaryBitsActive != 8 {
		t.Errorf("ternary trace: %+v", tr)
	}
	out, _, err = sw.Process([]byte{0x11, 0x22}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Port != 1 {
		t.Fatalf("catch-all should match: %+v", out)
	}
}

const lpmSrc = `
header_type h_t { fields { ip : 32; } }
header h_t h;
parser start { extract(h); return ingress; }
action out(port) { modify_field(standard_metadata.egress_spec, port); }
table t { reads { h.ip : lpm; } actions { out; } }
control ingress { apply(t); }
`

func TestLPMLongestWins(t *testing.T) {
	sw := load(t, lpmSrc)
	if _, err := sw.TableAdd("t", "out", []MatchParam{LPM(bitfield.FromUint(32, 0x0a000000), 8)}, Args(9, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("t", "out", []MatchParam{LPM(bitfield.FromUint(32, 0x0a000100), 24)}, Args(9, 2), 0); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{10, 0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Port != 2 {
		t.Fatalf("/24 should win: %+v", out)
	}
	out, _, _ = sw.Process([]byte{10, 9, 9, 9}, 0)
	if out[0].Port != 1 {
		t.Fatalf("/8 should match: %+v", out)
	}
	out, _, _ = sw.Process([]byte{11, 0, 0, 1}, 0)
	if len(out) != 0 {
		t.Fatalf("no prefix should drop: %+v", out)
	}
}

const rangeValidSrc = `
header_type a_t { fields { x : 16; } }
header a_t a;
header a_t b;
parser start {
    extract(a);
    return select(latest.x) {
        1 : parse_b;
        default : ingress;
    }
}
parser parse_b { extract(b); return ingress; }
action out(port) { modify_field(standard_metadata.egress_spec, port); }
table t { reads { valid(b) : exact; a.x : range; } actions { out; } }
control ingress { apply(t); }
`

func TestRangeAndValidMatch(t *testing.T) {
	sw := load(t, rangeValidSrc)
	if _, err := sw.TableAdd("t", "out",
		[]MatchParam{Valid(true), Range(bitfield.FromUint(16, 0), bitfield.FromUint(16, 10))}, Args(9, 4), 0); err != nil {
		t.Fatal(err)
	}
	// a.x = 1 → b extracted and in range → match.
	out, _, err := sw.Process([]byte{0, 1, 0, 99}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 4 {
		t.Fatalf("valid+range should match: %+v", out)
	}
	// a.x = 5: in range but b not valid → miss.
	out, _, _ = sw.Process([]byte{0, 5, 0, 0}, 0)
	if len(out) != 0 {
		t.Fatalf("invalid b should miss: %+v", out)
	}
	// a.x = 1 but wait, range is on a.x: value 1 is within [0,10]... craft
	// a.x = 1 with second short; covered above. Now out-of-range: a.x=1 only
	// triggers extraction; use an entry bound tighter to check the range arm.
	if err := sw.TableClear("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("t", "out",
		[]MatchParam{Valid(true), Range(bitfield.FromUint(16, 5), bitfield.FromUint(16, 10))}, Args(9, 4), 0); err != nil {
		t.Fatal(err)
	}
	out, _, _ = sw.Process([]byte{0, 1, 0, 0}, 0)
	if len(out) != 0 {
		t.Fatalf("a.x=1 outside [5,10] should miss: %+v", out)
	}
}

const primSrc = `
header_type h_t { fields { a : 16; b : 16; c : 16; } }
header h_t h;
metadata h_t m;
parser start { extract(h); return ingress; }
action math() {
    add_to_field(h.a, 1);
    subtract_from_field(h.b, 2);
    bit_and(m.a, h.a, h.b);
    bit_or(m.b, h.a, h.b);
    bit_xor(m.c, h.a, h.b);
    add(h.c, m.a, m.b);
    shift_left(m.a, m.a, 4);
    shift_right(m.b, m.b, 4);
    modify_field(h.a, m.c);
    subtract(h.b, m.b, m.a);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { math; } }
control ingress { apply(t); }
`

func TestArithmeticPrimitives(t *testing.T) {
	sw := load(t, primSrc)
	if err := sw.TableSetDefault("t", "math", nil); err != nil {
		t.Fatal(err)
	}
	// h.a=0x0010, h.b=0x0022, h.c=0
	out, tr, err := sw.Process([]byte{0x00, 0x10, 0x00, 0x22, 0x00, 0x00}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatal("should emit")
	}
	// After add/sub: a=0x11, b=0x20. and=0x00, or=0x31, xor=0x31.
	// c = 0x00 + 0x31 = 0x31. m.a=0x00<<4=0, m.b=0x31>>4=0x03.
	// h.a = xor = 0x31. h.b = m.b - m.a = 3.
	want := []byte{0x00, 0x31, 0x00, 0x03, 0x00, 0x31}
	if !bytes.Equal(out[0].Data, want) {
		t.Errorf("data = %x, want %x", out[0].Data, want)
	}
	if tr.Primitives != 11 {
		t.Errorf("primitives = %d", tr.Primitives)
	}
}

const headerOpsSrc = `
header_type o_t { fields { v : 8; } }
header o_t h1;
header o_t h2;
parser start {
    extract(h1);
    return select(latest.v) {
        2 : parse_h2;
        default : ingress;
    }
}
parser parse_h2 { extract(h2); return ingress; }
action grow() {
    add_header(h2);
    modify_field(h2.v, 0xee);
    modify_field(standard_metadata.egress_spec, 1);
}
action shrink() {
    remove_header(h2);
    modify_field(standard_metadata.egress_spec, 1);
}
action dup() {
    add_header(h2);
    copy_header(h2, h1);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { reads { h1.v : exact; } actions { grow; shrink; dup; } }
control ingress { apply(t); }
`

func TestAddRemoveCopyHeader(t *testing.T) {
	sw := load(t, headerOpsSrc)
	mustAdd := func(v uint64, action string) {
		t.Helper()
		if _, err := sw.TableAdd("t", action, []MatchParam{ExactUint(8, v)}, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(1, "grow")
	mustAdd(2, "shrink")
	mustAdd(3, "dup")

	// grow: h1=01 → emit 01 ee + payload.
	out, _, err := sw.Process([]byte{0x01, 0x99}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[0].Data, []byte{0x01, 0xee, 0x99}) {
		t.Errorf("grow = %x", out[0].Data)
	}
	// shrink: h1=02 causes h2 extraction then removal → 02 + payload.
	out, _, err = sw.Process([]byte{0x02, 0x55, 0x77}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[0].Data, []byte{0x02, 0x77}) {
		t.Errorf("shrink = %x", out[0].Data)
	}
	// dup: h1=03 → h2 copied from h1 → 03 03.
	out, _, err = sw.Process([]byte{0x03}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[0].Data, []byte{0x03, 0x03}) {
		t.Errorf("dup = %x", out[0].Data)
	}
}

const resubmitSrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
header_type m_t { fields { round : 8; } }
metadata m_t m;
field_list keep { m.round; }
action again() { add_to_field(m.round, 1); resubmit(keep); }
action out() { modify_field(standard_metadata.egress_spec, 2); }
parser start { extract(h); return ingress; }
table t { reads { m.round : exact; } actions { again; out; } }
control ingress { apply(t); }
`

func TestResubmitPreservesFieldList(t *testing.T) {
	sw := load(t, resubmitSrc)
	if _, err := sw.TableAdd("t", "again", []MatchParam{ExactUint(8, 0)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("t", "again", []MatchParam{ExactUint(8, 1)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("t", "out", []MatchParam{ExactUint(8, 2)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	out, tr, err := sw.Process([]byte{0xaa}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("outputs: %+v", out)
	}
	if tr.Resubmits != 2 || tr.Passes != 3 {
		t.Errorf("trace: resubmits=%d passes=%d", tr.Resubmits, tr.Passes)
	}
	if !bytes.Equal(out[0].Data, []byte{0xaa}) {
		t.Errorf("resubmit should reprocess the original bytes: %x", out[0].Data)
	}
}

const recircSrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
header_type m_t { fields { hops : 8; } }
metadata m_t m;
field_list keep { m.hops; }
action bump() {
    add_to_field(h.v, 1);
    modify_field(standard_metadata.egress_spec, 5);
}
table t { actions { bump; } }
action loop() { add_to_field(m.hops, 1); recirculate(keep); }
action pass() { no_op(); }
table e { reads { m.hops : exact; } actions { loop; pass; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
control egress { apply(e); }
`

func TestRecirculateCarriesModifiedPacket(t *testing.T) {
	sw := load(t, recircSrc)
	if err := sw.TableSetDefault("t", "bump", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("e", "loop", []MatchParam{ExactUint(8, 0)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("e", "pass", []MatchParam{ExactUint(8, 1)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	out, tr, err := sw.Process([]byte{0x10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 5 {
		t.Fatalf("outputs: %+v", out)
	}
	// Recirculated once: ingress bump ran twice on the evolving packet.
	if !bytes.Equal(out[0].Data, []byte{0x12}) {
		t.Errorf("data = %x, want 12", out[0].Data)
	}
	if tr.Recirculates != 1 {
		t.Errorf("recirculates = %d", tr.Recirculates)
	}
}

const cloneSrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action fwd_and_clone() {
    modify_field(standard_metadata.egress_spec, 1);
    clone_ingress_pkt_to_egress(7);
}
table t { actions { fwd_and_clone; } }
control ingress { apply(t); }
`

func TestCloneI2E(t *testing.T) {
	sw := load(t, cloneSrc)
	sw.SetMirror(7, 9)
	if err := sw.TableSetDefault("t", "fwd_and_clone", nil); err != nil {
		t.Fatal(err)
	}
	out, tr, err := sw.Process([]byte{0x42}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 outputs (original + clone): %+v", out)
	}
	ports := map[int]bool{}
	for _, o := range out {
		ports[o.Port] = true
		if !bytes.Equal(o.Data, []byte{0x42}) {
			t.Errorf("clone data = %x", o.Data)
		}
	}
	if !ports[1] || !ports[9] {
		t.Errorf("ports = %v", ports)
	}
	if tr.ClonesI2E != 1 {
		t.Errorf("clones = %d", tr.ClonesI2E)
	}
}

func TestCloneWithoutMirrorIsNoOp(t *testing.T) {
	sw := load(t, cloneSrc)
	if err := sw.TableSetDefault("t", "fwd_and_clone", nil); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{0x42}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("unconfigured session should only emit original: %+v", out)
	}
}

const statefulSrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
register seen { width : 16; instance_count : 4; }
counter hits { type : packets; instance_count : 4; }
meter rate { type : packets; instance_count : 2; }
header_type m_t { fields { color : 8; prev : 16; } }
metadata m_t m;
action track(idx) {
    register_read(m.prev, seen, idx);
    add_to_field(m.prev, 1);
    register_write(seen, idx, m.prev);
    count(hits, idx);
    execute_meter(rate, 0, m.color);
    modify_field(h.v, m.color);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { track; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
`

func TestStatefulObjects(t *testing.T) {
	sw := load(t, statefulSrc)
	if err := sw.TableSetDefault("t", "track", Args(32, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sw.MeterSetRates("rate", 0, 2, 4); err != nil {
		t.Fatal(err)
	}
	var lastColor byte
	for i := 0; i < 5; i++ {
		out, _, err := sw.Process([]byte{0}, 0)
		if err != nil {
			t.Fatal(err)
		}
		lastColor = out[0].Data[0]
	}
	v, err := sw.RegisterRead("seen", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint64() != 5 {
		t.Errorf("register = %d, want 5", v.Uint64())
	}
	pkts, _, err := sw.CounterRead("hits", 2)
	if err != nil {
		t.Fatal(err)
	}
	if pkts != 5 {
		t.Errorf("counter = %d, want 5", pkts)
	}
	if lastColor != MeterRed {
		t.Errorf("5th packet color = %d, want red (%d)", lastColor, MeterRed)
	}
	if err := sw.MeterTick("rate"); err != nil {
		t.Fatal(err)
	}
	out, _, _ := sw.Process([]byte{0}, 0)
	if out[0].Data[0] != MeterGreen {
		t.Errorf("after tick color = %d, want green", out[0].Data[0])
	}
	// Out-of-range and unknown-name errors.
	if _, err := sw.RegisterRead("seen", 99); err == nil {
		t.Error("register index out of range should error")
	}
	if _, err := sw.RegisterRead("ghost", 0); err == nil {
		t.Error("unknown register should error")
	}
	if _, _, err := sw.CounterRead("ghost", 0); err == nil {
		t.Error("unknown counter should error")
	}
	if err := sw.CounterReset("hits", 2); err != nil {
		t.Fatal(err)
	}
	pkts, _, _ = sw.CounterRead("hits", 2)
	if pkts != 0 {
		t.Errorf("after reset = %d", pkts)
	}
}

const checksumSrc = `
header_type ipv4_t {
    fields {
        verIhl : 8; tos : 8; totalLen : 16;
        id : 16; flagsFrag : 16;
        ttl : 8; protocol : 8; hdrChecksum : 16;
        srcAddr : 32; dstAddr : 32;
    }
}
header ipv4_t ipv4;
field_list ipv4_fl {
    ipv4.verIhl; ipv4.tos; ipv4.totalLen;
    ipv4.id; ipv4.flagsFrag;
    ipv4.ttl; ipv4.protocol;
    ipv4.srcAddr; ipv4.dstAddr;
}
field_list_calculation ipv4_csum {
    input { ipv4_fl; }
    algorithm : csum16;
    output_width : 16;
}
calculated_field ipv4.hdrChecksum {
    update ipv4_csum if (valid(ipv4));
}
parser start { extract(ipv4); return ingress; }
action route() {
    add_to_field(ipv4.ttl, 0xff);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { route; } }
control ingress { apply(t); }
`

func TestCalculatedFieldChecksum(t *testing.T) {
	sw := load(t, checksumSrc)
	if err := sw.TableSetDefault("t", "route", nil); err != nil {
		t.Fatal(err)
	}
	ip := &pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, TotalLen: 20,
		Src: pkt.MustIP4("10.0.0.1"), Dst: pkt.MustIP4("10.0.0.2")}
	in := ip.Serialize(nil)
	out, _, err := sw.Process(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pkt.DecodeIPv4(out[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != 63 {
		t.Errorf("ttl = %d, want 63", got.TTL)
	}
	// The recomputed checksum over the emitted header must verify.
	if pkt.Checksum(out[0].Data[:20]) != 0 {
		t.Errorf("checksum does not verify: %x", out[0].Data)
	}
	if got.Checksum == 0 {
		t.Error("checksum not written")
	}
}

const truncateSrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action cut() { truncate(2); modify_field(standard_metadata.egress_spec, 1); }
table t { actions { cut; } }
control ingress { apply(t); }
`

func TestTruncate(t *testing.T) {
	sw := load(t, truncateSrc)
	if err := sw.TableSetDefault("t", "cut", nil); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{1, 2, 3, 4, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[0].Data, []byte{1, 2}) {
		t.Errorf("truncated = %x", out[0].Data)
	}
}

const loopSrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
action again() { resubmit(); }
table t { actions { again; } }
parser start { extract(h); return ingress; }
control ingress { apply(t); }
`

func TestInfiniteLoopIsBounded(t *testing.T) {
	sw := load(t, loopSrc)
	if err := sw.TableSetDefault("t", "again", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.Process([]byte{1}, 0); err == nil {
		t.Fatal("unbounded resubmit loop should error")
	}
}

const stackSrc = `
header_type u_t { fields { b : 8; } }
header u_t ext[4];
header_type m_t { fields { n : 8; } }
metadata m_t m;
parser start {
    extract(ext[next]);
    extract(ext[next]);
    return ingress;
}
action gather() {
    modify_field(m.n, ext[1].b);
    modify_field(ext[0].b, m.n);
    modify_field(standard_metadata.egress_spec, 1);
}
table t { actions { gather; } }
control ingress { apply(t); }
`

func TestHeaderStackNextAndDeparse(t *testing.T) {
	sw := load(t, stackSrc)
	if err := sw.TableSetDefault("t", "gather", nil); err != nil {
		t.Fatal(err)
	}
	out, tr, err := sw.Process([]byte{0xaa, 0xbb, 0xcc}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// ext[0]=aa, ext[1]=bb → ext[0] overwritten with bb; payload cc kept.
	if !bytes.Equal(out[0].Data, []byte{0xbb, 0xbb, 0xcc}) {
		t.Errorf("data = %x", out[0].Data)
	}
	if tr.Extracts != 2 {
		t.Errorf("extracts = %d", tr.Extracts)
	}
}

func TestSelectWithMask(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
header h_t h2;
parser start {
    extract(h);
    return select(latest.v) {
        0x40 mask 0xf0 : more;
        default : ingress;
    }
}
parser more { extract(h2); return ingress; }
action out() { modify_field(standard_metadata.egress_spec, 1); }
table t { reads { valid(h2) : exact; } actions { out; } }
control ingress { apply(t); }
`)
	if _, err := sw.TableAdd("t", "out", []MatchParam{Valid(true)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	out, _, _ := sw.Process([]byte{0x45, 0x01}, 0)
	if len(out) != 1 {
		t.Fatal("0x45 should match mask case and extract h2")
	}
	out, _, _ = sw.Process([]byte{0x52, 0x01}, 0)
	if len(out) != 0 {
		t.Fatal("0x52 should not match mask case")
	}
}

func TestSelectNoDefaultDrops(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
parser start {
    extract(h);
    return select(latest.v) {
        1 : ingress;
    }
}
action out() { modify_field(standard_metadata.egress_spec, 1); }
table t { actions { out; } }
control ingress { apply(t); }
`)
	if err := sw.TableSetDefault("t", "out", nil); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("unmatched select without default should drop: %+v", out)
	}
	out, _, _ = sw.Process([]byte{1}, 0)
	if len(out) != 1 {
		t.Fatal("matched case should pass")
	}
}

func TestApplyHitMissBlocks(t *testing.T) {
	sw := load(t, `
header_type h_t { fields { v : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action nop() { no_op(); }
action mark(x) { modify_field(h.v, x); }
action out() { modify_field(standard_metadata.egress_spec, 1); }
table first { reads { h.v : exact; } actions { nop; } }
table onhit { actions { mark; } }
table onmiss { actions { mark; } }
table sender { actions { out; } }
control ingress {
    apply(first) {
        hit { apply(onhit); }
        miss { apply(onmiss); }
    }
    apply(sender);
}
`)
	if _, err := sw.TableAdd("first", "nop", []MatchParam{ExactUint(8, 1)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("onhit", "mark", Args(8, 0xaa)); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("onmiss", "mark", Args(8, 0xbb)); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("sender", "out", nil); err != nil {
		t.Fatal(err)
	}
	out, _, err := sw.Process([]byte{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data[0] != 0xaa {
		t.Errorf("hit block: %x", out[0].Data)
	}
	out, _, err = sw.Process([]byte{9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data[0] != 0xbb {
		t.Errorf("miss block: %x", out[0].Data)
	}
}
