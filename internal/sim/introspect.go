package sim

import (
	"fmt"
	"sort"

	"hyper4/internal/p4/ast"
)

// ReadSpec describes one match key of a table: its kind and bit width.
type ReadSpec struct {
	Kind  ast.MatchKind
	Width int
}

// TableReads returns the match key specification of a table.
func (sw *Switch) TableReads(name string) ([]ReadSpec, error) {
	t, err := sw.table(name)
	if err != nil {
		return nil, err
	}
	out := make([]ReadSpec, len(t.decl.Reads))
	for i, r := range t.decl.Reads {
		out[i] = ReadSpec{Kind: r.Match, Width: t.keyWidths[i]}
	}
	return out, nil
}

// ActionParams returns the parameter names of an action.
func (sw *Switch) ActionParams(name string) ([]string, error) {
	a, ok := sw.prog.Actions[name]
	if !ok {
		return nil, fmt.Errorf("sim: no action %q", name)
	}
	return append([]string(nil), a.Params...), nil
}

// TableNames returns all table names, sorted.
func (sw *Switch) TableNames() []string {
	out := make([]string, 0, len(sw.tables))
	for name := range sw.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasTable reports whether the program declares the table.
func (sw *Switch) HasTable(name string) bool {
	_, ok := sw.tables[name]
	return ok
}

// TableEntryCount returns the number of installed entries.
func (sw *Switch) TableEntryCount(name string) (int, error) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	t, err := sw.table(name)
	if err != nil {
		return 0, err
	}
	return len(t.entries), nil
}
