package sim

import (
	"errors"
	"fmt"
	"testing"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/pkt"
)

// attrSrc is a miniature persona: an assignment table stamps a per-packet
// program ID into metadata (the attribution field), then a forwarding table
// routes. This mirrors how the DPMU attributes faults to vdevs.
const attrSrc = `
header_type ethernet_t { fields { dstAddr : 48; srcAddr : 48; etherType : 16; } }
header ethernet_t ethernet;
header_type vmeta_t { fields { prog : 16; } }
metadata vmeta_t vm;
parser start { extract(ethernet); return ingress; }
action set_prog(p) { modify_field(vm.prog, p); }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
table assign { reads { standard_metadata.ingress_port : exact; } actions { set_prog; } }
table dmac { reads { ethernet.dstAddr : exact; } actions { forward; } }
control ingress { apply(assign); apply(dmac); }
`

// testInjector is a scriptable Injector for unit tests.
type testInjector struct {
	panicOn   func(attr uint64, action string) bool
	missOn    func(attr uint64, table string) bool
	passBound int
}

func (ti *testInjector) Action(attr uint64, action string) {
	if ti.panicOn != nil && ti.panicOn(attr, action) {
		panic(fmt.Sprintf("injected panic in %s (attr %d)", action, attr))
	}
}
func (ti *testInjector) ForceMiss(attr uint64, table string) bool {
	return ti.missOn != nil && ti.missOn(attr, table)
}
func (ti *testInjector) PassBound() int { return ti.passBound }
func (ti *testInjector) Delay()         {}

// attrSwitch builds the attribution test switch: ingress port 1 is program 7,
// port 2 is program 9, and the dmac table forwards to port 3.
func attrSwitch(t *testing.T) *Switch {
	t.Helper()
	sw := load(t, attrSrc)
	if err := sw.SetAttributionField(ast.FieldRef{Instance: "vm", Field: "prog", Index: ast.IndexNone}); err != nil {
		t.Fatal(err)
	}
	for port, prog := range map[uint64]uint64{1: 7, 2: 9} {
		if _, err := sw.TableAdd("assign", "set_prog",
			[]MatchParam{Exact(bitfield.FromUint(9, port))}, Args(16, prog), 0); err != nil {
			t.Fatal(err)
		}
	}
	mac := pkt.MustMAC("00:00:00:00:00:02")
	if _, err := sw.TableAdd("dmac", "forward",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, Args(9, 3), 0); err != nil {
		t.Fatal(err)
	}
	return sw
}

func attrFrame() []byte {
	return ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "payload")
}

func TestPanicRecoveredAsFault(t *testing.T) {
	sw := attrSwitch(t)
	var hooked []*PacketFault
	sw.SetFaultHook(func(f *PacketFault) { hooked = append(hooked, f) })
	sw.SetInjector(&testInjector{panicOn: func(attr uint64, action string) bool {
		return attr == 7 && action == "forward"
	}})

	_, _, err := sw.Process(attrFrame(), 1)
	var f *PacketFault
	if !errors.As(err, &f) {
		t.Fatalf("want *PacketFault, got %v", err)
	}
	if f.Kind != FaultPanic || f.Attr != 7 || f.Port != 1 {
		t.Fatalf("fault = %+v", f)
	}
	if len(hooked) != 1 || hooked[0] != f {
		t.Fatalf("hook saw %v", hooked)
	}
	if got := sw.Metrics().Faults; got.Panic != 1 || got.Total() != 1 {
		t.Fatalf("fault counters = %+v", got)
	}

	// The other program (port 2 → attr 9) is untouched, and the switch keeps
	// forwarding after the recovered panic.
	out, _, err := sw.Process(attrFrame(), 2)
	if err != nil || len(out) != 1 || out[0].Port != 3 {
		t.Fatalf("co-resident program broken after panic: out=%v err=%v", out, err)
	}
}

func TestPassBoundFault(t *testing.T) {
	sw := load(t, loopSrc)
	if err := sw.TableSetDefault("t", "again", nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := sw.Process([]byte{1}, 4)
	var f *PacketFault
	if !errors.As(err, &f) {
		t.Fatalf("want *PacketFault, got %v", err)
	}
	if f.Kind != FaultPassBound || f.Port != 4 {
		t.Fatalf("fault = %+v", f)
	}
	if got := sw.Metrics().Faults.PassBound; got != 1 {
		t.Fatalf("pass_bound counter = %d", got)
	}
}

func TestInjectedPassBoundOverride(t *testing.T) {
	sw := attrSwitch(t)
	sw.SetInjector(&testInjector{passBound: 1})
	// A plain forwarding packet uses exactly one pass, so a bound of 1
	// still... no: the bound is checked before the first pass would exceed
	// it. With bound 1 the single pass runs; a second pass would fault.
	out, _, err := sw.Process(attrFrame(), 1)
	if err != nil || len(out) != 1 {
		t.Fatalf("single-pass packet should survive bound 1: out=%v err=%v", out, err)
	}

	loop := load(t, loopSrc)
	if err := loop.TableSetDefault("t", "again", nil); err != nil {
		t.Fatal(err)
	}
	loop.SetInjector(&testInjector{passBound: 3})
	_, tr, err := loop.Process([]byte{1}, 0)
	var f *PacketFault
	if !errors.As(err, &f) || f.Kind != FaultPassBound {
		t.Fatalf("want pass_bound fault, got %v (tr=%v)", err, tr)
	}
}

func TestForcedMissRunsDefault(t *testing.T) {
	sw := attrSwitch(t)
	sw.SetInjector(&testInjector{missOn: func(attr uint64, table string) bool {
		return table == "dmac"
	}})
	out, _, err := sw.Process(attrFrame(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// dmac has no default action, so a forced miss leaves egress_spec at the
	// drop value: the packet vanishes instead of forwarding to port 3.
	if len(out) != 0 {
		t.Fatalf("forced miss should drop, got %v", out)
	}
	m := sw.Metrics()
	if m.Tables["dmac"].Misses != 1 || m.Tables["dmac"].Hits != 0 {
		t.Fatalf("dmac counters = %+v", m.Tables["dmac"])
	}
}

func TestQuarantineDropsAndProbes(t *testing.T) {
	sw := attrSwitch(t)

	// Quarantine program 7 with no probe budget: its packets are dropped
	// (silently, not as faults); program 9 is unaffected.
	sw.SetQuarantine(map[uint64]int64{7: 0})
	out, _, err := sw.Process(attrFrame(), 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("quarantined: out=%v err=%v", out, err)
	}
	out, _, err = sw.Process(attrFrame(), 2)
	if err != nil || len(out) != 1 {
		t.Fatalf("co-resident: out=%v err=%v", out, err)
	}
	if got := sw.Metrics().Faults; got.QuarantineDrops != 1 || got.Total() != 0 {
		t.Fatalf("counters = %+v", got)
	}

	// Half-open: a probe budget of 2 lets exactly two passes through.
	sw.SetQuarantine(map[uint64]int64{7: 2})
	for i := 0; i < 2; i++ {
		out, _, err = sw.Process(attrFrame(), 1)
		if err != nil || len(out) != 1 {
			t.Fatalf("probe %d: out=%v err=%v", i, out, err)
		}
	}
	out, _, err = sw.Process(attrFrame(), 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("post-budget: out=%v err=%v", out, err)
	}
	if rem, ok := sw.QuarantineRemaining(7); !ok || rem > 0 {
		t.Fatalf("remaining = %d, %v", rem, ok)
	}

	// Clearing the quarantine restores forwarding.
	sw.SetQuarantine(nil)
	out, _, err = sw.Process(attrFrame(), 1)
	if err != nil || len(out) != 1 {
		t.Fatalf("restored: out=%v err=%v", out, err)
	}
}

func TestFaultErrorPreservesStageMessage(t *testing.T) {
	// Stage errors keep their exact message through the fault wrapper, and
	// the underlying error stays reachable via errors.Unwrap.
	sw := load(t, loopSrc)
	if err := sw.TableSetDefault("t", "again", nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := sw.Process([]byte{1}, 0)
	want := fmt.Sprintf("sim: packet exceeded %d pipeline passes", MaxPasses)
	if err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %q", err, want)
	}
}
