package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// instKey identifies one header instance element (stacks have one key per
// element; scalars use element 0).
type instKey struct {
	name string
	elem int
}

// headerState is the runtime state of one header instance element.
type headerState struct {
	valid bool
	value bitfield.Value
}

// packetState is all per-packet state for one pass through the pipeline:
// the raw packet, the parsed representation, and metadata.
type packetState struct {
	sw *Switch

	data     []byte // packet bytes as received for this pass
	consumed int    // bytes consumed by the parser

	headers map[instKey]*headerState
	// stackNext tracks the parser's [next] cursor per stack instance.
	stackNext map[string]int
	// latest is the most recently extracted header element.
	latest    instKey
	hasLatest bool

	// metadata values by instance name (standard_metadata included).
	meta map[string]bitfield.Value

	// end-of-pipeline requests raised by primitives.
	dropped         bool
	resubmitList    string // field list name; "" when no resubmit requested
	resubmitRaised  bool
	recircList      string
	recircRaised    bool
	cloneI2ESession int
	cloneI2EList    string
	cloneI2ERaised  bool
	cloneE2ESession int
	cloneE2EList    string
	cloneE2ERaised  bool
	truncateTo      int // 0 = no truncation

	shortExtract bool // parser ran past the end of the packet (zero-filled)
	inEgress     bool // executing the egress control
}

func newPacketState(sw *Switch, data []byte, port int) *packetState {
	ps := &packetState{
		sw:        sw,
		data:      data,
		headers:   map[instKey]*headerState{},
		stackNext: map[string]int{},
		meta:      map[string]bitfield.Value{},
	}
	for name, inst := range sw.prog.Instances {
		if inst.Decl.Metadata {
			ps.meta[name] = bitfield.New(inst.Width())
		}
	}
	ps.setStdMeta(hlir.FieldIngressPort, uint64(port))
	ps.setStdMeta(hlir.FieldPacketLength, uint64(len(data)))
	// Deviation from the P4_14 zero-init rule: egress_spec starts at the
	// drop value so a packet that no table routes is dropped rather than
	// emitted on port 0.
	ps.setStdMeta(hlir.FieldEgressSpec, hlir.DropSpec)
	return ps
}

// header returns (allocating if needed) the state for one header element.
func (ps *packetState) header(k instKey) *headerState {
	h, ok := ps.headers[k]
	if !ok {
		inst := ps.sw.prog.Instances[k.name]
		h = &headerState{value: bitfield.New(inst.Width())}
		ps.headers[k] = h
	}
	return h
}

// resolveHeaderRef maps an ast.HeaderRef to a concrete element key, resolving
// [next] and [last] against parser state.
func (ps *packetState) resolveHeaderRef(ref ast.HeaderRef) (instKey, error) {
	inst, ok := ps.sw.prog.Instances[ref.Instance]
	if !ok {
		return instKey{}, fmt.Errorf("sim: unknown instance %q", ref.Instance)
	}
	elem := 0
	switch {
	case ref.Index == ast.IndexNext:
		elem = ps.stackNext[ref.Instance]
	case ref.Index == ast.IndexLast:
		elem = ps.stackNext[ref.Instance] - 1
		if elem < 0 {
			return instKey{}, fmt.Errorf("sim: [last] on %q before any extraction", ref.Instance)
		}
	case ref.Index >= 0:
		elem = ref.Index
	}
	if inst.Decl.IsStack() && elem >= inst.Decl.Count {
		return instKey{}, fmt.Errorf("sim: stack %q element %d out of range", ref.Instance, elem)
	}
	return instKey{name: ref.Instance, elem: elem}, nil
}

// getField reads a field value (metadata or header).
func (ps *packetState) getField(ref ast.FieldRef) (bitfield.Value, error) {
	inst, ok := ps.sw.prog.Instances[ref.Instance]
	if !ok {
		return bitfield.Value{}, fmt.Errorf("sim: unknown instance %q", ref.Instance)
	}
	off, ok := inst.Type.FieldOffset(ref.Field)
	if !ok {
		return bitfield.Value{}, fmt.Errorf("sim: %s has no field %q", ref.Instance, ref.Field)
	}
	w := inst.Type.Field(ref.Field).Width
	if inst.Decl.Metadata {
		return ps.meta[ref.Instance].Slice(off, w), nil
	}
	k, err := ps.resolveHeaderRef(ast.HeaderRef{Instance: ref.Instance, Index: ref.Index})
	if err != nil {
		return bitfield.Value{}, err
	}
	return ps.header(k).value.Slice(off, w), nil
}

// setField writes a field value, resizing val to the field's width.
func (ps *packetState) setField(ref ast.FieldRef, val bitfield.Value) error {
	inst, ok := ps.sw.prog.Instances[ref.Instance]
	if !ok {
		return fmt.Errorf("sim: unknown instance %q", ref.Instance)
	}
	off, ok := inst.Type.FieldOffset(ref.Field)
	if !ok {
		return fmt.Errorf("sim: %s has no field %q", ref.Instance, ref.Field)
	}
	w := inst.Type.Field(ref.Field).Width
	if inst.Decl.Metadata {
		m := ps.meta[ref.Instance]
		m.Insert(off, val.Resize(w))
		ps.meta[ref.Instance] = m
		return nil
	}
	k, err := ps.resolveHeaderRef(ast.HeaderRef{Instance: ref.Instance, Index: ref.Index})
	if err != nil {
		return err
	}
	ps.header(k).value.Insert(off, val.Resize(w))
	return nil
}

// fieldWidth returns the declared width of a field reference.
func (ps *packetState) fieldWidth(ref ast.FieldRef) (int, error) {
	return ps.sw.prog.FieldWidth(ref)
}

func (ps *packetState) stdMeta(field string) bitfield.Value {
	v, err := ps.getField(ast.FieldRef{Instance: hlir.StandardMetadata, Index: ast.IndexNone, Field: field})
	if err != nil {
		panic(err) // standard metadata fields always resolve
	}
	return v
}

func (ps *packetState) setStdMeta(field string, val uint64) {
	w, _ := ps.sw.prog.FieldWidth(ast.FieldRef{Instance: hlir.StandardMetadata, Index: ast.IndexNone, Field: field})
	if err := ps.setField(ast.FieldRef{Instance: hlir.StandardMetadata, Index: ast.IndexNone, Field: field}, bitfield.FromUint(w, val)); err != nil {
		panic(err)
	}
}

// capturePreserved snapshots the metadata fields named by a field list, for
// resubmit/recirculate/clone semantics. An empty list name preserves nothing.
func (ps *packetState) capturePreserved(listName string) (map[ast.FieldRef]bitfield.Value, error) {
	out := map[ast.FieldRef]bitfield.Value{}
	if listName == "" {
		return out, nil
	}
	var add func(name string) error
	add = func(name string) error {
		fl, ok := ps.sw.prog.FieldLists[name]
		if !ok {
			return fmt.Errorf("sim: unknown field list %q", name)
		}
		for _, e := range fl.Entries {
			switch {
			case e.Field != nil:
				v, err := ps.getField(*e.Field)
				if err != nil {
					return err
				}
				out[*e.Field] = v
			case e.SubList != "":
				if err := add(e.SubList); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := add(listName); err != nil {
		return nil, err
	}
	return out, nil
}

// restorePreserved writes captured metadata values into a fresh pass state.
func (ps *packetState) restorePreserved(fields map[ast.FieldRef]bitfield.Value) {
	for ref, val := range fields {
		// Only metadata can survive a pass boundary; header fields are
		// re-extracted from the wire bytes.
		if inst, ok := ps.sw.prog.Instances[ref.Instance]; ok && inst.Decl.Metadata {
			if err := ps.setField(ref, val); err != nil {
				panic(err)
			}
		}
	}
}

// clone deep-copies the packet state for clone_i2e / clone_e2e.
func (ps *packetState) clone() *packetState {
	out := &packetState{
		sw:         ps.sw,
		data:       append([]byte(nil), ps.data...),
		consumed:   ps.consumed,
		headers:    map[instKey]*headerState{},
		stackNext:  map[string]int{},
		meta:       map[string]bitfield.Value{},
		latest:     ps.latest,
		hasLatest:  ps.hasLatest,
		truncateTo: ps.truncateTo,
	}
	for k, h := range ps.headers {
		out.headers[k] = &headerState{valid: h.valid, value: h.value.Clone()}
	}
	for k, v := range ps.stackNext {
		out.stackNext[k] = v
	}
	for k, v := range ps.meta {
		out.meta[k] = v.Clone()
	}
	return out
}
