package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// headerState is the runtime state of one header instance element.
type headerState struct {
	valid bool
	value bitfield.Value
}

// packetState is all per-packet state for one pass through the pipeline:
// the raw packet, the parsed representation, and metadata. States are pooled
// (sync.Pool on the Switch) and hold dense slices indexed by the slot ids the
// layout assigned in New, so steady-state Process performs no per-packet map
// or header allocation.
type packetState struct {
	sw *Switch

	data     []byte // packet bytes as received for this pass
	consumed int    // bytes consumed by the parser

	headers []headerState // indexed by instInfo.headerBase+elem
	// stackNext tracks the parser's [next] cursor per stack instance.
	stackNext []int
	// latestSlot is the most recently extracted header element (-1 = none).
	latestSlot int

	// metadata values by slot (standard_metadata included).
	meta []bitfield.Value

	// end-of-pipeline requests raised by primitives.
	dropped         bool
	resubmitList    string // field list name; "" when no resubmit requested
	resubmitRaised  bool
	recircList      string
	recircRaised    bool
	cloneI2ESession int
	cloneI2EList    string
	cloneI2ERaised  bool
	cloneE2ESession int
	cloneE2EList    string
	cloneE2ERaised  bool
	truncateTo      int // 0 = no truncation

	shortExtract bool // parser ran past the end of the packet (zero-filled)
	inEgress     bool // executing the egress control
	quarVerdict  int8 // per-pass quarantine verdict cache (fault.go)

	// Reusable scratch, retained across pooled uses.
	keyBuf  []byte           // exact/LPM lookup key bytes
	keyVals []bitfield.Value // generic lookup key values
	scratch []byte           // parser extract staging
	selKeys []bitfield.Value // per-select-plan key scratch, indexed by plan id
}

// newPacketState allocates a state with every slot's Value pre-sized; it is
// only called by the pool's New.
func newPacketState(sw *Switch) *packetState {
	lay := sw.lay
	ps := &packetState{
		sw:         sw,
		headers:    make([]headerState, lay.numHeaderSlots),
		stackNext:  make([]int, lay.numStacks),
		meta:       make([]bitfield.Value, lay.numMetaSlots),
		latestSlot: -1,
	}
	for i, ii := range lay.slots {
		ps.headers[i].value = bitfield.New(ii.width)
	}
	for i, ii := range lay.metaInsts {
		ps.meta[i] = bitfield.New(ii.width)
	}
	ps.selKeys = make([]bitfield.Value, len(lay.selectList))
	for _, p := range lay.selectList {
		ps.selKeys[p.id] = bitfield.New(p.total)
	}
	return ps
}

// getState leases a reset state from the pool for a fresh pipeline pass.
func (sw *Switch) getState(data []byte, port int) *packetState {
	ps := sw.pool.Get().(*packetState)
	ps.data = data
	ps.consumed = 0
	for i := range ps.headers {
		ps.headers[i].valid = false
		ps.headers[i].value.Zero()
	}
	for i := range ps.stackNext {
		ps.stackNext[i] = 0
	}
	for i := range ps.meta {
		ps.meta[i].Zero()
	}
	ps.latestSlot = -1
	ps.clearPassFlags()
	ps.truncateTo = 0
	ps.shortExtract = false
	ps.inEgress = false
	ps.quarVerdict = quarUnchecked
	ps.setStdMeta(hlir.FieldIngressPort, uint64(port))
	ps.setStdMeta(hlir.FieldPacketLength, uint64(len(data)))
	// Deviation from the P4_14 zero-init rule: egress_spec starts at the
	// drop value so a packet that no table routes is dropped rather than
	// emitted on port 0.
	ps.setStdMeta(hlir.FieldEgressSpec, hlir.DropSpec)
	return ps
}

// putState returns a state to the pool. The caller must not retain any
// reference into the state afterwards.
func (sw *Switch) putState(ps *packetState) {
	ps.data = nil
	sw.pool.Put(ps)
}

// clearPassFlags resets every end-of-pipeline request. Clone states clear
// these uniformly — an I2E or E2E clone must not inherit a drop, resubmit,
// recirculate, or further-clone request raised before the clone was taken.
func (ps *packetState) clearPassFlags() {
	ps.dropped = false
	ps.resubmitRaised = false
	ps.resubmitList = ""
	ps.recircRaised = false
	ps.recircList = ""
	ps.cloneI2ERaised = false
	ps.cloneI2EList = ""
	ps.cloneI2ESession = 0
	ps.cloneE2ERaised = false
	ps.cloneE2EList = ""
	ps.cloneE2ESession = 0
}

// slotOf resolves an instance + index to a concrete header slot, resolving
// [next] and [last] against parser state.
func (ps *packetState) slotOf(ii *instInfo, index int) (int, error) {
	elem := 0
	next := 0
	if ii.stackSlot >= 0 {
		next = ps.stackNext[ii.stackSlot]
	}
	switch {
	case index == ast.IndexNext:
		elem = next
	case index == ast.IndexLast:
		elem = next - 1
		if elem < 0 {
			return 0, fmt.Errorf("sim: [last] on %q before any extraction", ii.name)
		}
	case index >= 0:
		elem = index
	}
	if ii.inst.Decl.IsStack() && elem >= ii.count {
		return 0, fmt.Errorf("sim: stack %q element %d out of range", ii.name, elem)
	}
	return ii.headerBase + elem, nil
}

// resolveHeaderRef maps an ast.HeaderRef to a header slot.
func (ps *packetState) resolveHeaderRef(ref ast.HeaderRef) (int, error) {
	ii, ok := ps.sw.lay.insts[ref.Instance]
	if !ok {
		return 0, fmt.Errorf("sim: unknown instance %q", ref.Instance)
	}
	return ps.slotOf(ii, ref.Index)
}

// fieldSource locates the Value holding a field: the metadata value or the
// resolved header element's value.
func (ps *packetState) fieldSource(loc fieldLoc, index int) (*bitfield.Value, error) {
	if loc.ii.metaSlot >= 0 {
		return &ps.meta[loc.ii.metaSlot], nil
	}
	slot, err := ps.slotOf(loc.ii, index)
	if err != nil {
		return nil, err
	}
	return &ps.headers[slot].value, nil
}

// getField reads a field value (metadata or header). The returned Value is a
// fresh copy.
func (ps *packetState) getField(ref ast.FieldRef) (bitfield.Value, error) {
	loc, err := ps.sw.lay.fieldLoc(ref)
	if err != nil {
		return bitfield.Value{}, err
	}
	src, err := ps.fieldSource(loc, ref.Index)
	if err != nil {
		return bitfield.Value{}, err
	}
	return src.Slice(loc.off, loc.width), nil
}

// getFieldInto reads a field value into dst, reusing dst's buffer.
func (ps *packetState) getFieldInto(ref ast.FieldRef, dst *bitfield.Value) error {
	loc, err := ps.sw.lay.fieldLoc(ref)
	if err != nil {
		return err
	}
	src, err := ps.fieldSource(loc, ref.Index)
	if err != nil {
		return err
	}
	src.SliceInto(dst, loc.off, loc.width)
	return nil
}

// setField writes a field value, resizing val to the field's width.
func (ps *packetState) setField(ref ast.FieldRef, val bitfield.Value) error {
	loc, err := ps.sw.lay.fieldLoc(ref)
	if err != nil {
		return err
	}
	dst, err := ps.fieldSource(loc, ref.Index)
	if err != nil {
		return err
	}
	dst.Insert(loc.off, val.Resize(loc.width))
	return nil
}

// fieldWidth returns the declared width of a field reference.
func (ps *packetState) fieldWidth(ref ast.FieldRef) (int, error) {
	loc, err := ps.sw.lay.fieldLoc(ref)
	if err != nil {
		return 0, err
	}
	return loc.width, nil
}

// stdLoc resolves a standard-metadata field name. Every caller passes an
// hlir.Field* constant and hlir.Resolve always synthesizes the full
// standard_metadata instance, so a miss is a true invariant violation, not a
// state user input can reach — the panic stays (and is contained by the
// per-packet recovery in any case). User-named fields go through
// layout.fieldLoc, which returns structured errors.
func (ps *packetState) stdLoc(field string) fieldLoc {
	loc, ok := ps.sw.lay.stdLocs[field]
	if !ok {
		panic(fmt.Sprintf("sim: invariant violation: unknown standard metadata field %q", field)) //hp4:allow hotpath (invariant panic)
	}
	return loc
}

func (ps *packetState) stdMeta(field string) bitfield.Value {
	loc := ps.stdLoc(field)
	return ps.meta[ps.sw.lay.stdSlot].Slice(loc.off, loc.width)
}

// stdMetaUint reads a standard metadata field as an integer without
// allocating.
func (ps *packetState) stdMetaUint(field string) uint64 {
	loc := ps.stdLoc(field)
	return ps.meta[ps.sw.lay.stdSlot].UintAt(loc.off, loc.width)
}

func (ps *packetState) setStdMeta(field string, val uint64) {
	loc := ps.stdLoc(field)
	ps.meta[ps.sw.lay.stdSlot].InsertUint(loc.off, loc.width, val)
}

// capturePreserved snapshots the metadata fields named by a field list, for
// resubmit/recirculate/clone semantics. An empty list name preserves nothing.
func (ps *packetState) capturePreserved(listName string) (map[ast.FieldRef]bitfield.Value, error) {
	if listName == "" {
		return nil, nil
	}
	out := map[ast.FieldRef]bitfield.Value{} //hp4:allow hotpath (only reached for resubmit/recirculate/clone)
	var add func(name string) error
	add = func(name string) error {
		fl, ok := ps.sw.prog.FieldLists[name]
		if !ok {
			return fmt.Errorf("sim: unknown field list %q", name)
		}
		for _, e := range fl.Entries {
			switch {
			case e.Field != nil:
				v, err := ps.getField(*e.Field)
				if err != nil {
					return err
				}
				out[*e.Field] = v
			case e.SubList != "":
				if err := add(e.SubList); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := add(listName); err != nil {
		return nil, err
	}
	return out, nil
}

// restorePreserved writes captured metadata values into a fresh pass state.
// Field lists come from user programs, so a write failure is a structured
// per-packet error (surfaced as a pipeline fault), not a panic.
func (ps *packetState) restorePreserved(fields map[ast.FieldRef]bitfield.Value) error {
	for ref, val := range fields {
		// Only metadata can survive a pass boundary; header fields are
		// re-extracted from the wire bytes.
		if ii, ok := ps.sw.lay.insts[ref.Instance]; ok && ii.metaSlot >= 0 {
			if err := ps.setField(ref, val); err != nil {
				return fmt.Errorf("sim: restoring preserved field %s.%s: %w", ref.Instance, ref.Field, err)
			}
		}
	}
	return nil
}

// cloneForEgress deep-copies the packet state for clone_i2e / clone_e2e into
// a pooled state with every end-of-pipeline flag cleared, so a clone can
// never inherit its parent's drop/resubmit/recirculate/clone requests.
func (ps *packetState) cloneForEgress() *packetState {
	out := ps.sw.pool.Get().(*packetState)
	out.data = append([]byte(nil), ps.data...)
	out.consumed = ps.consumed
	for i := range ps.headers {
		out.headers[i].valid = ps.headers[i].valid
		out.headers[i].value.CopyFrom(ps.headers[i].value)
	}
	copy(out.stackNext, ps.stackNext)
	for i := range ps.meta {
		out.meta[i].CopyFrom(ps.meta[i])
	}
	out.latestSlot = ps.latestSlot
	out.truncateTo = ps.truncateTo
	out.shortExtract = ps.shortExtract
	out.inEgress = false
	out.quarVerdict = quarUnchecked
	out.clearPassFlags()
	return out
}
