// Package runtime parses and executes bmv2-CLI-style text commands against a
// sim.Switch. This is the command format the HyPer4 compiler emits (§5.2 of
// the paper describes the original "commands files"), so a compiled program
// is a script this package can replay.
//
// Supported commands:
//
//	table_add <table> <action> <match>... => <arg>... [priority]
//	table_set_default <table> <action> [<arg>...]
//	table_delete <table> <handle>
//	table_modify <table> <action> <handle> [<arg>...]
//	table_clear <table>
//	mirroring_add <session> <port>
//	register_write <register> <index> <value>
//	register_read <register> <index>
//	counter_read <counter> <index>
//	counter_reset <counter> <index>
//	meter_set_rates <meter> <index> <yellow> <red>
//	meter_tick <meter>
//
// Match value syntax per kind: exact "v", ternary "v&&&mask", lpm "v/plen",
// range "lo->hi", valid "0"/"1". Values may be decimal, 0x-hex, MAC
// (aa:bb:cc:dd:ee:ff) or IPv4 (a.b.c.d) notation. Lines beginning with '#'
// and blank lines are ignored.
package runtime

import (
	"bufio"
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

// Runtime executes commands against one switch.
type Runtime struct {
	SW *sim.Switch
}

// New wraps a switch in a command interpreter.
func New(sw *sim.Switch) *Runtime { return &Runtime{SW: sw} }

// ExecAll executes every command line in a script, stopping at the first
// error and reporting the line number.
func (r *Runtime) ExecAll(script string) error {
	sc := bufio.NewScanner(strings.NewReader(script))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		if _, err := r.Exec(line); err != nil {
			return fmt.Errorf("line %d (%q): %w", lineNo, line, err)
		}
	}
	return sc.Err()
}

// Exec executes one command line and returns its textual result (empty for
// commands with no output).
func (r *Runtime) Exec(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "table_add":
		return r.tableAdd(args)
	case "table_set_default":
		return r.tableSetDefault(args)
	case "table_delete":
		if len(args) != 2 {
			return "", fmt.Errorf("table_delete wants <table> <handle>")
		}
		h, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad handle %q", args[1])
		}
		return "", r.SW.TableDelete(args[0], h)
	case "table_modify":
		return r.tableModify(args)
	case "table_clear":
		if len(args) != 1 {
			return "", fmt.Errorf("table_clear wants <table>")
		}
		return "", r.SW.TableClear(args[0])
	case "mirroring_add":
		if len(args) != 2 {
			return "", fmt.Errorf("mirroring_add wants <session> <port>")
		}
		sess, err1 := strconv.Atoi(args[0])
		port, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("bad mirroring args %v", args)
		}
		r.SW.SetMirror(sess, port)
		return "", nil
	case "register_write":
		if len(args) != 3 {
			return "", fmt.Errorf("register_write wants <register> <index> <value>")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad index %q", args[1])
		}
		v, err := parseValue(args[2], 0)
		if err != nil {
			return "", err
		}
		return "", r.SW.RegisterWrite(args[0], idx, v)
	case "register_read":
		if len(args) != 2 {
			return "", fmt.Errorf("register_read wants <register> <index>")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad index %q", args[1])
		}
		v, err := r.SW.RegisterRead(args[0], idx)
		if err != nil {
			return "", err
		}
		return v.String(), nil
	case "counter_read":
		if len(args) != 2 {
			return "", fmt.Errorf("counter_read wants <counter> <index>")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad index %q", args[1])
		}
		p, b, err := r.SW.CounterRead(args[0], idx)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("packets=%d bytes=%d", p, b), nil
	case "counter_reset":
		if len(args) != 2 {
			return "", fmt.Errorf("counter_reset wants <counter> <index>")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad index %q", args[1])
		}
		return "", r.SW.CounterReset(args[0], idx)
	case "meter_set_rates":
		if len(args) != 4 {
			return "", fmt.Errorf("meter_set_rates wants <meter> <index> <yellow> <red>")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return "", fmt.Errorf("bad index %q", args[1])
		}
		y, err1 := strconv.ParseUint(args[2], 0, 64)
		rd, err2 := strconv.ParseUint(args[3], 0, 64)
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("bad rates %v", args[2:])
		}
		return "", r.SW.MeterSetRates(args[0], idx, y, rd)
	case "meter_tick":
		if len(args) != 1 {
			return "", fmt.Errorf("meter_tick wants <meter>")
		}
		return "", r.SW.MeterTick(args[0])
	default:
		return "", fmt.Errorf("unknown command %q", cmd)
	}
}

func (r *Runtime) tableAdd(args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf("table_add wants <table> <action> <match>... => <args>...")
	}
	tableName, action := args[0], args[1]
	rest := args[2:]
	sep := -1
	for i, a := range rest {
		if a == "=>" {
			sep = i
			break
		}
	}
	var matchToks, argToks []string
	if sep < 0 {
		matchToks = rest
	} else {
		matchToks = rest[:sep]
		argToks = rest[sep+1:]
	}
	reads, err := r.SW.TableReads(tableName)
	if err != nil {
		return "", err
	}
	if len(matchToks) != len(reads) {
		return "", fmt.Errorf("table %s wants %d match fields, got %d", tableName, len(reads), len(matchToks))
	}
	params := make([]sim.MatchParam, len(reads))
	needsPriority := false
	for i, spec := range reads {
		p, err := parseMatch(matchToks[i], spec)
		if err != nil {
			return "", fmt.Errorf("match %d: %w", i, err)
		}
		params[i] = p
		if spec.Kind == ast.MatchTernary || spec.Kind == ast.MatchRange {
			needsPriority = true
		}
	}
	actParams, err := r.SW.ActionParams(action)
	if err != nil {
		return "", err
	}
	priority := 0
	if needsPriority && len(argToks) == len(actParams)+1 {
		priority, err = strconv.Atoi(argToks[len(argToks)-1])
		if err != nil {
			return "", fmt.Errorf("bad priority %q", argToks[len(argToks)-1])
		}
		argToks = argToks[:len(argToks)-1]
	}
	if len(argToks) != len(actParams) {
		return "", fmt.Errorf("action %s wants %d args, got %d", action, len(actParams), len(argToks))
	}
	actionArgs, err := parseArgs(argToks)
	if err != nil {
		return "", err
	}
	h, err := r.SW.TableAdd(tableName, action, params, actionArgs, priority)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("handle %d", h), nil
}

func (r *Runtime) tableSetDefault(args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf("table_set_default wants <table> <action> [args...]")
	}
	actionArgs, err := parseArgs(args[2:])
	if err != nil {
		return "", err
	}
	return "", r.SW.TableSetDefault(args[0], args[1], actionArgs)
}

func (r *Runtime) tableModify(args []string) (string, error) {
	if len(args) < 3 {
		return "", fmt.Errorf("table_modify wants <table> <action> <handle> [args...]")
	}
	h, err := strconv.Atoi(args[2])
	if err != nil {
		return "", fmt.Errorf("bad handle %q", args[2])
	}
	actionArgs, err := parseArgs(args[3:])
	if err != nil {
		return "", err
	}
	return "", r.SW.TableModify(args[0], h, args[1], actionArgs)
}

func parseArgs(toks []string) ([]bitfield.Value, error) {
	out := make([]bitfield.Value, len(toks))
	for i, tok := range toks {
		v, err := parseValue(tok, 0)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// parseMatch parses one match token according to its read spec.
func parseMatch(tok string, spec sim.ReadSpec) (sim.MatchParam, error) {
	switch spec.Kind {
	case ast.MatchExact:
		v, err := parseValue(tok, spec.Width)
		if err != nil {
			return sim.MatchParam{}, err
		}
		return sim.Exact(v), nil
	case ast.MatchTernary:
		val, mask, found := strings.Cut(tok, "&&&")
		if !found {
			return sim.MatchParam{}, fmt.Errorf("ternary match %q wants value&&&mask", tok)
		}
		v, err := parseValue(val, spec.Width)
		if err != nil {
			return sim.MatchParam{}, err
		}
		m, err := parseValue(mask, spec.Width)
		if err != nil {
			return sim.MatchParam{}, err
		}
		return sim.Ternary(v, m), nil
	case ast.MatchLPM:
		val, plenStr, found := strings.Cut(tok, "/")
		if !found {
			return sim.MatchParam{}, fmt.Errorf("lpm match %q wants value/prefixlen", tok)
		}
		v, err := parseValue(val, spec.Width)
		if err != nil {
			return sim.MatchParam{}, err
		}
		plen, err := strconv.Atoi(plenStr)
		if err != nil || plen < 0 || plen > spec.Width {
			return sim.MatchParam{}, fmt.Errorf("bad prefix length %q", plenStr)
		}
		return sim.LPM(v, plen), nil
	case ast.MatchRange:
		lo, hi, found := strings.Cut(tok, "->")
		if !found {
			return sim.MatchParam{}, fmt.Errorf("range match %q wants lo->hi", tok)
		}
		l, err := parseValue(lo, spec.Width)
		if err != nil {
			return sim.MatchParam{}, err
		}
		h, err := parseValue(hi, spec.Width)
		if err != nil {
			return sim.MatchParam{}, err
		}
		return sim.Range(l, h), nil
	case ast.MatchValid:
		switch tok {
		case "1", "true":
			return sim.Valid(true), nil
		case "0", "false":
			return sim.Valid(false), nil
		}
		return sim.MatchParam{}, fmt.Errorf("valid match %q wants 0 or 1", tok)
	}
	return sim.MatchParam{}, fmt.Errorf("unsupported match kind %q", spec.Kind)
}

// parseValue parses a numeric, MAC, or IPv4 token. width 0 derives the width
// from the token (natural bit length; 48 for MACs, 32 for IPs).
func parseValue(tok string, width int) (bitfield.Value, error) {
	if strings.Count(tok, ":") == 5 {
		m, err := pkt.ParseMAC(tok)
		if err != nil {
			return bitfield.Value{}, err
		}
		w := width
		if w == 0 {
			w = 48
		}
		return bitfield.FromBytes(w, m[:]), nil
	}
	if strings.Count(tok, ".") == 3 && !strings.HasPrefix(tok, "0x") {
		ip, err := pkt.ParseIP4(tok)
		if err != nil {
			return bitfield.Value{}, err
		}
		w := width
		if w == 0 {
			w = 32
		}
		return bitfield.FromBytes(w, ip[:]), nil
	}
	n := new(big.Int)
	if _, ok := n.SetString(tok, 0); !ok {
		return bitfield.Value{}, fmt.Errorf("bad value %q", tok)
	}
	if n.Sign() < 0 {
		return bitfield.Value{}, fmt.Errorf("negative value %q", tok)
	}
	w := width
	if w == 0 {
		w = n.BitLen()
		if w == 0 {
			w = 1
		}
	}
	return bitfield.FromBig(w, n), nil
}

// ParseMatchToken parses one match token for a read spec (exported for the
// DPMU's command interface, which parses virtual entries against the
// emulated program's tables using the same syntax).
func ParseMatchToken(tok string, spec sim.ReadSpec) (sim.MatchParam, error) {
	return parseMatch(tok, spec)
}

// ParseValueToken parses a numeric, MAC, or IPv4 value token (width 0
// derives the width from the token).
func ParseValueToken(tok string, width int) (bitfield.Value, error) {
	return parseValue(tok, width)
}
