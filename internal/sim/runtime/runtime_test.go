package runtime

import (
	"strings"
	"testing"

	"hyper4/internal/p4/hlir"
	"hyper4/internal/p4/parser"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

const testProg = `
header_type ethernet_t { fields { dstAddr : 48; srcAddr : 48; etherType : 16; } }
header_type ipv4_t { fields { stuff : 64; ttlish : 8; proto : 8; csum : 16; src : 32; dst : 32; } }
header ethernet_t ethernet;
header ipv4_t ipv4;
parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}
parser parse_ipv4 { extract(ipv4); return ingress; }
action forward(port) { modify_field(standard_metadata.egress_spec, port); }
action _drop() { drop(); }
action nop() { no_op(); }
table dmac { reads { ethernet.dstAddr : exact; } actions { forward; _drop; } }
table acl { reads { ipv4.src : ternary; ipv4.dst : lpm; } actions { nop; _drop; } }
register r { width : 16; instance_count : 4; }
counter c { type : packets; instance_count : 4; }
meter m { type : packets; instance_count : 4; }
control ingress { apply(dmac); apply(acl); }
`

func newRT(t *testing.T) *Runtime {
	t.Helper()
	prog, err := parser.Parse("rt", testProg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hlir.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("s1", h)
	if err != nil {
		t.Fatal(err)
	}
	return New(sw)
}

func TestExecTableAddAndProcess(t *testing.T) {
	r := newRT(t)
	out, err := r.Exec("table_add dmac forward 00:00:00:00:00:02 => 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "handle ") {
		t.Errorf("output = %q", out)
	}
	if _, err := r.Exec("table_set_default acl nop"); err != nil {
		t.Fatal(err)
	}
	frame := pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC("00:00:00:00:00:02"), Src: pkt.MustMAC("00:00:00:00:00:01"), EtherType: 0x9999},
	)
	outs, _, err := r.SW.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 3 {
		t.Fatalf("outputs: %+v", outs)
	}
}

func TestExecTernaryLPMWithPriority(t *testing.T) {
	r := newRT(t)
	cmds := `
# allow 10.0.0.0/8 from hosts 192.168.1.x
table_add dmac forward 00:00:00:00:00:02 => 1
table_add acl nop 192.168.1.0&&&255.255.255.0 10.0.0.0/8 => 10
table_add acl _drop 0.0.0.0&&&0.0.0.0 0.0.0.0/0 => 99
`
	if err := r.ExecAll(cmds); err != nil {
		t.Fatal(err)
	}
	mk := func(src, dst string) []byte {
		return pkt.Serialize(
			&pkt.Ethernet{Dst: pkt.MustMAC("00:00:00:00:00:02"), Src: pkt.MustMAC("00:00:00:00:00:01"), EtherType: 0x0800},
			&pkt.IPv4{TTL: 64, Protocol: 6, Src: pkt.MustIP4(src), Dst: pkt.MustIP4(dst)},
		)
	}
	outs, _, err := r.SW.Process(mk("192.168.1.5", "10.1.2.3"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("allowed flow should pass: %+v", outs)
	}
	outs, _, err = r.SW.Process(mk("172.16.0.1", "10.1.2.3"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("catch-all drop should win: %+v", outs)
	}
}

func TestExecStatefulCommands(t *testing.T) {
	r := newRT(t)
	if _, err := r.Exec("register_write r 2 0x1234"); err != nil {
		t.Fatal(err)
	}
	out, err := r.Exec("register_read r 2")
	if err != nil {
		t.Fatal(err)
	}
	if out != "0x1234" {
		t.Errorf("register_read = %q", out)
	}
	if _, err := r.Exec("counter_read c 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec("counter_reset c 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec("meter_set_rates m 0 10 20"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec("meter_tick m"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec("mirroring_add 5 9"); err != nil {
		t.Fatal(err)
	}
}

func TestExecDeleteModify(t *testing.T) {
	r := newRT(t)
	out, err := r.Exec("table_add dmac forward 00:00:00:00:00:02 => 3")
	if err != nil {
		t.Fatal(err)
	}
	handle := strings.TrimPrefix(out, "handle ")
	if _, err := r.Exec("table_modify dmac forward " + handle + " 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec("table_delete dmac " + handle); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Exec("table_clear dmac"); err != nil {
		t.Fatal(err)
	}
}

func TestExecErrors(t *testing.T) {
	r := newRT(t)
	bad := []string{
		"frobnicate x",
		"table_add ghost forward 1 => 2",
		"table_add dmac ghost 1 => 2",
		"table_add dmac forward => 2",
		"table_add dmac forward 00:00:00:00:00:02 =>",
		"table_add acl nop 1.2.3.4 10.0.0.0/8 => 1",           // ternary without mask
		"table_add acl nop 1.2.3.4&&&255.0.0.0 10.0.0.0 => 1", // lpm without plen
		"table_delete dmac notanumber",
		"register_write ghost 0 1",
		"register_write r x 1",
		"table_add dmac forward zzz => 1",
		"meter_set_rates m 0 x y",
	}
	for _, cmd := range bad {
		if _, err := r.Exec(cmd); err == nil {
			t.Errorf("command %q should fail", cmd)
		}
	}
}

func TestExecAllReportsLine(t *testing.T) {
	r := newRT(t)
	err := r.ExecAll("# comment\n\ntable_add dmac forward 00:00:00:00:00:02 => 1\nbogus cmd\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("err = %v, want line 4", err)
	}
}

func TestParseValueForms(t *testing.T) {
	cases := []struct {
		tok   string
		width int
		want  uint64
	}{
		{"10", 16, 10},
		{"0x10", 16, 16},
		{"255.255.255.0", 0, 0xffffff00},
		{"0", 8, 0},
	}
	for _, c := range cases {
		v, err := parseValue(c.tok, c.width)
		if err != nil {
			t.Errorf("parseValue(%q): %v", c.tok, err)
			continue
		}
		if v.Uint64() != c.want {
			t.Errorf("parseValue(%q) = %#x, want %#x", c.tok, v.Uint64(), c.want)
		}
	}
	v, err := parseValue("aa:bb:cc:dd:ee:ff", 0)
	if err != nil || v.Width() != 48 || v.Uint64() != 0xaabbccddeeff {
		t.Errorf("MAC parse = %v, %v", v, err)
	}
	if _, err := parseValue("-5", 8); err == nil {
		t.Error("negative should fail")
	}
}

func TestExecRangeMatch(t *testing.T) {
	prog, err := parser.Parse("range", `
header_type h_t { fields { v : 16; } }
header h_t h;
parser start { extract(h); return ingress; }
action out(p) { modify_field(standard_metadata.egress_spec, p); }
table t { reads { h.v : range; } actions { out; } }
control ingress { apply(t); }
`)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := hlir.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("s", hl)
	if err != nil {
		t.Fatal(err)
	}
	r := New(sw)
	if _, err := r.Exec("table_add t out 100->200 => 3 5"); err != nil {
		t.Fatal(err)
	}
	outs, _, err := sw.Process([]byte{0x00, 150}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 3 {
		t.Fatalf("in-range: %+v", outs)
	}
	outs, _, _ = sw.Process([]byte{0x01, 0x00}, 0) // 256 > 200
	if len(outs) != 0 {
		t.Fatalf("out-of-range should miss: %+v", outs)
	}
	if _, err := r.Exec("table_add t out 100200 => 3 5"); err == nil {
		t.Error("range without -> should error")
	}
}

func TestExecValidMatchCLI(t *testing.T) {
	prog, err := parser.Parse("valid", `
header_type h_t { fields { v : 8; } }
header h_t a;
header h_t b;
parser start {
    extract(a);
    return select(latest.v) {
        1 : pb;
        default : ingress;
    }
}
parser pb { extract(b); return ingress; }
action out() { modify_field(standard_metadata.egress_spec, 2); }
table t { reads { valid(b) : exact; } actions { out; } }
control ingress { apply(t); }
`)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := hlir.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sim.New("s", hl)
	if err != nil {
		t.Fatal(err)
	}
	r := New(sw)
	if _, err := r.Exec("table_add t out 1 =>"); err != nil {
		t.Fatal(err)
	}
	outs, _, _ := sw.Process([]byte{1, 9}, 0)
	if len(outs) != 1 {
		t.Fatal("valid=1 should match when b extracted")
	}
	outs, _, _ = sw.Process([]byte{5}, 0)
	if len(outs) != 0 {
		t.Fatal("invalid b should miss")
	}
	if _, err := r.Exec("table_add t out maybe =>"); err == nil {
		t.Error("bad valid token should error")
	}
}
