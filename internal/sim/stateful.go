package sim

import (
	"fmt"
	"sync"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
)

// Stateful externs carry per-array mutexes: bmv2 serializes extern accesses,
// and these locks reproduce that model without serializing whole packets.
// They are independent of Switch.mu (always acquired while Process holds the
// read side, never the other way around, so ordering is acyclic).

// registerArray is the runtime state of one register declaration.
type registerArray struct {
	mu    sync.Mutex
	width int
	cells []bitfield.Value
}

// counterArray is the runtime state of one counter declaration.
type counterArray struct {
	mu      sync.Mutex
	kind    ast.CounterKind
	packets []uint64
	bytes   []uint64
}

// Meter colors, matching the P4 convention.
const (
	MeterGreen  = 0
	MeterYellow = 1
	MeterRed    = 2
)

// meterCell is a simple two-threshold packet/byte bucket: usage above the
// yellow threshold within the current window marks yellow, above the red
// threshold marks red. Windows advance on Tick.
type meterCell struct {
	used     uint64
	yellowAt uint64
	redAt    uint64
}

type meterArray struct {
	mu    sync.Mutex
	kind  ast.MeterKind
	cells []meterCell
}

func newMeterArray(kind ast.MeterKind, n int) *meterArray {
	m := &meterArray{kind: kind, cells: make([]meterCell, n)}
	for i := range m.cells {
		// Default thresholds are effectively unlimited until configured.
		m.cells[i] = meterCell{yellowAt: ^uint64(0), redAt: ^uint64(0)}
	}
	return m
}

// RegisterRead returns the value of one register cell.
func (sw *Switch) RegisterRead(name string, idx int) (bitfield.Value, error) {
	r, ok := sw.registers[name]
	if !ok {
		return bitfield.Value{}, fmt.Errorf("sim: no register %q", name)
	}
	if idx < 0 || idx >= len(r.cells) {
		return bitfield.Value{}, fmt.Errorf("sim: register %s index %d out of range", name, idx)
	}
	r.mu.Lock()
	v := r.cells[idx].Clone()
	r.mu.Unlock()
	return v, nil
}

// RegisterWrite stores a value into one register cell, resized to the
// register width. The cell buffer is overwritten in place so the stored value
// never aliases the caller's (Resize returns its receiver when widths match).
func (sw *Switch) RegisterWrite(name string, idx int, v bitfield.Value) error {
	r, ok := sw.registers[name]
	if !ok {
		return fmt.Errorf("sim: no register %q", name)
	}
	if idx < 0 || idx >= len(r.cells) {
		return fmt.Errorf("sim: register %s index %d out of range", name, idx)
	}
	r.mu.Lock()
	r.cells[idx].SetFrom(v)
	r.mu.Unlock()
	return nil
}

// countInc bumps a counter cell.
func (sw *Switch) countInc(name string, idx, packetBytes int) error {
	c, ok := sw.counters[name]
	if !ok {
		return fmt.Errorf("sim: no counter %q", name)
	}
	if idx < 0 || idx >= len(c.packets) {
		return fmt.Errorf("sim: counter %s index %d out of range", name, idx)
	}
	c.mu.Lock()
	c.packets[idx]++
	c.bytes[idx] += uint64(packetBytes)
	c.mu.Unlock()
	return nil
}

// CounterRead returns (packets, bytes) for one counter cell.
func (sw *Switch) CounterRead(name string, idx int) (uint64, uint64, error) {
	c, ok := sw.counters[name]
	if !ok {
		return 0, 0, fmt.Errorf("sim: no counter %q", name)
	}
	if idx < 0 || idx >= len(c.packets) {
		return 0, 0, fmt.Errorf("sim: counter %s index %d out of range", name, idx)
	}
	c.mu.Lock()
	p, b := c.packets[idx], c.bytes[idx]
	c.mu.Unlock()
	return p, b, nil
}

// CounterReset zeroes one counter cell.
func (sw *Switch) CounterReset(name string, idx int) error {
	c, ok := sw.counters[name]
	if !ok {
		return fmt.Errorf("sim: no counter %q", name)
	}
	if idx < 0 || idx >= len(c.packets) {
		return fmt.Errorf("sim: counter %s index %d out of range", name, idx)
	}
	c.mu.Lock()
	c.packets[idx], c.bytes[idx] = 0, 0
	c.mu.Unlock()
	return nil
}

// MeterSetRates configures the yellow and red thresholds (in packets or
// bytes per window, per the meter's kind) for one meter cell.
func (sw *Switch) MeterSetRates(name string, idx int, yellowAt, redAt uint64) error {
	m, ok := sw.meters[name]
	if !ok {
		return fmt.Errorf("sim: no meter %q", name)
	}
	if idx < 0 || idx >= len(m.cells) {
		return fmt.Errorf("sim: meter %s index %d out of range", name, idx)
	}
	m.mu.Lock()
	m.cells[idx].yellowAt = yellowAt
	m.cells[idx].redAt = redAt
	m.mu.Unlock()
	return nil
}

// MeterTick advances every cell of a meter to a new window, clearing usage.
func (sw *Switch) MeterTick(name string) error {
	m, ok := sw.meters[name]
	if !ok {
		return fmt.Errorf("sim: no meter %q", name)
	}
	m.mu.Lock()
	for i := range m.cells {
		m.cells[i].used = 0
	}
	m.mu.Unlock()
	return nil
}

// meterExecute records usage and returns the color.
func (sw *Switch) meterExecute(name string, idx, packetBytes int) (int, error) {
	m, ok := sw.meters[name]
	if !ok {
		return 0, fmt.Errorf("sim: no meter %q", name)
	}
	if idx < 0 || idx >= len(m.cells) {
		return 0, fmt.Errorf("sim: meter %s index %d out of range", name, idx)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cell := &m.cells[idx]
	if m.kind == ast.MeterBytes {
		cell.used += uint64(packetBytes)
	} else {
		cell.used++
	}
	switch {
	case cell.used > cell.redAt:
		return MeterRed, nil
	case cell.used > cell.yellowAt:
		return MeterYellow, nil
	default:
		return MeterGreen, nil
	}
}
