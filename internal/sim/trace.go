package sim

// TableApply records one table application.
type TableApply struct {
	Table  string
	Egress bool // applied in the egress pipeline
	Hit    bool
}

// Trace records the work one packet incurred across all of its pipeline
// passes. The paper's evaluation is computed from these fields:
//
//   - Table 1 counts Applies (match-action stages incurred);
//   - Table 4 uses TernaryMatches / TernaryBitsTotal / TernaryBitsActive;
//   - §6.4's discussion uses Resubmits and Recirculates.
type Trace struct {
	Passes       int
	Extracts     int
	Applies      int      // number of match-action stages executed
	Primitives   int      // primitive invocations
	Tables       []string // applied tables, in order
	ApplyLog     []TableApply
	Hits, Misses int

	TernaryMatches    int // applied tables with ternary reads that hit
	TernaryBitsTotal  int // summed widths of ternary-match reads (incl. wildcards)
	TernaryBitsActive int // summed popcounts of matched entries' masks

	Resubmits    int
	Recirculates int
	ClonesI2E    int
	ClonesE2E    int

	Outputs []Output
}

// recordApply notes one table application and its match result.
func (tr *Trace) recordApply(name string, t *table, entry *Entry, egress bool) {
	tr.Applies++
	tr.Tables = append(tr.Tables, name)
	tr.ApplyLog = append(tr.ApplyLog, TableApply{Table: name, Egress: egress, Hit: entry != nil})
	if entry == nil {
		tr.Misses++
		return
	}
	tr.Hits++
	if t.ternaryWidth > 0 {
		tr.TernaryMatches++
		tr.TernaryBitsTotal += t.ternaryWidth
		tr.TernaryBitsActive += entry.activeMaskBits()
	}
}
