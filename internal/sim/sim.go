// Package sim implements a software P4 target functionally equivalent to the
// bmv2 simple_switch the paper evaluates on: a parser state machine, ingress
// and egress match-action pipelines, a traffic manager handling resubmit,
// recirculate and clone, and a deparser with calculated-field (checksum)
// updates.
//
// Processing is synchronous: Process takes one packet and returns every
// packet the switch emits, plus a Trace recording the work performed (tables
// applied, ternary bits matched, resubmit/recirculate counts). The trace is
// what the paper's evaluation tables are computed from.
package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// MaxPasses bounds parser re-entries per packet (resubmit + recirculate +
// clones), preventing a misconfigured program from looping forever.
const MaxPasses = 256

// Output is one packet emitted by the switch.
type Output struct {
	Port int
	Data []byte
}

// Switch is a software P4 target loaded with one program.
type Switch struct {
	Name string
	prog *hlir.Program

	tables    map[string]*table
	registers map[string]*registerArray
	counters  map[string]*counterArray
	meters    map[string]*meterArray
	// mirrors maps clone session IDs to egress ports.
	mirrors map[int]int

	stats Stats
}

// Stats aggregates switch-lifetime counters.
type Stats struct {
	PacketsIn      int
	PacketsOut     int
	PacketsDropped int
	Resubmits      int
	Recirculates   int
	Clones         int
	TableApplies   int
}

// New creates a switch running the given resolved program.
func New(name string, prog *hlir.Program) (*Switch, error) {
	sw := &Switch{
		Name:      name,
		prog:      prog,
		tables:    map[string]*table{},
		registers: map[string]*registerArray{},
		counters:  map[string]*counterArray{},
		meters:    map[string]*meterArray{},
		mirrors:   map[int]int{},
	}
	for _, tname := range prog.TableOrder {
		decl := prog.Tables[tname]
		tbl, err := newTable(prog, decl)
		if err != nil {
			return nil, err
		}
		sw.tables[tname] = tbl
	}
	for name, r := range prog.Registers {
		n := r.InstanceCount
		if n == 0 {
			n = 1
		}
		ra := &registerArray{width: r.Width, cells: make([]bitfield.Value, n)}
		for i := range ra.cells {
			ra.cells[i] = bitfield.New(r.Width)
		}
		sw.registers[name] = ra
	}
	for name, c := range prog.Counters {
		n := c.InstanceCount
		if n == 0 {
			n = 1
		}
		sw.counters[name] = &counterArray{kind: c.Kind, packets: make([]uint64, n), bytes: make([]uint64, n)}
	}
	for name, m := range prog.Meters {
		n := m.InstanceCount
		if n == 0 {
			n = 1
		}
		sw.meters[name] = newMeterArray(m.Kind, n)
	}
	return sw, nil
}

// Program returns the loaded program.
func (sw *Switch) Program() *hlir.Program { return sw.prog }

// Stats returns a copy of the lifetime counters.
func (sw *Switch) Stats() Stats { return sw.stats }

// SetMirror maps a clone session ID to an egress port.
func (sw *Switch) SetMirror(session, port int) { sw.mirrors[session] = port }

// pass describes one trip through (parser →) ingress/egress.
type pass struct {
	data         []byte
	port         int
	preserved    map[ast.FieldRef]bitfield.Value
	instanceType uint64
	// egressOnly passes (clones) skip parser+ingress and carry state.
	egressOnly bool
	state      *packetState
	egressPort int
}

// bmv2 instance_type values.
const (
	instNormal      = 0
	instCloneI2E    = 1
	instCloneE2E    = 2
	instRecirculate = 4
	instResubmit    = 6
)

// Process runs one packet through the switch and returns all emitted packets
// and a trace of the work performed.
func (sw *Switch) Process(data []byte, port int) ([]Output, *Trace, error) {
	sw.stats.PacketsIn++
	tr := &Trace{}
	queue := []pass{{data: data, port: port, instanceType: instNormal}}
	var outputs []Output
	for len(queue) > 0 {
		if tr.Passes >= MaxPasses {
			return nil, nil, fmt.Errorf("sim: packet exceeded %d pipeline passes", MaxPasses)
		}
		tr.Passes++
		p := queue[0]
		queue = queue[1:]
		emitted, next, err := sw.runPass(p, tr)
		if err != nil {
			return nil, nil, err
		}
		outputs = append(outputs, emitted...)
		queue = append(queue, next...)
	}
	sw.stats.PacketsOut += len(outputs)
	if len(outputs) == 0 {
		sw.stats.PacketsDropped++
	}
	tr.Outputs = outputs
	return outputs, tr, nil
}

// runPass executes one pipeline pass and returns emitted packets plus any
// follow-on passes (resubmits, recirculations, clones).
func (sw *Switch) runPass(p pass, tr *Trace) ([]Output, []pass, error) {
	var ps *packetState
	var followOn []pass

	if p.egressOnly {
		ps = p.state
		ps.setStdMeta(hlir.FieldEgressPort, uint64(p.egressPort))
		ps.setStdMeta(hlir.FieldEgressSpec, uint64(p.egressPort))
	} else {
		ps = newPacketState(sw, p.data, p.port)
		ps.setStdMeta(hlir.FieldInstanceType, p.instanceType)
		ps.restorePreserved(p.preserved)
		if err := sw.parse(ps, tr); err != nil {
			return nil, nil, err
		}
		if ing, ok := sw.prog.Controls[ast.ControlIngress]; ok {
			if err := sw.runStmts(ing.Body, ps, tr); err != nil {
				return nil, nil, err
			}
		}
		// End of ingress: resubmit wins over forwarding.
		if ps.resubmitRaised {
			sw.stats.Resubmits++
			tr.Resubmits++
			preserved, err := ps.capturePreserved(ps.resubmitList)
			if err != nil {
				return nil, nil, err
			}
			return nil, []pass{{data: p.data, port: p.port, preserved: preserved, instanceType: instResubmit}}, nil
		}
		if ps.cloneI2ERaised {
			sw.stats.Clones++
			tr.ClonesI2E++
			mirrorPort, ok := sw.mirrors[ps.cloneI2ESession]
			if ok {
				cl := ps.clone()
				cl.setStdMeta(hlir.FieldInstanceType, instCloneI2E)
				// Clone preserves only the requested metadata on top of a
				// fresh metadata context? bmv2 copies all metadata for i2e
				// clones; we keep the full copy, matching bmv2.
				followOn = append(followOn, pass{egressOnly: true, state: cl, egressPort: mirrorPort})
			}
		}
		spec := ps.stdMeta(hlir.FieldEgressSpec).Uint64()
		if spec == hlir.DropSpec {
			return nil, followOn, nil
		}
		ps.setStdMeta(hlir.FieldEgressPort, spec)
	}

	// Egress pipeline.
	ps.inEgress = true
	if eg, ok := sw.prog.Controls[ast.ControlEgress]; ok {
		if err := sw.runStmts(eg.Body, ps, tr); err != nil {
			return nil, nil, err
		}
	}
	if ps.cloneE2ERaised {
		sw.stats.Clones++
		tr.ClonesE2E++
		if mirrorPort, ok := sw.mirrors[ps.cloneE2ESession]; ok {
			cl := ps.clone()
			cl.cloneE2ERaised = false
			cl.recircRaised = false
			cl.dropped = false
			cl.setStdMeta(hlir.FieldInstanceType, instCloneE2E)
			followOn = append(followOn, pass{egressOnly: true, state: cl, egressPort: mirrorPort})
		}
	}
	outBytes, err := sw.deparse(ps)
	if err != nil {
		return nil, nil, err
	}
	if ps.recircRaised {
		sw.stats.Recirculates++
		tr.Recirculates++
		preserved, err := ps.capturePreserved(ps.recircList)
		if err != nil {
			return nil, nil, err
		}
		return nil, append(followOn, pass{data: outBytes, port: int(ps.stdMeta(hlir.FieldIngressPort).Uint64()), preserved: preserved, instanceType: instRecirculate}), nil
	}
	if ps.dropped {
		return nil, followOn, nil
	}
	port := int(ps.stdMeta(hlir.FieldEgressPort).Uint64())
	return []Output{{Port: port, Data: outBytes}}, followOn, nil
}
