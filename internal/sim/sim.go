// Package sim implements a software P4 target functionally equivalent to the
// bmv2 simple_switch the paper evaluates on: a parser state machine, ingress
// and egress match-action pipelines, a traffic manager handling resubmit,
// recirculate and clone, and a deparser with calculated-field (checksum)
// updates.
//
// Processing is synchronous: Process takes one packet and returns every
// packet the switch emits, plus a Trace recording the work performed (tables
// applied, ternary bits matched, resubmit/recirculate counts). The trace is
// what the paper's evaluation tables are computed from.
//
// Concurrency: Process is safe to call from multiple goroutines, and
// ProcessBatch fans a packet slice across GOMAXPROCS workers. Control-plane
// mutations (TableAdd, TableDelete, SetMirror, ...) serialize against
// in-flight packets on a switch-wide RWMutex; stateful externs (registers,
// counters, meters) take fine-grained per-array locks so their updates are
// serialized exactly as bmv2 serializes extern access. See DESIGN.md
// ("Concurrency model & fast path").
package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// MaxPasses bounds parser re-entries per packet (resubmit + recirculate +
// clones), preventing a misconfigured program from looping forever.
const MaxPasses = 256

// Output is one packet emitted by the switch.
type Output struct {
	Port int
	Data []byte
}

// Switch is a software P4 target loaded with one program.
type Switch struct {
	Name string
	prog *hlir.Program
	lay  *layout

	// mu guards control-plane state (table entries, defaults, mirrors)
	// against in-flight packets: Process holds the read side for the whole
	// packet, control-plane mutators take the write side.
	mu      sync.RWMutex
	tables  map[string]*table
	mirrors map[int]int // clone session ID -> egress port

	// Stateful externs carry their own fine-grained locks (see stateful.go);
	// the maps themselves are immutable after New.
	registers map[string]*registerArray
	counters  map[string]*counterArray
	meters    map[string]*meterArray

	stats   stats
	metrics switchMetrics
	pool    sync.Pool

	// Fault containment (fault.go). attrib/injector/faultHook are written
	// under mu's write side and read under the read side Process holds; the
	// quarantine table is swapped atomically so enforcement never locks.
	attrib    attribution
	injector  Injector
	faultHook func(*PacketFault)
	quar      atomic.Pointer[quarTable]

	// Fused fast path (fastpath.go). fast is the installed handler, loaded
	// once per packet; gen counts control-plane mutations so compiled plans
	// can detect staleness without any extra synchronization.
	fast atomic.Pointer[fastBox]
	gen  atomic.Uint64
}

// Stats aggregates switch-lifetime counters.
type Stats struct {
	PacketsIn      int
	PacketsOut     int
	PacketsDropped int
	Resubmits      int
	Recirculates   int
	Clones         int
	TableApplies   int
}

// stats is the internal atomic representation, so concurrent Process calls
// never contend on a lock just to count.
type stats struct {
	packetsIn      atomic.Int64
	packetsOut     atomic.Int64
	packetsDropped atomic.Int64
	resubmits      atomic.Int64
	recirculates   atomic.Int64
	clones         atomic.Int64
	tableApplies   atomic.Int64
}

// New creates a switch running the given resolved program.
func New(name string, prog *hlir.Program) (*Switch, error) {
	sw := &Switch{
		Name:      name,
		prog:      prog,
		lay:       newLayout(prog),
		tables:    map[string]*table{},
		registers: map[string]*registerArray{},
		counters:  map[string]*counterArray{},
		meters:    map[string]*meterArray{},
		mirrors:   map[int]int{},
	}
	for _, tname := range prog.TableOrder {
		decl := prog.Tables[tname]
		tbl, err := newTable(sw.lay, decl)
		if err != nil {
			return nil, err
		}
		sw.tables[tname] = tbl
	}
	for name, r := range prog.Registers {
		n := r.InstanceCount
		if n == 0 {
			n = 1
		}
		ra := &registerArray{width: r.Width, cells: make([]bitfield.Value, n)}
		for i := range ra.cells {
			ra.cells[i] = bitfield.New(r.Width)
		}
		sw.registers[name] = ra
	}
	for name, c := range prog.Counters {
		n := c.InstanceCount
		if n == 0 {
			n = 1
		}
		sw.counters[name] = &counterArray{kind: c.Kind, packets: make([]uint64, n), bytes: make([]uint64, n)}
	}
	for name, m := range prog.Meters {
		n := m.InstanceCount
		if n == 0 {
			n = 1
		}
		sw.meters[name] = newMeterArray(m.Kind, n)
	}
	actionNames := make([]string, 0, len(prog.Actions))
	for name := range prog.Actions {
		actionNames = append(actionNames, name)
	}
	sw.metrics.init(actionNames)
	sw.pool.New = func() any { return newPacketState(sw) }
	return sw, nil
}

// Program returns the loaded program.
func (sw *Switch) Program() *hlir.Program { return sw.prog }

// Stats returns a snapshot of the lifetime counters.
func (sw *Switch) Stats() Stats {
	return Stats{
		PacketsIn:      int(sw.stats.packetsIn.Load()),
		PacketsOut:     int(sw.stats.packetsOut.Load()),
		PacketsDropped: int(sw.stats.packetsDropped.Load()),
		Resubmits:      int(sw.stats.resubmits.Load()),
		Recirculates:   int(sw.stats.recirculates.Load()),
		Clones:         int(sw.stats.clones.Load()),
		TableApplies:   int(sw.stats.tableApplies.Load()),
	}
}

// SetMirror maps a clone session ID to an egress port.
func (sw *Switch) SetMirror(session, port int) {
	sw.mu.Lock()
	sw.mirrors[session] = port
	sw.bumpGen()
	sw.mu.Unlock()
}

// pass describes one trip through (parser →) ingress/egress.
type pass struct {
	data         []byte
	port         int
	preserved    map[ast.FieldRef]bitfield.Value
	instanceType uint64
	// egressOnly passes (clones) skip parser+ingress and carry state.
	egressOnly bool
	state      *packetState
	egressPort int
}

// bmv2 instance_type values.
const (
	instNormal      = 0
	instCloneI2E    = 1
	instCloneE2E    = 2
	instRecirculate = 4
	instResubmit    = 6
)

// Process runs one packet through the switch and returns all emitted packets
// and a trace of the work performed. It is safe for concurrent use.
func (sw *Switch) Process(data []byte, port int) ([]Output, *Trace, error) {
	start := time.Now() //hp4:allow hotpath (the latency histogram is the one sanctioned clock read)
	outputs, tr, err := sw.process(data, port)
	sw.metrics.recordLatency(time.Since(start)) //hp4:allow hotpath (see above)
	return outputs, tr, err
}

// process is Process without the latency measurement wrapped around it.
// Every per-packet failure — including recovered panics — surfaces as a
// *PacketFault; the switch itself never dies on data-plane input.
func (sw *Switch) process(data []byte, port int) ([]Output, *Trace, error) {
	sw.stats.packetsIn.Add(1)
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	maxPasses := MaxPasses
	if inj := sw.injector; inj != nil {
		inj.Delay()
		if b := inj.PassBound(); b > 0 && b < maxPasses {
			maxPasses = b
		}
	} else if res, ok := sw.runFast(data, port); ok {
		// The fused fast path fully handled the packet. Keep the pass-type
		// and lifetime counters conserved with the interpreted path: one
		// normal pass, one resubmit pass per parse resubmission, one
		// recirculate pass per crossed virtual link, and one egress-to-egress
		// clone pass per multicast step.
		sw.metrics.recordPass(instNormal)
		for i := 0; i < res.Resubmits; i++ {
			sw.metrics.recordPass(instResubmit)
		}
		for i := 0; i < res.Recirculates; i++ {
			sw.metrics.recordPass(instRecirculate)
		}
		for i := 0; i < res.Clones; i++ {
			sw.metrics.recordPass(instCloneE2E)
		}
		sw.stats.resubmits.Add(int64(res.Resubmits))
		if res.Recirculates > 0 {
			sw.stats.recirculates.Add(int64(res.Recirculates))
		}
		if res.Clones > 0 {
			sw.stats.clones.Add(int64(res.Clones))
		}
		sw.stats.packetsOut.Add(int64(len(res.Outputs)))
		if len(res.Outputs) == 0 {
			sw.stats.packetsDropped.Add(1)
		}
		tr := &Trace{
			Passes:       1 + res.Resubmits + res.Recirculates + res.Clones,
			Resubmits:    res.Resubmits,
			Recirculates: res.Recirculates,
			ClonesE2E:    res.Clones,
			Outputs:      res.Outputs,
		}
		return res.Outputs, tr, nil
	}
	tr := &Trace{}
	var queueArr [2]pass
	queue := append(queueArr[:0], pass{data: data, port: port, instanceType: instNormal})
	var outputs []Output
	// lastAttr remembers the most recent attribution value observed across
	// passes, so a pass-bound fault is pinned on the vdev driving the loop.
	var lastAttr uint64
	for len(queue) > 0 {
		if tr.Passes >= maxPasses {
			sw.releaseQueued(queue)
			return nil, nil, sw.fault(&PacketFault{
				Kind: FaultPassBound, Port: port, Attr: lastAttr,
				Msg: fmt.Sprintf("sim: packet exceeded %d pipeline passes", maxPasses), //hp4:allow hotpath (fault path)
			})
		}
		tr.Passes++
		p := queue[0]
		queue = queue[1:]
		if p.egressOnly && p.state != nil {
			// Clone passes carry their instance type in the cloned state.
			sw.metrics.recordPass(p.state.stdMetaUint(hlir.FieldInstanceType))
		} else {
			sw.metrics.recordPass(p.instanceType)
		}
		emitted, next, attr, err := sw.runPassContained(p, tr)
		if attr != 0 {
			lastAttr = attr
		}
		if err != nil {
			sw.releaseQueued(queue)
			if f, ok := err.(*PacketFault); ok {
				return nil, nil, sw.fault(f)
			}
			return nil, nil, err
		}
		outputs = append(outputs, emitted...)
		queue = append(queue, next...)
	}
	sw.stats.packetsOut.Add(int64(len(outputs)))
	if len(outputs) == 0 {
		sw.stats.packetsDropped.Add(1)
	}
	tr.Outputs = outputs
	return outputs, tr, nil
}

// runPassContained executes one pass with panic recovery: a panic anywhere
// in parse/pipeline/deparse becomes a FaultPanic. The panicking packet state
// is abandoned rather than repooled (it may be mid-mutation), as are any
// clone states staged for follow-on passes; both are reclaimed by GC and the
// pool re-allocates on demand.
func (sw *Switch) runPassContained(p pass, tr *Trace) (outputs []Output, next []pass, attr uint64, err error) {
	var cur *packetState
	defer func() {
		if r := recover(); r != nil {
			if cur != nil {
				attr = sw.attrOf(cur)
			}
			outputs, next = nil, nil
			err = &PacketFault{
				Kind: FaultPanic, Port: p.port, Attr: attr,
				Msg: fmt.Sprintf("sim: recovered panic in pipeline: %v", r), //hp4:allow hotpath (panic recovery path)
			}
		}
	}()
	return sw.runPass(p, tr, &cur)
}

// releaseQueued returns the states of abandoned clone passes to the pool.
func (sw *Switch) releaseQueued(queue []pass) {
	for _, p := range queue {
		if p.state != nil {
			sw.putState(p.state)
		}
	}
}

// failPass reads the attribution value, repools the state, and wraps a stage
// error into a PacketFault of the given kind. The attribution must be read
// before the state returns to the pool (repooled states are reused
// concurrently).
func (sw *Switch) failPass(ps *packetState, kind FaultKind, port int, err error) (uint64, *PacketFault) {
	attr := sw.attrOf(ps)
	sw.putState(ps)
	return attr, &PacketFault{Kind: kind, Port: port, Attr: attr, Msg: err.Error(), err: err}
}

// dropQuarantined repools the state of a pass aborted by quarantine
// enforcement and counts the drop. Not a fault: quarantine drops are the
// containment working as intended.
func (sw *Switch) dropQuarantined(ps *packetState) uint64 {
	attr := sw.attrOf(ps)
	sw.metrics.quarDrops.Add(1)
	sw.putState(ps)
	return attr
}

// runPass executes one pipeline pass and returns emitted packets, follow-on
// passes (resubmits, recirculations, clones), and the attribution value
// observed for the pass. The pass's packet state is returned to the pool
// before runPass returns; follow-on clone passes carry their own freshly
// cloned states. *cur tracks the live state so the panic recovery in
// runPassContained can attribute a fault raised mid-pass.
func (sw *Switch) runPass(p pass, tr *Trace, cur **packetState) ([]Output, []pass, uint64, error) {
	var ps *packetState
	var followOn []pass

	if p.egressOnly {
		ps = p.state
		*cur = ps
		ps.setStdMeta(hlir.FieldEgressPort, uint64(p.egressPort))
		ps.setStdMeta(hlir.FieldEgressSpec, uint64(p.egressPort))
	} else {
		ps = sw.getState(p.data, p.port)
		*cur = ps
		ps.setStdMeta(hlir.FieldInstanceType, p.instanceType)
		if err := ps.restorePreserved(p.preserved); err != nil {
			attr, f := sw.failPass(ps, FaultPipeline, p.port, err)
			return nil, nil, attr, f
		}
		if err := sw.parse(ps, tr); err != nil {
			attr, f := sw.failPass(ps, FaultParse, p.port, err)
			return nil, nil, attr, f
		}
		if ing, ok := sw.prog.Controls[ast.ControlIngress]; ok {
			if err := sw.runStmts(ing.Body, ps, tr); err != nil {
				if errors.Is(err, errQuarantined) {
					return nil, nil, sw.dropQuarantined(ps), nil
				}
				attr, f := sw.failPass(ps, FaultPipeline, p.port, err)
				return nil, nil, attr, f
			}
		}
		// End of ingress: resubmit wins over forwarding.
		if ps.resubmitRaised {
			sw.stats.resubmits.Add(1)
			tr.Resubmits++
			preserved, err := ps.capturePreserved(ps.resubmitList)
			attr := sw.attrOf(ps)
			sw.putState(ps)
			if err != nil {
				return nil, nil, attr, &PacketFault{Kind: FaultPipeline, Port: p.port, Attr: attr, Msg: err.Error(), err: err}
			}
			return nil, []pass{{data: p.data, port: p.port, preserved: preserved, instanceType: instResubmit}}, attr, nil
		}
		if ps.cloneI2ERaised {
			sw.stats.clones.Add(1)
			tr.ClonesI2E++
			mirrorPort, ok := sw.mirrors[ps.cloneI2ESession]
			if ok {
				// cloneForEgress clears the parent's pending drop/resubmit/
				// recirculate/clone flags: an ingress drop must not drop the
				// mirror copy. bmv2 copies all metadata for i2e clones; we
				// keep the full copy, matching bmv2.
				cl := ps.cloneForEgress()
				cl.setStdMeta(hlir.FieldInstanceType, instCloneI2E)
				followOn = append(followOn, pass{egressOnly: true, state: cl, egressPort: mirrorPort})
			}
		}
		spec := ps.stdMetaUint(hlir.FieldEgressSpec)
		if spec == hlir.DropSpec {
			attr := sw.attrOf(ps)
			sw.putState(ps)
			return nil, followOn, attr, nil
		}
		ps.setStdMeta(hlir.FieldEgressPort, spec)
	}

	// Egress pipeline.
	ps.inEgress = true
	if eg, ok := sw.prog.Controls[ast.ControlEgress]; ok {
		if err := sw.runStmts(eg.Body, ps, tr); err != nil {
			sw.releaseQueued(followOn)
			if errors.Is(err, errQuarantined) {
				return nil, nil, sw.dropQuarantined(ps), nil
			}
			attr, f := sw.failPass(ps, FaultPipeline, p.port, err)
			return nil, nil, attr, f
		}
	}
	if ps.cloneE2ERaised {
		sw.stats.clones.Add(1)
		tr.ClonesE2E++
		if mirrorPort, ok := sw.mirrors[ps.cloneE2ESession]; ok {
			cl := ps.cloneForEgress()
			cl.setStdMeta(hlir.FieldInstanceType, instCloneE2E)
			followOn = append(followOn, pass{egressOnly: true, state: cl, egressPort: mirrorPort})
		}
	}
	outBytes, err := sw.deparse(ps)
	if err != nil {
		sw.releaseQueued(followOn)
		attr, f := sw.failPass(ps, FaultDeparse, p.port, err)
		return nil, nil, attr, f
	}
	if ps.recircRaised {
		sw.stats.recirculates.Add(1)
		tr.Recirculates++
		preserved, err := ps.capturePreserved(ps.recircList)
		port := int(ps.stdMetaUint(hlir.FieldIngressPort))
		attr := sw.attrOf(ps)
		sw.putState(ps)
		if err != nil {
			sw.releaseQueued(followOn)
			return nil, nil, attr, &PacketFault{Kind: FaultPipeline, Port: p.port, Attr: attr, Msg: err.Error(), err: err}
		}
		return nil, append(followOn, pass{data: outBytes, port: port, preserved: preserved, instanceType: instRecirculate}), attr, nil
	}
	dropped := ps.dropped
	port := int(ps.stdMetaUint(hlir.FieldEgressPort))
	attr := sw.attrOf(ps)
	sw.putState(ps)
	if dropped {
		return nil, followOn, attr, nil
	}
	return []Output{{Port: port, Data: outBytes}}, followOn, attr, nil
}
