package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
)

// MatchParam is one match key component of a table entry.
type MatchParam struct {
	Kind      ast.MatchKind
	Value     bitfield.Value
	Mask      bitfield.Value // ternary
	PrefixLen int            // lpm
	Hi        bitfield.Value // range upper bound (Value is the lower)
	ValidWant bool           // valid matches
}

// Entry is one installed table entry.
type Entry struct {
	Handle   int
	Params   []MatchParam
	Action   string
	Args     []bitfield.Value
	Priority int // lower value = higher precedence (bmv2 convention)

	// prefixSum caches totalPrefix() at insert time so lookup never
	// recomputes it per candidate.
	prefixSum int

	// hits counts lookups this entry has won. Entries are shared by pointer
	// (entries slice, exact and LPM indexes), so the counter is atomic; the
	// struct must not be copied once installed.
	hits atomic.Int64
}

// readInfo is one precomputed match key accessor.
type readInfo struct {
	kind   ast.MatchKind
	field  ast.FieldRef  // field reads
	header ast.HeaderRef // valid reads
	loc    fieldLoc      // resolved location for field reads
	width  int
}

// table is the runtime state of one match-action table.
//
// entries is kept sorted by (Priority asc, prefixSum desc, Handle asc) — the
// match precedence order — so lookup can return the first matching entry.
// All-exact tables additionally keep a hash index over concatenated key
// bytes, and single-field LPM tables (the router's ipv4_lpm shape) keep a
// per-prefix-length hash index walked longest-prefix-first.
type table struct {
	decl      *ast.Table
	lay       *layout
	reads     []readInfo
	keyWidths []int // width of each read key
	allExact  bool
	singleLPM bool

	entries    []*Entry
	exactIndex map[string]*Entry // fast path when allExact
	lpm        *lpmIndex         // non-nil while usable (uniform priorities)
	lpmPrio    int
	lpmPrioSet bool
	nextHandle int

	defaultAction string
	defaultArgs   []bitfield.Value

	// ternaryWidth is the summed width of ternary reads, for Table 4.
	ternaryWidth int

	metrics tableMetrics
}

// lpmIndex is a per-prefix-length hash index for single-field LPM tables.
type lpmIndex struct {
	byLen map[int]map[string]*Entry
	lens  []int // sorted descending: longest prefix probed first
}

func newTable(lay *layout, decl *ast.Table) (*table, error) {
	t := &table{decl: decl, lay: lay, allExact: true, exactIndex: map[string]*Entry{}}
	for _, r := range decl.Reads {
		ri := readInfo{kind: r.Match}
		if r.Match == ast.MatchValid {
			ri.header = *r.Header
			ri.width = 1
		} else {
			loc, err := lay.fieldLoc(*r.Field)
			if err != nil {
				return nil, fmt.Errorf("table %s: %w", decl.Name, err)
			}
			ri.field = *r.Field
			ri.loc = loc
			ri.width = loc.width
		}
		t.reads = append(t.reads, ri)
		t.keyWidths = append(t.keyWidths, ri.width)
		if r.Match != ast.MatchExact && r.Match != ast.MatchValid {
			t.allExact = false
		}
		if r.Match == ast.MatchTernary {
			t.ternaryWidth += ri.width
		}
	}
	t.singleLPM = len(decl.Reads) == 1 && decl.Reads[0].Match == ast.MatchLPM
	if t.singleLPM {
		t.lpm = &lpmIndex{byLen: map[int]map[string]*Entry{}}
	}
	if decl.Default != "" {
		t.defaultAction = decl.Default
	}
	return t, nil
}

// appendKeyBytes appends the packet's concatenated key bytes for this table,
// in the exactKeyString format (component bytes separated by 0xfe).
func (t *table) appendKeyBytes(buf []byte, ps *packetState) ([]byte, error) {
	for i := range t.reads {
		r := &t.reads[i]
		if r.kind == ast.MatchValid {
			slot, err := ps.resolveHeaderRef(r.header)
			if err != nil {
				return nil, err
			}
			b := byte(0)
			if ps.headers[slot].valid {
				b = 1
			}
			buf = append(buf, b, 0xfe)
			continue
		}
		src, err := ps.fieldSource(r.loc, r.field.Index)
		if err != nil {
			return nil, err
		}
		buf = src.AppendSliceTo(buf, r.loc.off, r.width)
		buf = append(buf, 0xfe)
	}
	return buf, nil
}

// keyOf extracts the current packet's key values for this table into the
// packet state's reusable scratch.
func (t *table) keyOf(ps *packetState) ([]bitfield.Value, error) {
	if cap(ps.keyVals) < len(t.reads) {
		ps.keyVals = make([]bitfield.Value, len(t.reads))
	}
	key := ps.keyVals[:len(t.reads)]
	for i := range t.reads {
		r := &t.reads[i]
		if r.kind == ast.MatchValid {
			slot, err := ps.resolveHeaderRef(r.header)
			if err != nil {
				return nil, err
			}
			if key[i].Width() != 1 {
				key[i] = bitfield.New(1)
			}
			if ps.headers[slot].valid {
				key[i].SetUint(1)
			} else {
				key[i].SetUint(0)
			}
			continue
		}
		src, err := ps.fieldSource(r.loc, r.field.Index)
		if err != nil {
			return nil, err
		}
		src.SliceInto(&key[i], r.loc.off, r.width)
	}
	return key, nil
}

func exactKeyString(key []bitfield.Value) string {
	s := make([]byte, 0, 64)
	for _, v := range key {
		s = v.AppendSliceTo(s, 0, v.Width())
		s = append(s, 0xfe) // separator
	}
	return string(s)
}

// lookup finds the highest-precedence matching entry, or nil on miss.
func (t *table) lookup(ps *packetState) (*Entry, error) {
	if len(t.entries) == 0 {
		return nil, nil
	}
	if t.allExact {
		buf, err := t.appendKeyBytes(ps.keyBuf[:0], ps)
		if err != nil {
			return nil, err
		}
		ps.keyBuf = buf
		return t.exactIndex[string(buf)], nil
	}
	if t.singleLPM && t.lpm != nil {
		r := &t.reads[0]
		src, err := ps.fieldSource(r.loc, r.field.Index)
		if err != nil {
			return nil, err
		}
		buf := src.AppendSliceTo(ps.keyBuf[:0], r.loc.off, r.width)
		ps.keyBuf = buf
		pad := len(buf)*8 - r.width
		// Probe longest prefix first; masking is monotone (lens descend), so
		// each probe only zeroes a few more tail bits of the same buffer.
		for _, plen := range t.lpm.lens {
			zeroTailBits(buf, pad+plen)
			if e, ok := t.lpm.byLen[plen][string(buf)]; ok {
				return e, nil
			}
		}
		return nil, nil
	}
	key, err := t.keyOf(ps)
	if err != nil {
		return nil, err
	}
	// entries is sorted by precedence, so the first match wins.
	for _, e := range t.entries {
		if e.matches(key) {
			return e, nil
		}
	}
	return nil, nil
}

// zeroTailBits clears every bit at absolute position >= fromBit.
func zeroTailBits(buf []byte, fromBit int) {
	i := fromBit / 8
	if i >= len(buf) {
		return
	}
	if rem := fromBit % 8; rem > 0 {
		buf[i] &= 0xff << (8 - rem)
		i++
	}
	for ; i < len(buf); i++ {
		buf[i] = 0
	}
}

func (e *Entry) matches(key []bitfield.Value) bool {
	for i, p := range e.Params {
		k := key[i]
		switch p.Kind {
		case ast.MatchExact:
			if !k.Equal(p.Value) {
				return false
			}
		case ast.MatchTernary:
			if !k.MatchTernary(p.Value, p.Mask) {
				return false
			}
		case ast.MatchLPM:
			if !k.MatchPrefix(p.Value, p.PrefixLen) {
				return false
			}
		case ast.MatchRange:
			if !k.InRange(p.Value, p.Hi) {
				return false
			}
		case ast.MatchValid:
			want := uint64(0)
			if p.ValidWant {
				want = 1
			}
			if k.Width() != 1 || k.UintAt(0, 1) != want {
				return false
			}
		}
	}
	return true
}

// totalPrefix sums LPM prefix lengths, for longest-prefix precedence.
func (e *Entry) totalPrefix() int {
	n := 0
	for _, p := range e.Params {
		if p.Kind == ast.MatchLPM {
			n += p.PrefixLen
		}
	}
	return n
}

// activeMaskBits counts mask bits actively compared by this entry's ternary
// params (Table 4's "active" column).
func (e *Entry) activeMaskBits() int {
	n := 0
	for _, p := range e.Params {
		if p.Kind == ast.MatchTernary {
			n += p.Mask.PopCount()
		}
	}
	return n
}

// entryLess is the match precedence order: lower Priority wins; ties broken
// by longest summed prefix (for LPM tables), then by insertion order.
func entryLess(a, b *Entry) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	if a.prefixSum != b.prefixSum {
		return a.prefixSum > b.prefixSum
	}
	return a.Handle < b.Handle
}

// --- runtime API ---

// errNoTable formats the common unknown-table error.
func (sw *Switch) table(name string) (*table, error) {
	t, ok := sw.tables[name]
	if !ok {
		return nil, fmt.Errorf("sim: no table %q", name)
	}
	return t, nil
}

// TableAdd installs an entry and returns its handle. The params must line up
// with the table's reads; action args line up with the action's parameters.
// Inserting a second entry with the same exact-match key is rejected.
func (sw *Switch) TableAdd(tableName, action string, params []MatchParam, args []bitfield.Value, priority int) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	t, err := sw.table(tableName)
	if err != nil {
		return 0, err
	}
	if len(params) != len(t.decl.Reads) {
		return 0, fmt.Errorf("sim: table %s wants %d match params, got %d", tableName, len(t.decl.Reads), len(params))
	}
	act, ok := sw.prog.Actions[action]
	if !ok {
		return 0, fmt.Errorf("sim: no action %q", action)
	}
	if !contains(t.decl.Actions, action) {
		return 0, fmt.Errorf("sim: table %s does not allow action %q", tableName, action)
	}
	if len(args) != len(act.Params) {
		return 0, fmt.Errorf("sim: action %s wants %d args, got %d", action, len(act.Params), len(args))
	}
	for i, p := range params {
		want := t.decl.Reads[i].Match
		if p.Kind != want {
			return 0, fmt.Errorf("sim: table %s param %d is %s, entry has %s", tableName, i, want, p.Kind)
		}
		if p.Kind != ast.MatchValid && p.Value.Width() != t.keyWidths[i] {
			return 0, fmt.Errorf("sim: table %s param %d width %d, want %d", tableName, i, p.Value.Width(), t.keyWidths[i])
		}
	}
	var exactKey string
	if t.allExact {
		exactKey = exactKeyStringParams(params)
		if _, dup := t.exactIndex[exactKey]; dup {
			return 0, fmt.Errorf("sim: table %s already has an entry for this key", tableName)
		}
	}
	t.nextHandle++
	e := &Entry{Handle: t.nextHandle, Params: params, Action: action, Args: args, Priority: priority}
	e.prefixSum = e.totalPrefix()
	t.insertSorted(e)
	if t.allExact {
		t.exactIndex[exactKey] = e
	}
	t.lpmAdd(e)
	sw.bumpGen()
	return e.Handle, nil
}

// insertSorted places e at its precedence position in entries.
func (t *table) insertSorted(e *Entry) {
	i := sort.Search(len(t.entries), func(i int) bool { return entryLess(e, t.entries[i]) })
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
}

// lpmAdd maintains the single-field LPM index for a new entry. Mixed
// priorities would break the longest-prefix-first probe order, so the index
// is dropped (falling back to the sorted scan) the first time they appear.
func (t *table) lpmAdd(e *Entry) {
	if !t.singleLPM || t.lpm == nil {
		return
	}
	if t.lpmPrioSet && e.Priority != t.lpmPrio {
		t.lpm = nil
		return
	}
	t.lpmPrio, t.lpmPrioSet = e.Priority, true
	p := e.Params[0]
	key := lpmKey(p.Value, p.PrefixLen)
	m := t.lpm.byLen[p.PrefixLen]
	if m == nil {
		m = map[string]*Entry{}
		t.lpm.byLen[p.PrefixLen] = m
		t.lpm.lens = append(t.lpm.lens, p.PrefixLen)
		sort.Sort(sort.Reverse(sort.IntSlice(t.lpm.lens)))
	}
	// On duplicate (plen, prefix) keys the earlier entry has precedence
	// (same priority, lower handle), matching the sorted scan.
	if _, ok := m[key]; !ok {
		m[key] = e
	}
}

// rebuildLPM reconstructs the LPM index from scratch (after deletions).
func (t *table) rebuildLPM() {
	if !t.singleLPM {
		return
	}
	t.lpm = &lpmIndex{byLen: map[int]map[string]*Entry{}}
	t.lpmPrioSet = false
	for _, e := range t.entries {
		t.lpmAdd(e)
		if t.lpm == nil {
			return
		}
	}
}

// lpmKey renders a value masked to its prefix length as index key bytes.
func lpmKey(v bitfield.Value, plen int) string {
	b := v.Bytes()
	zeroTailBits(b, len(b)*8-v.Width()+plen)
	return string(b)
}

func exactKeyStringParams(params []MatchParam) string {
	key := make([]bitfield.Value, len(params))
	for i, p := range params {
		if p.Kind == ast.MatchValid {
			if p.ValidWant {
				key[i] = bitfield.FromUint(1, 1)
			} else {
				key[i] = bitfield.New(1)
			}
		} else {
			key[i] = p.Value
		}
	}
	return exactKeyString(key)
}

// TableSetDefault sets the default (miss) action. Like TableAdd — and like
// bmv2 — the action must be one the table declares.
func (sw *Switch) TableSetDefault(tableName, action string, args []bitfield.Value) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	act, ok := sw.prog.Actions[action]
	if !ok {
		return fmt.Errorf("sim: no action %q", action)
	}
	if !contains(t.decl.Actions, action) {
		return fmt.Errorf("sim: table %s does not allow action %q", tableName, action)
	}
	if len(args) != len(act.Params) {
		return fmt.Errorf("sim: action %s wants %d args, got %d", action, len(act.Params), len(args))
	}
	t.defaultAction = action
	t.defaultArgs = args
	sw.bumpGen()
	return nil
}

// TableDelete removes an entry by handle.
func (sw *Switch) TableDelete(tableName string, handle int) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	for i, e := range t.entries {
		if e.Handle == handle {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			if t.allExact {
				delete(t.exactIndex, exactKeyStringParams(e.Params))
			}
			t.rebuildLPM()
			sw.bumpGen()
			return nil
		}
	}
	return errNoEntry(tableName, handle)
}

func errNoEntry(tableName string, handle int) error {
	return fmt.Errorf("sim: table %s has no entry %d", tableName, handle)
}

// TableModify replaces the action and args of an existing entry. The new
// action must be one the table declares, exactly as TableAdd requires.
func (sw *Switch) TableModify(tableName string, handle int, action string, args []bitfield.Value) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	act, ok := sw.prog.Actions[action]
	if !ok {
		return fmt.Errorf("sim: no action %q", action)
	}
	if !contains(t.decl.Actions, action) {
		return fmt.Errorf("sim: table %s does not allow action %q", tableName, action)
	}
	if len(args) != len(act.Params) {
		return fmt.Errorf("sim: action %s wants %d args, got %d", action, len(act.Params), len(args))
	}
	for _, e := range t.entries {
		if e.Handle == handle {
			e.Action = action
			e.Args = args
			sw.bumpGen()
			return nil
		}
	}
	return errNoEntry(tableName, handle)
}

// TableClear removes every entry from a table.
func (sw *Switch) TableClear(tableName string) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	t.entries = nil
	t.exactIndex = map[string]*Entry{}
	t.rebuildLPM()
	sw.bumpGen()
	return nil
}

// TableEntries returns the handles of installed entries, sorted.
func (sw *Switch) TableEntries(tableName string) ([]int, error) {
	sw.mu.RLock()
	defer sw.mu.RUnlock()
	t, err := sw.table(tableName)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.Handle)
	}
	sort.Ints(out)
	return out, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
