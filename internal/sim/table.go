package sim

import (
	"fmt"
	"sort"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// MatchParam is one match key component of a table entry.
type MatchParam struct {
	Kind      ast.MatchKind
	Value     bitfield.Value
	Mask      bitfield.Value // ternary
	PrefixLen int            // lpm
	Hi        bitfield.Value // range upper bound (Value is the lower)
	ValidWant bool           // valid matches
}

// Entry is one installed table entry.
type Entry struct {
	Handle   int
	Params   []MatchParam
	Action   string
	Args     []bitfield.Value
	Priority int // lower value = higher precedence (bmv2 convention)
}

// table is the runtime state of one match-action table.
type table struct {
	decl      *ast.Table
	prog      *hlir.Program
	keyWidths []int // width of each read key
	allExact  bool

	entries    []*Entry
	exactIndex map[string]*Entry // fast path when allExact
	nextHandle int

	defaultAction string
	defaultArgs   []bitfield.Value

	// ternaryWidth is the summed width of ternary reads, for Table 4.
	ternaryWidth int
}

func newTable(prog *hlir.Program, decl *ast.Table) (*table, error) {
	t := &table{decl: decl, prog: prog, allExact: true, exactIndex: map[string]*Entry{}}
	for _, r := range decl.Reads {
		var w int
		if r.Match == ast.MatchValid {
			w = 1
		} else {
			var err error
			w, err = prog.FieldWidth(*r.Field)
			if err != nil {
				return nil, fmt.Errorf("table %s: %w", decl.Name, err)
			}
		}
		t.keyWidths = append(t.keyWidths, w)
		if r.Match != ast.MatchExact && r.Match != ast.MatchValid {
			t.allExact = false
		}
		if r.Match == ast.MatchTernary {
			t.ternaryWidth += w
		}
	}
	if decl.Default != "" {
		t.defaultAction = decl.Default
	}
	return t, nil
}

// keyOf extracts the current packet's key values for this table.
func (t *table) keyOf(ps *packetState) ([]bitfield.Value, error) {
	key := make([]bitfield.Value, len(t.decl.Reads))
	for i, r := range t.decl.Reads {
		if r.Match == ast.MatchValid {
			k, err := ps.resolveHeaderRef(*r.Header)
			if err != nil {
				return nil, err
			}
			if h, ok := ps.headers[k]; ok && h.valid {
				key[i] = bitfield.FromUint(1, 1)
			} else {
				key[i] = bitfield.New(1)
			}
			continue
		}
		v, err := ps.getField(*r.Field)
		if err != nil {
			return nil, err
		}
		key[i] = v
	}
	return key, nil
}

func exactKeyString(key []bitfield.Value) string {
	s := make([]byte, 0, 64)
	for _, v := range key {
		s = append(s, v.Bytes()...)
		s = append(s, 0xfe) // separator
	}
	return string(s)
}

// lookup finds the highest-precedence matching entry, or nil on miss.
func (t *table) lookup(key []bitfield.Value) *Entry {
	if t.allExact && len(t.entries) > 8 {
		return t.exactIndex[exactKeyString(key)]
	}
	var best *Entry
	bestPrefix := -1
	for _, e := range t.entries {
		if !e.matches(key) {
			continue
		}
		if best == nil {
			best = e
			bestPrefix = e.totalPrefix()
			continue
		}
		// Precedence: lower Priority wins; ties broken by longest prefix
		// (for LPM tables), then by insertion order (handle).
		if e.Priority < best.Priority ||
			(e.Priority == best.Priority && e.totalPrefix() > bestPrefix) {
			best = e
			bestPrefix = e.totalPrefix()
		}
	}
	return best
}

func (e *Entry) matches(key []bitfield.Value) bool {
	for i, p := range e.Params {
		k := key[i]
		switch p.Kind {
		case ast.MatchExact:
			if !k.Equal(p.Value) {
				return false
			}
		case ast.MatchTernary:
			if !k.MatchTernary(p.Value, p.Mask) {
				return false
			}
		case ast.MatchLPM:
			if !k.MatchPrefix(p.Value, p.PrefixLen) {
				return false
			}
		case ast.MatchRange:
			if !k.InRange(p.Value, p.Hi) {
				return false
			}
		case ast.MatchValid:
			want := byte(0)
			if p.ValidWant {
				want = 1
			}
			if k.Width() != 1 || k.Bytes()[0] != want {
				return false
			}
		}
	}
	return true
}

// totalPrefix sums LPM prefix lengths, for longest-prefix precedence.
func (e *Entry) totalPrefix() int {
	n := 0
	for _, p := range e.Params {
		if p.Kind == ast.MatchLPM {
			n += p.PrefixLen
		}
	}
	return n
}

// activeMaskBits counts mask bits actively compared by this entry's ternary
// params (Table 4's "active" column).
func (e *Entry) activeMaskBits() int {
	n := 0
	for _, p := range e.Params {
		if p.Kind == ast.MatchTernary {
			n += p.Mask.PopCount()
		}
	}
	return n
}

// --- runtime API ---

// errNoTable formats the common unknown-table error.
func (sw *Switch) table(name string) (*table, error) {
	t, ok := sw.tables[name]
	if !ok {
		return nil, fmt.Errorf("sim: no table %q", name)
	}
	return t, nil
}

// TableAdd installs an entry and returns its handle. The params must line up
// with the table's reads; action args line up with the action's parameters.
func (sw *Switch) TableAdd(tableName, action string, params []MatchParam, args []bitfield.Value, priority int) (int, error) {
	t, err := sw.table(tableName)
	if err != nil {
		return 0, err
	}
	if len(params) != len(t.decl.Reads) {
		return 0, fmt.Errorf("sim: table %s wants %d match params, got %d", tableName, len(t.decl.Reads), len(params))
	}
	act, ok := sw.prog.Actions[action]
	if !ok {
		return 0, fmt.Errorf("sim: no action %q", action)
	}
	if !contains(t.decl.Actions, action) {
		return 0, fmt.Errorf("sim: table %s does not allow action %q", tableName, action)
	}
	if len(args) != len(act.Params) {
		return 0, fmt.Errorf("sim: action %s wants %d args, got %d", action, len(act.Params), len(args))
	}
	for i, p := range params {
		want := t.decl.Reads[i].Match
		if p.Kind != want {
			return 0, fmt.Errorf("sim: table %s param %d is %s, entry has %s", tableName, i, want, p.Kind)
		}
		if p.Kind != ast.MatchValid && p.Value.Width() != t.keyWidths[i] {
			return 0, fmt.Errorf("sim: table %s param %d width %d, want %d", tableName, i, p.Value.Width(), t.keyWidths[i])
		}
	}
	t.nextHandle++
	e := &Entry{Handle: t.nextHandle, Params: params, Action: action, Args: args, Priority: priority}
	t.entries = append(t.entries, e)
	if t.allExact {
		t.exactIndex[exactKeyStringParams(params)] = e
	}
	return e.Handle, nil
}

func exactKeyStringParams(params []MatchParam) string {
	key := make([]bitfield.Value, len(params))
	for i, p := range params {
		if p.Kind == ast.MatchValid {
			if p.ValidWant {
				key[i] = bitfield.FromUint(1, 1)
			} else {
				key[i] = bitfield.New(1)
			}
		} else {
			key[i] = p.Value
		}
	}
	return exactKeyString(key)
}

// TableSetDefault sets the default (miss) action.
func (sw *Switch) TableSetDefault(tableName, action string, args []bitfield.Value) error {
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	act, ok := sw.prog.Actions[action]
	if !ok {
		return fmt.Errorf("sim: no action %q", action)
	}
	if len(args) != len(act.Params) {
		return fmt.Errorf("sim: action %s wants %d args, got %d", action, len(act.Params), len(args))
	}
	t.defaultAction = action
	t.defaultArgs = args
	return nil
}

// TableDelete removes an entry by handle.
func (sw *Switch) TableDelete(tableName string, handle int) error {
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	for i, e := range t.entries {
		if e.Handle == handle {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			if t.allExact {
				delete(t.exactIndex, exactKeyStringParams(e.Params))
			}
			return nil
		}
	}
	return fmt.Errorf("sim: table %s has no entry %d", tableName, handle)
}

// TableModify replaces the action and args of an existing entry.
func (sw *Switch) TableModify(tableName string, handle int, action string, args []bitfield.Value) error {
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	act, ok := sw.prog.Actions[action]
	if !ok {
		return fmt.Errorf("sim: no action %q", action)
	}
	if len(args) != len(act.Params) {
		return fmt.Errorf("sim: action %s wants %d args, got %d", action, len(act.Params), len(args))
	}
	for _, e := range t.entries {
		if e.Handle == handle {
			e.Action = action
			e.Args = args
			return nil
		}
	}
	return fmt.Errorf("sim: table %s has no entry %d", tableName, handle)
}

// TableClear removes every entry from a table.
func (sw *Switch) TableClear(tableName string) error {
	t, err := sw.table(tableName)
	if err != nil {
		return err
	}
	t.entries = nil
	t.exactIndex = map[string]*Entry{}
	return nil
}

// TableEntries returns the handles of installed entries, sorted.
func (sw *Switch) TableEntries(tableName string) ([]int, error) {
	t, err := sw.table(tableName)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e.Handle)
	}
	sort.Ints(out)
	return out, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
