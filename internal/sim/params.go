package sim

import (
	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
)

// Exact builds an exact match parameter.
func Exact(v bitfield.Value) MatchParam {
	return MatchParam{Kind: ast.MatchExact, Value: v}
}

// ExactUint builds an exact match parameter from an integer.
func ExactUint(width int, v uint64) MatchParam {
	return Exact(bitfield.FromUint(width, v))
}

// Ternary builds a ternary match parameter.
func Ternary(v, mask bitfield.Value) MatchParam {
	return MatchParam{Kind: ast.MatchTernary, Value: v, Mask: mask}
}

// TernaryUint builds a ternary match parameter from integers.
func TernaryUint(width int, v, mask uint64) MatchParam {
	return Ternary(bitfield.FromUint(width, v), bitfield.FromUint(width, mask))
}

// LPM builds a longest-prefix match parameter.
func LPM(v bitfield.Value, plen int) MatchParam {
	return MatchParam{Kind: ast.MatchLPM, Value: v, PrefixLen: plen}
}

// Range builds a range match parameter over [lo, hi].
func Range(lo, hi bitfield.Value) MatchParam {
	return MatchParam{Kind: ast.MatchRange, Value: lo, Hi: hi}
}

// Valid builds a header-validity match parameter.
func Valid(want bool) MatchParam {
	return MatchParam{Kind: ast.MatchValid, ValidWant: want}
}

// Args builds an action argument list from (width, value) pairs, given as
// alternating width and value entries.
func Args(pairs ...uint64) []bitfield.Value {
	if len(pairs)%2 != 0 {
		panic("sim.Args: odd argument count")
	}
	out := make([]bitfield.Value, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, bitfield.FromUint(int(pairs[i]), pairs[i+1]))
	}
	return out
}
