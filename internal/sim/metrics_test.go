package sim

import (
	"testing"
	"time"

	"hyper4/internal/bitfield"
	"hyper4/internal/pkt"
)

func TestMetricsTableCounters(t *testing.T) {
	sw := load(t, l2Src)
	mac := pkt.MustMAC("00:00:00:00:00:02")
	h, err := sw.TableAdd("dmac", "forward",
		[]MatchParam{Exact(bitfield.FromBytes(48, mac[:]))}, Args(9, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("dmac", "_drop", nil); err != nil {
		t.Fatal(err)
	}
	hit := ethFrame("00:00:00:00:00:02", "00:00:00:00:00:01", 0x1234, "hi")
	miss := ethFrame("00:00:00:00:00:99", "00:00:00:00:00:01", 0x1234, "hi")
	for _, frame := range [][]byte{hit, miss, miss} {
		if _, _, err := sw.Process(frame, 1); err != nil {
			t.Fatal(err)
		}
	}

	snap := sw.Metrics()
	tc := snap.Tables["dmac"]
	want := TableCounters{Hits: 1, Misses: 2, Defaults: 2, Entries: 1}
	if tc != want {
		t.Errorf("dmac counters = %+v, want %+v", tc, want)
	}
	if snap.Actions["forward"] != 1 || snap.Actions["_drop"] != 2 {
		t.Errorf("action counts = %v", snap.Actions)
	}
	if snap.Passes.Normal != 3 || snap.Passes.Resubmit != 0 {
		t.Errorf("passes = %+v", snap.Passes)
	}
	if snap.Latency.Count != 3 {
		t.Errorf("latency count = %d", snap.Latency.Count)
	}
	var bucketSum int64
	for _, c := range snap.Latency.Counts {
		bucketSum += c
	}
	if bucketSum != 3 {
		t.Errorf("latency bucket sum = %d", bucketSum)
	}

	if tm, err := sw.TableMetrics("dmac"); err != nil || tm != want {
		t.Errorf("TableMetrics = %+v, %v", tm, err)
	}
	if _, err := sw.TableMetrics("nope"); err == nil {
		t.Error("TableMetrics on unknown table should error")
	}
	if n, err := sw.EntryHits("dmac", h); err != nil || n != 1 {
		t.Errorf("EntryHits = %d, %v", n, err)
	}
	if _, err := sw.EntryHits("dmac", h+99); err == nil {
		t.Error("EntryHits on unknown handle should error")
	}
}

func TestMetricsPassKinds(t *testing.T) {
	// Resubmit: 1 normal pass + 2 resubmit passes.
	sw := load(t, resubmitSrc)
	for _, round := range []uint64{0, 1} {
		if _, err := sw.TableAdd("t", "again", []MatchParam{ExactUint(8, round)}, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sw.TableAdd("t", "out", []MatchParam{ExactUint(8, 2)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.Process([]byte{0xaa}, 0); err != nil {
		t.Fatal(err)
	}
	p := sw.Metrics().Passes
	if p.Normal != 1 || p.Resubmit != 2 {
		t.Errorf("resubmit passes = %+v", p)
	}

	// Clone E2E: the mirror copy is an egress-only pass counted by the
	// instance type carried in its cloned state.
	sw = load(t, cloneE2ESrc)
	sw.SetMirror(3, 7)
	if err := sw.TableSetDefault("t", "fwd", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("e", "mirror", []MatchParam{ExactUint(32, 0)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.Process([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	p = sw.Metrics().Passes
	if p.Normal != 1 || p.CloneE2E != 1 {
		t.Errorf("clone passes = %+v", p)
	}
}

func TestRecordLatencyBucketing(t *testing.T) {
	var m switchMetrics
	m.init(nil)
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{127 * time.Nanosecond, 0},      // < 2^7
		{128 * time.Nanosecond, 1},      // exactly the first bound
		{255 * time.Nanosecond, 1},      // < 2^8
		{1 * time.Microsecond, 3},       // 1000ns: 2^9 <= x < 2^10
		{time.Hour, latencyBuckets - 1}, // overflow clamps to +Inf bucket
	}
	for _, c := range cases {
		before := m.latCounts[c.bucket].Load()
		m.recordLatency(c.d)
		if got := m.latCounts[c.bucket].Load(); got != before+1 {
			t.Errorf("recordLatency(%v) did not land in bucket %d", c.d, c.bucket)
		}
	}
	if m.latCount.Load() != int64(len(cases)) {
		t.Errorf("latCount = %d", m.latCount.Load())
	}
}

func TestLatencyQuantile(t *testing.T) {
	h := LatencyHistogram{Bounds: LatencyBucketBounds(), Counts: make([]int64, latencyBuckets)}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 samples uniformly in bucket 3 (bounds 512ns..1024ns).
	h.Counts[3] = 100
	h.Count = 100
	if q := h.Quantile(0.5); q < 512*time.Nanosecond || q > 1024*time.Nanosecond {
		t.Errorf("p50 = %v, want within (512ns, 1024ns]", q)
	}
	// Quantiles are monotone.
	if h.Quantile(0.9) < h.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
	// Split across two buckets: p25 in the lower, p75 in the upper.
	h.Counts[3] = 50
	h.Counts[5] = 50
	if p25, p75 := h.Quantile(0.25), h.Quantile(0.75); p25 > 1024*time.Nanosecond || p75 <= 2048*time.Nanosecond {
		t.Errorf("p25 = %v, p75 = %v", p25, p75)
	}
}

// validationSrc declares three actions but lets the table use only two —
// binding the third must be rejected by every table op, not just TableAdd.
const validationSrc = `
header_type h_t { fields { v : 8; } }
header h_t h;
parser start { extract(h); return ingress; }
action allowed(p) { modify_field(standard_metadata.egress_spec, p); }
action also_allowed() { drop(); }
action undeclared() { drop(); }
table t { reads { h.v : exact; } actions { allowed; also_allowed; } }
control ingress { apply(t); }
`

func TestTableModifyRejectsUndeclaredAction(t *testing.T) {
	sw := load(t, validationSrc)
	h, err := sw.TableAdd("t", "allowed", []MatchParam{ExactUint(8, 1)}, Args(9, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.TableModify("t", h, "undeclared", nil); err == nil {
		t.Fatal("TableModify accepted an action the table does not declare")
	}
	// The entry must be untouched by the failed modify.
	out, _, err := sw.Process([]byte{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("entry changed by rejected modify: %+v", out)
	}
	// A declared action still works.
	if err := sw.TableModify("t", h, "also_allowed", nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableSetDefaultRejectsUndeclaredAction(t *testing.T) {
	sw := load(t, validationSrc)
	if err := sw.TableSetDefault("t", "undeclared", nil); err == nil {
		t.Fatal("TableSetDefault accepted an action the table does not declare")
	}
	if err := sw.TableSetDefault("t", "missing_entirely", nil); err == nil {
		t.Fatal("TableSetDefault accepted an unknown action")
	}
	if err := sw.TableSetDefault("t", "also_allowed", nil); err != nil {
		t.Fatal(err)
	}
}

// ternaryEgressSrc applies a ternary table in the egress pipeline, so the
// Table 4 accounting is exercised outside ingress.
const ternaryEgressSrc = `
header_type h_t { fields { a : 16; } }
header h_t h;
parser start { extract(h); return ingress; }
action fwd() { modify_field(standard_metadata.egress_spec, 1); }
table ig { actions { fwd; } }
action nop() { no_op(); }
table tern { reads { h.a : ternary; } actions { nop; } }
control ingress { apply(ig); }
control egress { apply(tern); }
`

func TestTraceTernaryEgress(t *testing.T) {
	sw := load(t, ternaryEgressSrc)
	if err := sw.TableSetDefault("ig", "fwd", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.TableAdd("tern", "nop", []MatchParam{TernaryUint(16, 0xab00, 0xff0f)}, nil, 1); err != nil {
		t.Fatal(err)
	}
	_, tr, err := sw.Process([]byte{0xab, 0x00}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TernaryMatches != 1 || tr.TernaryBitsTotal != 16 || tr.TernaryBitsActive != 12 {
		t.Errorf("egress ternary trace: matches=%d total=%d active=%d",
			tr.TernaryMatches, tr.TernaryBitsTotal, tr.TernaryBitsActive)
	}
	var egressApply *TableApply
	for i := range tr.ApplyLog {
		if tr.ApplyLog[i].Table == "tern" {
			egressApply = &tr.ApplyLog[i]
		}
	}
	if egressApply == nil || !egressApply.Egress || !egressApply.Hit {
		t.Errorf("apply log missing egress hit for tern: %+v", tr.ApplyLog)
	}
}

func TestTraceTernaryDefaultMiss(t *testing.T) {
	sw := load(t, ternaryEgressSrc)
	if err := sw.TableSetDefault("ig", "fwd", nil); err != nil {
		t.Fatal(err)
	}
	if err := sw.TableSetDefault("tern", "nop", nil); err != nil {
		t.Fatal(err)
	}
	// Entry that cannot match; the default action runs on the miss.
	if _, err := sw.TableAdd("tern", "nop", []MatchParam{TernaryUint(16, 0xffff, 0xffff)}, nil, 1); err != nil {
		t.Fatal(err)
	}
	_, tr, err := sw.Process([]byte{0x00, 0x01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A miss must not contribute to the Table 4 ternary columns, even though
	// the table has ternary reads and a default action ran.
	if tr.TernaryMatches != 0 || tr.TernaryBitsActive != 0 {
		t.Errorf("miss bumped ternary counters: matches=%d active=%d", tr.TernaryMatches, tr.TernaryBitsActive)
	}
	// Both applies missed: ig ran its default, tern ran its default.
	if tr.Misses != 2 || tr.Hits != 0 {
		t.Errorf("hits=%d misses=%d", tr.Hits, tr.Misses)
	}
	tc, err := sw.TableMetrics("tern")
	if err != nil {
		t.Fatal(err)
	}
	if tc.Misses != 1 || tc.Defaults != 1 || tc.Hits != 0 {
		t.Errorf("tern counters = %+v", tc)
	}
}
