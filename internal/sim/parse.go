package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
)

// maxParserStates bounds state transitions per parse, guarding against
// cyclic parse graphs.
const maxParserStates = 512

// parse runs the parser state machine from "start" until ingress.
func (sw *Switch) parse(ps *packetState, tr *Trace) error {
	if _, ok := sw.prog.States["start"]; !ok {
		return nil // programs without a parser accept the packet unparsed
	}
	state := "start"
	for steps := 0; ; steps++ {
		if steps >= maxParserStates {
			return fmt.Errorf("sim: parser exceeded %d state transitions", maxParserStates)
		}
		if state == ast.StateIngress {
			return nil
		}
		st, ok := sw.prog.States[state]
		if !ok {
			return fmt.Errorf("sim: parser reached unknown state %q", state)
		}
		for i := range st.Statements {
			stmt := &st.Statements[i]
			if stmt.Extract != nil {
				if err := ps.extract(*stmt.Extract); err != nil {
					return err
				}
				tr.Extracts++
			} else {
				val, err := ps.evalParserValue(stmt.SetValue, stmt.SetField)
				if err != nil {
					return err
				}
				if err := ps.setField(stmt.SetField, val); err != nil {
					return err
				}
			}
		}
		next, err := ps.parserTransition(st)
		if err != nil {
			return err
		}
		state = next
	}
}

// extract pulls the next header's bytes off the packet into the instance.
// A packet shorter than the extraction is zero-filled and flagged.
func (ps *packetState) extract(ref ast.HeaderRef) error {
	ii, ok := ps.sw.lay.insts[ref.Instance]
	if !ok {
		return fmt.Errorf("sim: unknown instance %q", ref.Instance)
	}
	slot, err := ps.slotOf(ii, ref.Index)
	if err != nil {
		return err
	}
	nbytes := ii.width / 8
	avail := len(ps.data) - ps.consumed
	take := nbytes
	if take > avail {
		take = avail
		ps.shortExtract = true
	}
	if cap(ps.scratch) < nbytes {
		ps.scratch = make([]byte, nbytes)
	}
	buf := ps.scratch[:nbytes]
	copy(buf, ps.data[ps.consumed:ps.consumed+take])
	for i := take; i < nbytes; i++ {
		buf[i] = 0
	}
	h := &ps.headers[slot]
	h.value.SetBytes(buf)
	h.valid = true
	ps.consumed += take
	if ii.stackSlot >= 0 && ref.Index == ast.IndexNext {
		ps.stackNext[ii.stackSlot] = (slot - ii.headerBase) + 1
	}
	ps.latestSlot = slot
	return nil
}

// evalParserValue evaluates a set_metadata value: a constant or a field.
func (ps *packetState) evalParserValue(e ast.Expr, dst ast.FieldRef) (bitfield.Value, error) {
	w, err := ps.fieldWidth(dst)
	if err != nil {
		return bitfield.Value{}, err
	}
	switch e.Kind {
	case ast.ExprConst:
		return bitfield.FromBig(w, e.Const), nil
	case ast.ExprField:
		v, err := ps.getField(e.Field)
		if err != nil {
			return bitfield.Value{}, err
		}
		return v.Resize(w), nil
	default:
		return bitfield.Value{}, fmt.Errorf("sim: unsupported set_metadata value kind %d", e.Kind)
	}
}

// parserTransition picks the next state.
func (ps *packetState) parserTransition(st *ast.ParserState) (string, error) {
	switch st.Return.Kind {
	case ast.ReturnDirect:
		return st.Return.State, nil
	case ast.ReturnSelect:
		if plan, ok := ps.sw.lay.selects[st.Name]; ok {
			key, err := ps.selectKeyPlanned(st.Return.SelectKeys, plan)
			if err != nil {
				return "", err
			}
			for i, c := range st.Return.Cases {
				if c.Default {
					return c.State, nil
				}
				vm := plan.cases[i]
				if key.MatchTernary(vm.val, vm.mask) {
					return c.State, nil
				}
			}
			ps.dropped = true
			return ast.StateIngress, nil
		}
		// Fallback for selects whose key widths depend on runtime parser
		// state (latest.X): build the key and cases per packet.
		key, keyWidth, err := ps.selectKeyValue(st.Return.SelectKeys)
		if err != nil {
			return "", err
		}
		for _, c := range st.Return.Cases {
			if c.Default {
				return c.State, nil
			}
			val, mask := concatCase(c, ps, keyWidth)
			if key.MatchTernary(val, mask) {
				return c.State, nil
			}
		}
		// P4_14: falling off a select without a default is a parser error;
		// we drop by transitioning to ingress with the packet marked dropped.
		ps.dropped = true
		return ast.StateIngress, nil
	}
	return "", fmt.Errorf("sim: bad parser return in state %q", st.Name)
}

// selectKeyPlanned fills the plan's per-packet scratch key: no allocation on
// the steady-state parse path.
func (ps *packetState) selectKeyPlanned(keys []ast.SelectKey, plan *selectPlan) (bitfield.Value, error) {
	key := ps.selKeys[plan.id]
	key.Zero()
	off := 0
	for _, k := range keys {
		if k.IsCurrent {
			ps.currentInto(&key, off, k.CurrentOffset, k.CurrentWidth)
			off += k.CurrentWidth
			continue
		}
		loc, err := ps.sw.lay.fieldLoc(*k.Field)
		if err != nil {
			return bitfield.Value{}, err
		}
		src, err := ps.fieldSource(loc, k.Field.Index)
		if err != nil {
			return bitfield.Value{}, err
		}
		key.InsertBits(off, *src, loc.off, loc.width)
		off += loc.width
	}
	return key, nil
}

// selectKeyValue concatenates the select keys into one value (allocating
// fallback used when the select references latest.X).
func (ps *packetState) selectKeyValue(keys []ast.SelectKey) (bitfield.Value, []int, error) {
	widths := make([]int, len(keys))
	total := 0
	vals := make([]bitfield.Value, len(keys))
	for i, k := range keys {
		var v bitfield.Value
		switch {
		case k.IsCurrent:
			v = ps.current(k.CurrentOffset, k.CurrentWidth)
		case k.Latest != "":
			if ps.latestSlot < 0 {
				return bitfield.Value{}, nil, fmt.Errorf("sim: select(latest.%s) before any extract", k.Latest)
			}
			ii := ps.sw.lay.slots[ps.latestSlot]
			ref := ast.FieldRef{Instance: ii.name, Index: ast.IndexNone, Field: k.Latest}
			if ii.inst.Decl.IsStack() {
				ref.Index = ps.latestSlot - ii.headerBase
			}
			got, err := ps.getField(ref)
			if err != nil {
				return bitfield.Value{}, nil, err
			}
			v = got
		default:
			got, err := ps.getField(*k.Field)
			if err != nil {
				return bitfield.Value{}, nil, err
			}
			v = got
		}
		vals[i] = v
		widths[i] = v.Width()
		total += v.Width()
	}
	out := bitfield.New(total)
	off := 0
	for _, v := range vals {
		out.Insert(off, v)
		off += v.Width()
	}
	return out, widths, nil
}

// concatCase builds the (value, mask) pair for one select case across the
// concatenated key widths.
func concatCase(c ast.SelectCase, ps *packetState, widths []int) (bitfield.Value, bitfield.Value) {
	total := 0
	for _, w := range widths {
		total += w
	}
	val := bitfield.New(total)
	mask := bitfield.New(total)
	off := 0
	for i, w := range widths {
		val.Insert(off, bitfield.FromBig(w, c.Values[i]))
		if c.Masks[i] != nil {
			mask.Insert(off, bitfield.FromBig(w, c.Masks[i]))
		} else {
			mask.Insert(off, bitfield.Ones(w))
		}
		off += w
	}
	return val, mask
}

// current reads unextracted packet bits at the given bit offset/width past
// the parser's current position, zero-filling past the end of the packet.
func (ps *packetState) current(bitOff, width int) bitfield.Value {
	out := bitfield.New(width)
	ps.currentInto(&out, 0, bitOff, width)
	return out
}

// currentInto writes current(bitOff, width) into dst at dstOff. dst bits in
// the target range must already be zero.
func (ps *packetState) currentInto(dst *bitfield.Value, dstOff, bitOff, width int) {
	startBit := ps.consumed*8 + bitOff
	for i := 0; i < width; i++ {
		bit := startBit + i
		byteIdx := bit / 8
		if byteIdx >= len(ps.data) {
			break
		}
		dst.SetBit(dstOff+i, (ps.data[byteIdx]>>(7-bit%8))&1)
	}
}
