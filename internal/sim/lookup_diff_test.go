package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"hyper4/internal/bitfield"
)

// This file is a differential property test for table lookup: every fast path
// (the all-exact hash index and the per-prefix-length LPM index) must agree
// with the reference semantics — a linear scan of the precedence-sorted entry
// list using Entry.matches. Randomized over key widths (including
// non-byte-aligned ones), entry sets, deletions (which force rebuildLPM), and
// probe packets biased to land near installed prefixes.

// linearLookup is the reference implementation: first match in the sorted
// entry list wins.
func linearLookup(t *table, ps *packetState) (*Entry, error) {
	key, err := t.keyOf(ps)
	if err != nil {
		return nil, err
	}
	for _, e := range t.entries {
		if e.matches(key) {
			return e, nil
		}
	}
	return nil, nil
}

// randValue returns a canonical random value of the given width.
func randValue(rng *rand.Rand, width int) bitfield.Value {
	b := make([]byte, (width+7)/8)
	rng.Read(b)
	return bitfield.FromBytes(width, b)
}

// packetFor packs field values (widths summing to a byte multiple) into wire
// bytes in declaration order, MSB first — the layout extract() consumes.
func packetFor(widths []int, vals []bitfield.Value) []byte {
	total := 0
	for _, w := range widths {
		total += w
	}
	hv := bitfield.New(total)
	off := 0
	for i, w := range widths {
		for bit := 0; bit < w; bit++ {
			hv.SetBit(off+bit, vals[i].Bit(bit))
		}
		off += w
	}
	return hv.Bytes()
}

// checkLookup drives one probe through both implementations and compares.
func checkLookup(t *testing.T, sw *Switch, tbl *table, data []byte, desc string) {
	t.Helper()
	ps := sw.getState(data, 1)
	defer sw.putState(ps)
	tr := &Trace{}
	if err := sw.parse(ps, tr); err != nil {
		t.Fatalf("%s: parse: %v", desc, err)
	}
	got, err := tbl.lookup(ps)
	if err != nil {
		t.Fatalf("%s: lookup: %v", desc, err)
	}
	want, err := linearLookup(tbl, ps)
	if err != nil {
		t.Fatalf("%s: linear lookup: %v", desc, err)
	}
	if got != want {
		gh, wh := -1, -1
		if got != nil {
			gh = got.Handle
		}
		if want != nil {
			wh = want.Handle
		}
		t.Fatalf("%s: fast path returned handle %d, linear scan handle %d (packet %x)", desc, gh, wh, data)
	}
}

// lpmWidths mixes byte-aligned and non-byte-aligned key widths.
var lpmWidths = []int{3, 4, 7, 8, 12, 13, 16, 17, 24, 31, 32, 33, 48}

func lpmProgram(width int) string {
	pad := (8 - width%8) % 8
	fields := fmt.Sprintf("f : %d;", width)
	if pad > 0 {
		fields += fmt.Sprintf(" pad : %d;", pad)
	}
	return fmt.Sprintf(`
header_type h_t { fields { %s } }
header h_t h;
parser start { extract(h); return ingress; }
action act(p) { modify_field(standard_metadata.egress_spec, p); }
table tt { reads { h.f : lpm; } actions { act; } }
control ingress { apply(tt); }
`, fields)
}

// probeData builds a packet whose field either reuses an installed entry's
// bits near the prefix boundary (the interesting case) or is fully random.
func probeData(rng *rand.Rand, width, pad int, entries []*Entry) []byte {
	widths := []int{width}
	if pad > 0 {
		widths = append(widths, pad)
	}
	fv := randValue(rng, width)
	if len(entries) > 0 && rng.Intn(4) != 0 {
		e := entries[rng.Intn(len(entries))]
		p := e.Params[0]
		// Start from the entry's value, then flip a few random bits —
		// sometimes inside the prefix (should miss this entry), sometimes in
		// the tail (should still match it).
		for i := 0; i < width; i++ {
			fv.SetBit(i, p.Value.Bit(i))
		}
		for flips := rng.Intn(3); flips > 0; flips-- {
			fv.SetBit(rng.Intn(width), byte(rng.Intn(2)))
		}
	}
	vals := []bitfield.Value{fv}
	if pad > 0 {
		vals = append(vals, randValue(rng, pad))
	}
	return packetFor(widths, vals)
}

func TestLookupDifferentialLPM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	probes := 0
	for shape := 0; shape < 70; shape++ {
		width := lpmWidths[rng.Intn(len(lpmWidths))]
		pad := (8 - width%8) % 8
		sw := load(t, lpmProgram(width))
		tbl := sw.tables["tt"]

		// Mixed-priority shapes drop the LPM index, exercising the fallback;
		// uniform shapes keep it alive.
		mixedPrio := shape%5 == 4
		n := 1 + rng.Intn(24)
		for i := 0; i < n; i++ {
			v := randValue(rng, width)
			plen := rng.Intn(width + 1)
			switch rng.Intn(6) {
			case 0:
				plen = 0
			case 1:
				plen = width
			}
			prio := 0
			if mixedPrio {
				prio = rng.Intn(3)
			}
			if _, err := sw.TableAdd("tt", "act", []MatchParam{LPM(v, plen)}, Args(9, 1), prio); err != nil {
				t.Fatal(err)
			}
			// Occasionally delete a random entry so rebuildLPM runs.
			if rng.Intn(8) == 0 && len(tbl.entries) > 0 {
				h := tbl.entries[rng.Intn(len(tbl.entries))].Handle
				if err := sw.TableDelete("tt", h); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !mixedPrio && tbl.lpm == nil {
			t.Fatalf("width %d: LPM index unexpectedly dropped with uniform priorities", width)
		}
		for probe := 0; probe < 100; probe++ {
			data := probeData(rng, width, pad, tbl.entries)
			checkLookup(t, sw, tbl, data, fmt.Sprintf("lpm width=%d shape=%d probe=%d", width, shape, probe))
			probes++
		}
	}
	if probes < 7000 {
		t.Fatalf("only %d LPM probes ran", probes)
	}
}

func exactProgram(widths []int) string {
	fields := ""
	reads := ""
	for i, w := range widths {
		fields += fmt.Sprintf("f%d : %d; ", i, w)
		reads += fmt.Sprintf("h.f%d : exact; ", i)
	}
	total := 0
	for _, w := range widths {
		total += w
	}
	if pad := (8 - total%8) % 8; pad > 0 {
		fields += fmt.Sprintf("pad : %d; ", pad)
	}
	return fmt.Sprintf(`
header_type h_t { fields { %s } }
header h_t h;
parser start { extract(h); return ingress; }
action act(p) { modify_field(standard_metadata.egress_spec, p); }
table tt { reads { %s } actions { act; } }
control ingress { apply(tt); }
`, fields, reads)
}

func TestLookupDifferentialExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	probes := 0
	for shape := 0; shape < 40; shape++ {
		nf := 1 + rng.Intn(3)
		widths := make([]int, nf)
		total := 0
		for i := range widths {
			widths[i] = 1 + rng.Intn(40)
			total += widths[i]
		}
		pad := (8 - total%8) % 8
		sw := load(t, exactProgram(widths))
		tbl := sw.tables["tt"]

		n := 1 + rng.Intn(24)
		for i := 0; i < n; i++ {
			params := make([]MatchParam, nf)
			for j := range params {
				params[j] = Exact(randValue(rng, widths[j]))
			}
			// Duplicate exact keys are rejected; that's fine, keep going.
			if _, err := sw.TableAdd("tt", "act", params, Args(9, 1), 0); err != nil {
				continue
			}
			if rng.Intn(10) == 0 && len(tbl.entries) > 0 {
				h := tbl.entries[rng.Intn(len(tbl.entries))].Handle
				if err := sw.TableDelete("tt", h); err != nil {
					t.Fatal(err)
				}
			}
		}
		allWidths := append([]int(nil), widths...)
		if pad > 0 {
			allWidths = append(allWidths, pad)
		}
		for probe := 0; probe < 90; probe++ {
			vals := make([]bitfield.Value, len(allWidths))
			if len(tbl.entries) > 0 && rng.Intn(3) != 0 {
				// Reuse an installed entry's key, sometimes perturbing one field.
				e := tbl.entries[rng.Intn(len(tbl.entries))]
				for j := 0; j < nf; j++ {
					vals[j] = e.Params[j].Value.Clone()
				}
				if rng.Intn(2) == 0 {
					j := rng.Intn(nf)
					vals[j].SetBit(rng.Intn(widths[j]), byte(rng.Intn(2)))
				}
			} else {
				for j := 0; j < nf; j++ {
					vals[j] = randValue(rng, widths[j])
				}
			}
			if pad > 0 {
				vals[len(vals)-1] = randValue(rng, pad)
			}
			data := packetFor(allWidths, vals)
			checkLookup(t, sw, tbl, data, fmt.Sprintf("exact shape=%d probe=%d", shape, probe))
			probes++
		}
	}
	if probes < 3000 {
		t.Fatalf("only %d exact probes ran", probes)
	}
}
