package sim

import (
	"fmt"
	"sort"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
	"hyper4/internal/p4/hlir"
)

// layout is the per-program dense indexing computed once in New: every
// header instance element and metadata instance gets a small integer slot, so
// packetState can hold plain slices instead of maps, and every (instance,
// field) pair resolves to a precomputed (slot, offset, width) triple. This is
// what makes the steady-state Process path allocation-free: no map churn, no
// repeated linear scans over header type declarations.
type layout struct {
	prog *hlir.Program

	insts map[string]*instInfo
	// slots maps a header slot id back to its owning instance; element i of a
	// stack occupies slot headerBase+i.
	slots []*instInfo
	// metaInsts maps a metadata slot id back to its instance.
	metaInsts []*instInfo

	numHeaderSlots int
	numMetaSlots   int
	numStacks      int

	// fields resolves (instance, field) to its location. Complete: built for
	// every field of every instance up front.
	fields map[refKey]fieldLoc

	// Standard metadata fast path.
	stdSlot int
	stdLocs map[string]fieldLoc

	// selects caches per-parser-state select plans (precomputed case
	// value/mask pairs) for states whose key widths are static. selectList
	// holds the same plans by id, for sizing per-packet scratch keys.
	selects    map[string]*selectPlan
	selectList []*selectPlan
}

// instInfo is the resolved placement of one instance.
type instInfo struct {
	name  string
	inst  *hlir.Instance
	width int // element width in bits

	metaSlot   int // slot in packetState.meta, or -1 for headers
	headerBase int // first slot in packetState.headers, or -1 for metadata
	count      int // stack element count (1 for scalars)
	stackSlot  int // slot in packetState.stackNext, or -1 for non-stacks
}

// refKey identifies a field by instance and field name.
type refKey struct {
	inst  string
	field string
}

// fieldLoc is a resolved field location: which instance, and the bit offset
// and width inside one element's value.
type fieldLoc struct {
	ii    *instInfo
	off   int
	width int
}

// selectPlan is a precomputed parser select: the concatenated key width and
// one (value, mask) pair per case, valid when no key depends on runtime
// parser state (latest.X).
type selectPlan struct {
	id    int // index into packetState.selKeys scratch
	total int
	cases []caseVM
}

type caseVM struct {
	val  bitfield.Value
	mask bitfield.Value
}

func newLayout(prog *hlir.Program) *layout {
	lay := &layout{
		prog:    prog,
		insts:   map[string]*instInfo{},
		fields:  map[refKey]fieldLoc{},
		stdLocs: map[string]fieldLoc{},
		selects: map[string]*selectPlan{},
	}
	// Deterministic slot assignment: headers in deparse order first, then any
	// instance not in HeaderOrder, then metadata sorted by name via the
	// Instances map — determinism only matters for reproducible debugging, so
	// assign metadata in HeaderOrder-then-name order too.
	assigned := map[string]bool{}
	assign := func(name string) {
		if assigned[name] {
			return
		}
		assigned[name] = true
		inst := prog.Instances[name]
		ii := &instInfo{
			name:       name,
			inst:       inst,
			width:      inst.Width(),
			metaSlot:   -1,
			headerBase: -1,
			count:      1,
			stackSlot:  -1,
		}
		if inst.Decl.Metadata {
			ii.metaSlot = lay.numMetaSlots
			lay.numMetaSlots++
			lay.metaInsts = append(lay.metaInsts, ii)
		} else {
			if inst.Decl.IsStack() {
				ii.count = inst.Decl.Count
				ii.stackSlot = lay.numStacks
				lay.numStacks++
			}
			ii.headerBase = lay.numHeaderSlots
			lay.numHeaderSlots += ii.count
			for e := 0; e < ii.count; e++ {
				lay.slots = append(lay.slots, ii)
			}
		}
		lay.insts[name] = ii
		for _, f := range inst.Type.Fields {
			off, _ := inst.Type.FieldOffset(f.Name)
			lay.fields[refKey{name, f.Name}] = fieldLoc{ii: ii, off: off, width: f.Width}
		}
	}
	for _, name := range prog.HeaderOrder {
		assign(name)
	}
	// Remaining instances (metadata, and headers never deparsed) in sorted
	// order for determinism.
	rest := make([]string, 0, len(prog.Instances))
	for name := range prog.Instances {
		if !assigned[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		assign(name)
	}

	std := lay.insts[hlir.StandardMetadata]
	lay.stdSlot = std.metaSlot
	for _, f := range std.inst.Type.Fields {
		lay.stdLocs[f.Name] = lay.fields[refKey{hlir.StandardMetadata, f.Name}]
	}

	lay.planSelects()
	return lay
}

// planSelects precomputes (value, mask) pairs for every select whose key
// widths are static (no latest.X keys).
func (lay *layout) planSelects() {
	for name, st := range lay.prog.States {
		if st.Return.Kind != ast.ReturnSelect {
			continue
		}
		widths := make([]int, len(st.Return.SelectKeys))
		ok := true
		for i, k := range st.Return.SelectKeys {
			switch {
			case k.IsCurrent:
				widths[i] = k.CurrentWidth
			case k.Latest != "":
				ok = false // width depends on the last extracted header
			default:
				loc, found := lay.fields[refKey{k.Field.Instance, k.Field.Field}]
				if !found {
					ok = false
				} else {
					widths[i] = loc.width
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		total := 0
		for _, w := range widths {
			total += w
		}
		plan := &selectPlan{id: len(lay.selectList), total: total}
		for _, c := range st.Return.Cases {
			if c.Default {
				plan.cases = append(plan.cases, caseVM{})
				continue
			}
			val := bitfield.New(total)
			mask := bitfield.New(total)
			off := 0
			for i, w := range widths {
				val.Insert(off, bitfield.FromBig(w, c.Values[i]))
				if c.Masks[i] != nil {
					mask.Insert(off, bitfield.FromBig(w, c.Masks[i]))
				} else {
					mask.Insert(off, bitfield.Ones(w))
				}
				off += w
			}
			plan.cases = append(plan.cases, caseVM{val: val, mask: mask})
		}
		lay.selects[name] = plan
		lay.selectList = append(lay.selectList, plan)
	}
}

// fieldLoc resolves a field reference against the precomputed index.
func (lay *layout) fieldLoc(ref ast.FieldRef) (fieldLoc, error) {
	loc, ok := lay.fields[refKey{ref.Instance, ref.Field}]
	if !ok {
		if _, known := lay.insts[ref.Instance]; !known {
			return fieldLoc{}, fmt.Errorf("sim: unknown instance %q", ref.Instance)
		}
		return fieldLoc{}, fmt.Errorf("sim: %s has no field %q", ref.Instance, ref.Field)
	}
	return loc, nil
}
