package sim

import (
	"errors"
	"fmt"
	"sync/atomic"

	"hyper4/internal/p4/ast"
)

// This file is the switch's fault-containment layer. Process never lets a
// data-plane packet kill the switch: panics raised anywhere in parse /
// pipeline / deparse are recovered and converted — like every other
// per-packet failure — into a *PacketFault carrying a fault kind and the
// attribution value (the persona's per-packet program ID) of the virtual
// device that owned the packet when it failed. A hypervisor layered above
// (the DPMU) subscribes to faults via SetFaultHook and can quarantine a
// misbehaving attribution value through SetQuarantine, which the pipeline
// enforces lock-free on the packet path.

// FaultKind classifies a per-packet failure.
type FaultKind string

const (
	// FaultPanic is a recovered panic inside parse/pipeline/deparse.
	FaultPanic FaultKind = "panic"
	// FaultPassBound is a packet that exceeded the pipeline-pass budget
	// (resubmit/recirculate/clone loop).
	FaultPassBound FaultKind = "pass_bound"
	// FaultParse is a parser failure (bad select target, stack overflow, ...).
	FaultParse FaultKind = "parse_error"
	// FaultPipeline is a match-action runtime failure in ingress or egress.
	FaultPipeline FaultKind = "pipeline_error"
	// FaultDeparse is a deparser/checksum failure.
	FaultDeparse FaultKind = "deparse_error"
)

// FaultKinds lists every fault kind, in stable exposition order.
func FaultKinds() []FaultKind {
	return []FaultKind{FaultPanic, FaultPassBound, FaultParse, FaultPipeline, FaultDeparse}
}

// PacketFault is the structured error Process returns when a packet fails.
// The packet is dropped; the switch stays up.
type PacketFault struct {
	Kind FaultKind
	Port int    // physical ingress port of the failing pass
	Attr uint64 // attribution value (program ID) at failure time; 0 = unattributed
	Msg  string

	err error // underlying stage error, when the fault wraps one
}

func (f *PacketFault) Error() string { return f.Msg }

// Unwrap exposes the underlying stage error for errors.Is/As chains.
func (f *PacketFault) Unwrap() error { return f.err }

// Injector is the fault-injection hook interface (implemented by
// internal/chaos). The zero configuration is a nil Injector: the packet path
// then pays one nil check per table apply and per action, nothing else.
// Implementations must be safe for concurrent use.
type Injector interface {
	// Action is called before every action body runs; it may panic to
	// simulate a defect inside the action (recovered by Process).
	Action(attr uint64, action string)
	// ForceMiss reports whether this table application should skip lookup
	// and behave as a miss.
	ForceMiss(attr uint64, table string) bool
	// PassBound returns an override for the pipeline-pass budget
	// (0 keeps MaxPasses).
	PassBound() int
	// Delay is called once per Process call and may sleep to inject latency.
	Delay()
}

// attribution locates the metadata field whose value identifies the virtual
// device a packet currently belongs to (the persona's [hp4].program field).
type attribution struct {
	enabled bool
	slot    int
	off     int
	width   int
}

// SetAttributionField configures fault attribution to read the given
// metadata field. The DPMU points this at the persona's program-ID field so
// faults and quarantine decisions are per-vdev.
func (sw *Switch) SetAttributionField(ref ast.FieldRef) error {
	loc, err := sw.lay.fieldLoc(ref)
	if err != nil {
		return err
	}
	if loc.ii.metaSlot < 0 {
		return fmt.Errorf("sim: attribution field %s.%s is not metadata", ref.Instance, ref.Field)
	}
	sw.mu.Lock()
	sw.attrib = attribution{enabled: true, slot: loc.ii.metaSlot, off: loc.off, width: loc.width}
	sw.mu.Unlock()
	return nil
}

// attrOf reads the attribution value from a packet state (0 when attribution
// is not configured or not yet assigned this pass).
func (sw *Switch) attrOf(ps *packetState) uint64 {
	if !sw.attrib.enabled {
		return 0
	}
	return ps.meta[sw.attrib.slot].UintAt(sw.attrib.off, sw.attrib.width)
}

// SetInjector installs (or, with nil, removes) a fault injector.
func (sw *Switch) SetInjector(inj Injector) {
	sw.mu.Lock()
	sw.injector = inj
	sw.mu.Unlock()
}

// SetFaultHook installs a callback invoked once per PacketFault, after the
// fault is counted. The hook runs on the packet path while the switch's
// control-plane read lock is held: it must be fast and must NOT call any
// Switch control-plane mutator (TableAdd, SetQuarantine is safe — it is
// lock-free — but table mutations would deadlock).
func (sw *Switch) SetFaultHook(hook func(*PacketFault)) {
	sw.mu.Lock()
	sw.faultHook = hook
	sw.mu.Unlock()
}

// fault counts a packet fault and notifies the hook; returns f for
// convenience at return sites.
func (sw *Switch) fault(f *PacketFault) *PacketFault {
	sw.metrics.recordFault(f.Kind)
	if h := sw.faultHook; h != nil {
		h(f)
	}
	return f
}

// --- quarantine ---

// quarEntry is one quarantined attribution value. budget is the remaining
// number of half-open probe passes allowed through; at or below zero every
// pass attributed to the value is dropped.
type quarEntry struct {
	budget atomic.Int64
}

// quarTable is the active quarantine set, swapped atomically as a whole so
// the packet path never takes a lock to consult it.
type quarTable struct {
	m map[uint64]*quarEntry
}

// errQuarantined aborts the current pass when its attribution value is
// quarantined. It is a control-flow sentinel, not a fault: the packet is
// dropped silently (counted as a quarantine drop).
var errQuarantined = errors.New("sim: vdev quarantined")

// SetQuarantine replaces the quarantine set. Keys are attribution values;
// each value is the probe budget (0 = drop everything, N > 0 = let N passes
// through half-open). A nil or empty map clears all quarantines. Safe to
// call concurrently with Process (lock-free swap); replacing the set resets
// any partially consumed probe budgets, so callers that care read
// QuarantineRemaining first.
func (sw *Switch) SetQuarantine(budgets map[uint64]int64) {
	if len(budgets) == 0 {
		sw.quar.Store(nil)
		return
	}
	qt := &quarTable{m: make(map[uint64]*quarEntry, len(budgets))}
	for attr, budget := range budgets {
		e := &quarEntry{}
		e.budget.Store(budget)
		qt.m[attr] = e
	}
	sw.quar.Store(qt)
}

// QuarantineRemaining returns the remaining probe budget for an attribution
// value, and whether the value is quarantined at all. A consumed budget
// reads as negative or zero.
func (sw *Switch) QuarantineRemaining(attr uint64) (int64, bool) {
	qt := sw.quar.Load()
	if qt == nil {
		return 0, false
	}
	e, ok := qt.m[attr]
	if !ok {
		return 0, false
	}
	return e.budget.Load(), true
}

// Pass-level quarantine verdict cache values (packetState.quarVerdict).
const (
	quarUnchecked = int8(0)
	quarAllowed   = int8(1)
)

// quarCheck enforces the quarantine set at a table-apply boundary. The
// verdict is cached per pass once the packet is attributed, so the steady
// cost is one atomic pointer load per table apply; a probe budget is
// consumed at most once per pass.
func (sw *Switch) quarCheck(ps *packetState) error {
	qt := sw.quar.Load()
	if qt == nil {
		return nil
	}
	if ps.quarVerdict == quarAllowed {
		return nil
	}
	attr := sw.attrOf(ps)
	if attr == 0 {
		// Not yet attributed (persona's assignment table has not run);
		// keep checking until it is.
		return nil
	}
	e, ok := qt.m[attr]
	if !ok {
		ps.quarVerdict = quarAllowed
		return nil
	}
	if e.budget.Add(-1) >= 0 {
		// Half-open probe: let this pass through.
		ps.quarVerdict = quarAllowed
		return nil
	}
	return errQuarantined
}
