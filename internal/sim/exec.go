package sim

import (
	"fmt"

	"hyper4/internal/bitfield"
	"hyper4/internal/p4/ast"
)

// maxActionDepth bounds compound-action recursion.
const maxActionDepth = 32

// actionFrame binds a compound action's parameters to its argument values.
// It replaces a per-invocation map: parameter lists are tiny, so a linear
// scan over the shared params slice is both faster and allocation-free.
type actionFrame struct {
	params []string
	args   []bitfield.Value
}

func (f actionFrame) lookup(name string) (bitfield.Value, bool) {
	for i, p := range f.params {
		if p == name {
			return f.args[i], true
		}
	}
	return bitfield.Value{}, false
}

// runStmts executes a control-flow statement list.
func (sw *Switch) runStmts(stmts []ast.Stmt, ps *packetState, tr *Trace) error {
	for i := range stmts {
		s := &stmts[i]
		switch s.Kind {
		case ast.StmtApply:
			if err := sw.applyTable(s, ps, tr); err != nil {
				return err
			}
		case ast.StmtIf:
			ok, err := sw.evalBool(s.Cond, ps)
			if err != nil {
				return err
			}
			branch := s.Then
			if !ok {
				branch = s.Else
			}
			if err := sw.runStmts(branch, ps, tr); err != nil {
				return err
			}
		case ast.StmtCall:
			ctl, ok := sw.prog.Controls[s.Control]
			if !ok {
				return fmt.Errorf("sim: call of unknown control %q", s.Control)
			}
			if err := sw.runStmts(ctl.Body, ps, tr); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyTable performs one match-action stage: build the key, look up the
// entry, run the action (or default on miss), then any apply-case blocks.
func (sw *Switch) applyTable(s *ast.Stmt, ps *packetState, tr *Trace) error {
	t, err := sw.table(s.Table)
	if err != nil {
		return err
	}
	if err := sw.quarCheck(ps); err != nil {
		return err
	}
	sw.stats.tableApplies.Add(1)
	var entry *Entry
	if inj := sw.injector; inj != nil && inj.ForceMiss(sw.attrOf(ps), s.Table) {
		// Injected lookup miss: skip the lookup, run the default action.
	} else if entry, err = t.lookup(ps); err != nil {
		return fmt.Errorf("sim: table %s: %w", s.Table, err)
	}
	tr.recordApply(s.Table, t, entry, ps.inEgress)

	var actionName string
	var args []bitfield.Value
	hit := entry != nil
	if hit {
		t.metrics.hits.Add(1)
		entry.hits.Add(1)
		actionName = entry.Action
		args = entry.Args
	} else {
		t.metrics.misses.Add(1)
		if t.defaultAction != "" {
			t.metrics.defaults.Add(1)
		}
		actionName = t.defaultAction
		args = t.defaultArgs
	}
	if actionName != "" {
		if err := sw.runAction(actionName, args, ps, tr, entry, t, 0); err != nil {
			return fmt.Errorf("sim: table %s action %s: %w", s.Table, actionName, err)
		}
	}
	// Apply-case blocks: hit {} / miss {} / per-action {}.
	for _, c := range s.ApplyCases {
		run := false
		switch {
		case c.Hit:
			run = hit
		case c.Miss:
			run = !hit
		default:
			run = actionName == c.Action
		}
		if run {
			if err := sw.runStmts(c.Body, ps, tr); err != nil {
				return err
			}
		}
	}
	return nil
}

// runAction executes a compound action with args bound to its parameters.
func (sw *Switch) runAction(name string, args []bitfield.Value, ps *packetState, tr *Trace, entry *Entry, t *table, depth int) error {
	if depth >= maxActionDepth {
		return fmt.Errorf("action nesting exceeds %d", maxActionDepth)
	}
	act, ok := sw.prog.Actions[name]
	if !ok {
		return fmt.Errorf("unknown action %q", name)
	}
	if i, ok := sw.metrics.actionIndex[name]; ok {
		sw.metrics.actionCounts[i].Add(1)
	}
	if inj := sw.injector; inj != nil {
		// May panic to simulate a defect in the action body; Process
		// recovers it into a FaultPanic.
		inj.Action(sw.attrOf(ps), name)
	}
	if len(args) != len(act.Params) {
		return fmt.Errorf("action %s wants %d args, got %d", name, len(act.Params), len(args))
	}
	frame := actionFrame{params: act.Params, args: args}
	for i := range act.Body {
		if err := sw.runPrimitive(&act.Body[i], frame, ps, tr, entry, t, depth); err != nil {
			return err
		}
	}
	return nil
}

// evalExpr evaluates a data argument to a value. widthHint shapes constants
// and parameter values; pass 0 to keep natural widths.
func (sw *Switch) evalExpr(e ast.Expr, frame actionFrame, ps *packetState, widthHint int) (bitfield.Value, error) {
	switch e.Kind {
	case ast.ExprConst:
		w := widthHint
		if w == 0 {
			w = max(e.Const.BitLen(), 1)
		}
		return bitfield.FromBig(w, e.Const), nil
	case ast.ExprField:
		v, err := ps.getField(e.Field)
		if err != nil {
			return bitfield.Value{}, err
		}
		if widthHint != 0 {
			v = v.Resize(widthHint)
		}
		return v, nil
	case ast.ExprParam:
		v, ok := frame.lookup(e.Param)
		if !ok {
			return bitfield.Value{}, fmt.Errorf("unbound parameter %q", e.Param)
		}
		if widthHint != 0 {
			v = v.Resize(widthHint)
		}
		return v, nil
	case ast.ExprName:
		// A bare name in data position is not a value.
		return bitfield.Value{}, fmt.Errorf("name %q is not a value", e.Name)
	default:
		return bitfield.Value{}, fmt.Errorf("expression kind %d is not a value", e.Kind)
	}
}

// evalBool evaluates an if condition.
func (sw *Switch) evalBool(b ast.BoolExpr, ps *packetState) (bool, error) {
	switch b.Kind {
	case ast.BoolValid:
		slot, err := ps.resolveHeaderRef(*b.Valid)
		if err != nil {
			return false, err
		}
		return ps.headers[slot].valid, nil
	case ast.BoolAnd:
		l, err := sw.evalBool(*b.A, ps)
		if err != nil || !l {
			return false, err
		}
		return sw.evalBool(*b.B, ps)
	case ast.BoolOr:
		l, err := sw.evalBool(*b.A, ps)
		if err != nil || l {
			return l, err
		}
		return sw.evalBool(*b.B, ps)
	case ast.BoolNot:
		v, err := sw.evalBool(*b.A, ps)
		return !v, err
	case ast.BoolCmp:
		// Width rule: compare at the wider of the two operand widths.
		lw, rw := sw.exprWidth(*b.Left, ps), sw.exprWidth(*b.Right, ps)
		w := max(max(lw, rw), 1)
		l, err := sw.evalExpr(*b.Left, actionFrame{}, ps, w)
		if err != nil {
			return false, err
		}
		r, err := sw.evalExpr(*b.Right, actionFrame{}, ps, w)
		if err != nil {
			return false, err
		}
		switch b.Op {
		case ast.OpEq:
			return l.Equal(r), nil
		case ast.OpNe:
			return !l.Equal(r), nil
		case ast.OpLt:
			return l.Cmp(r) < 0, nil
		case ast.OpLe:
			return l.Cmp(r) <= 0, nil
		case ast.OpGt:
			return l.Cmp(r) > 0, nil
		case ast.OpGe:
			return l.Cmp(r) >= 0, nil
		}
	}
	return false, fmt.Errorf("bad boolean expression")
}

// exprWidth returns the natural width of an expression (0 when unknown).
func (sw *Switch) exprWidth(e ast.Expr, ps *packetState) int {
	switch e.Kind {
	case ast.ExprField:
		if w, err := ps.fieldWidth(e.Field); err == nil {
			return w
		}
	case ast.ExprConst:
		return max(e.Const.BitLen(), 1)
	}
	return 0
}
