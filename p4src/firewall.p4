
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type ipv4_t {
    fields {
        verIhl : 8;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flagsFrag : 16;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}

header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}

header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}

header ethernet_t ethernet;
header ipv4_t ipv4;
header tcp_t tcp;
header udp_t udp;

parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}

parser parse_ipv4 {
    extract(ipv4);
    return select(latest.protocol) {
        6 : parse_tcp;
        17 : parse_udp;
        default : ingress;
    }
}

parser parse_tcp {
    extract(tcp);
    return ingress;
}

parser parse_udp {
    extract(udp);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

table ip_filter {
    reads {
        ipv4.srcAddr : ternary;
        ipv4.dstAddr : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table tcp_filter {
    reads {
        tcp.srcPort : ternary;
        tcp.dstPort : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table udp_filter {
    reads {
        udp.srcPort : ternary;
        udp.dstPort : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    size : 512;
}

control ingress {
    if (valid(ipv4)) {
        apply(ip_filter);
    }
    if (valid(tcp)) {
        apply(tcp_filter);
    } else {
        if (valid(udp)) {
            apply(udp_filter);
        }
    }
    apply(dmac);
}
