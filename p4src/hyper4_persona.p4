header_type u_byte_t {
    fields {
        b : 8;
    }
}

header_type hp4_meta_t {
    fields {
        program : 16;
        numbytes : 16;
        parsed : 16;
        parse_state : 16;
        next_table : 8;
        next_slot : 16;
        match_id : 32;
        prims_left : 8;
        prim_type : 8;
        vdev_port : 16;
        vdev_ingress : 16;
        wb_bytes : 16;
        recirc : 8;
        csum : 8;
        dropped : 8;
        mcast : 16;
        color : 8;
        fpath : 8;
    }
}

header_type hp4_data_t {
    fields {
        extracted : 800;
        emeta : 256;
    }
}

header_type hp4_scratch_t {
    fields {
        tmp : 800;
        dmask : 800;
        dshift : 16;
        slshift : 16;
        srshift : 16;
        cval : 64;
        acc : 32;
    }
}

metadata hp4_meta_t hp4;
metadata hp4_data_t hp4d;
metadata hp4_scratch_t hp4s;
header u_byte_t ext[100];

field_list fl_resubmit {
    hp4.program;
    hp4.numbytes;
    hp4.parse_state;
    hp4.vdev_ingress;
}

field_list fl_recirc {
    hp4.program;
    hp4.vdev_ingress;
}

counter hp4_vdev_counter {
    type : packets;
    instance_count : 256;
}

meter hp4_ingress_meter {
    type : packets;
    instance_count : 256;
}

parser start {
    return select(hp4.numbytes) {
        0x0 : p_bytes_20;
        0x14 : p_bytes_20;
        0x1e : p_bytes_30;
        0x28 : p_bytes_40;
        0x32 : p_bytes_50;
        0x3c : p_bytes_60;
        0x46 : p_bytes_70;
        0x50 : p_bytes_80;
        0x5a : p_bytes_90;
        0x64 : p_bytes_100;
        default : p_bytes_20;
    }
}

parser p_bytes_20 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x14);
    return ingress;
}

parser p_bytes_30 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x1e);
    return ingress;
}

parser p_bytes_40 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x28);
    return ingress;
}

parser p_bytes_50 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x32);
    return ingress;
}

parser p_bytes_60 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x3c);
    return ingress;
}

parser p_bytes_70 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x46);
    return ingress;
}

parser p_bytes_80 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x50);
    return ingress;
}

parser p_bytes_90 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x5a);
    return ingress;
}

parser p_bytes_100 {
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    extract(ext[next]);
    set_metadata(hp4.parsed, 0x64);
    return ingress;
}

action a_norm_20() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_30() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_40() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[30].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x228);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[31].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[32].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x218);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[33].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[34].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x208);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[35].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[36].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[37].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[38].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[39].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_50() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[30].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x228);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[31].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[32].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x218);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[33].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[34].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x208);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[35].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[36].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[37].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[38].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[39].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[40].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[41].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[42].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[43].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[44].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[45].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[46].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[47].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[48].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x198);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[49].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x190);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_60() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[30].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x228);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[31].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[32].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x218);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[33].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[34].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x208);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[35].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[36].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[37].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[38].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[39].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[40].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[41].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[42].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[43].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[44].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[45].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[46].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[47].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[48].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x198);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[49].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x190);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[50].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x188);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[51].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x180);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[52].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x178);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[53].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x170);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[54].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x168);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[55].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x160);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[56].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x158);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[57].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x150);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[58].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x148);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[59].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x140);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_70() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[30].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x228);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[31].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[32].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x218);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[33].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[34].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x208);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[35].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[36].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[37].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[38].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[39].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[40].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[41].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[42].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[43].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[44].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[45].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[46].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[47].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[48].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x198);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[49].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x190);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[50].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x188);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[51].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x180);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[52].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x178);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[53].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x170);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[54].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x168);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[55].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x160);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[56].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x158);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[57].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x150);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[58].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x148);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[59].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x140);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[60].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x138);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[61].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x130);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[62].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x128);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[63].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x120);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[64].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x118);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[65].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x110);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[66].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x108);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[67].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x100);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[68].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[69].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_80() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[30].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x228);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[31].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[32].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x218);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[33].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[34].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x208);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[35].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[36].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[37].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[38].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[39].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[40].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[41].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[42].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[43].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[44].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[45].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[46].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[47].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[48].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x198);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[49].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x190);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[50].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x188);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[51].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x180);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[52].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x178);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[53].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x170);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[54].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x168);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[55].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x160);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[56].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x158);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[57].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x150);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[58].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x148);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[59].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x140);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[60].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x138);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[61].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x130);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[62].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x128);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[63].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x120);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[64].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x118);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[65].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x110);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[66].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x108);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[67].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x100);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[68].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[69].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[70].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xe8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[71].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xe0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[72].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xd8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[73].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xd0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[74].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xc8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[75].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xc0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[76].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xb8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[77].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xb0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[78].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xa8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[79].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xa0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_90() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[30].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x228);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[31].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[32].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x218);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[33].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[34].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x208);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[35].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[36].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[37].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[38].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[39].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[40].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[41].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[42].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[43].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[44].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[45].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[46].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[47].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[48].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x198);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[49].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x190);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[50].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x188);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[51].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x180);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[52].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x178);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[53].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x170);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[54].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x168);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[55].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x160);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[56].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x158);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[57].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x150);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[58].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x148);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[59].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x140);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[60].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x138);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[61].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x130);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[62].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x128);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[63].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x120);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[64].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x118);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[65].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x110);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[66].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x108);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[67].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x100);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[68].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[69].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[70].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xe8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[71].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xe0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[72].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xd8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[73].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xd0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[74].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xc8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[75].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xc0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[76].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xb8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[77].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xb0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[78].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xa8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[79].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xa0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[80].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x98);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[81].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x90);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[82].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x88);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[83].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x80);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[84].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x78);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[85].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x70);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[86].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x68);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[87].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x60);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[88].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x58);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[89].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x50);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_norm_100() {
    modify_field(hp4s.tmp, ext[0].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x318);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[1].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x310);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[2].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x308);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[3].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x300);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[4].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[5].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[6].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[7].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[8].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[9].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[10].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[11].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[12].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[13].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[14].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[15].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[16].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x298);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[17].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[18].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[19].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[20].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x278);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[21].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[22].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[23].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[24].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x258);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[25].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[26].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x248);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[27].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[28].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x238);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[29].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[30].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x228);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[31].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[32].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x218);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[33].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[34].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x208);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[35].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[36].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[37].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[38].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[39].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[40].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[41].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[42].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[43].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[44].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[45].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[46].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[47].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[48].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x198);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[49].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x190);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[50].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x188);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[51].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x180);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[52].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x178);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[53].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x170);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[54].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x168);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[55].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x160);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[56].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x158);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[57].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x150);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[58].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x148);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[59].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x140);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[60].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x138);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[61].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x130);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[62].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x128);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[63].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x120);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[64].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x118);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[65].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x110);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[66].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x108);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[67].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x100);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[68].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[69].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xf0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[70].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xe8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[71].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xe0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[72].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xd8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[73].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xd0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[74].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xc8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[75].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xc0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[76].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xb8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[77].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xb0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[78].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xa8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[79].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0xa0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[80].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x98);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[81].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x90);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[82].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x88);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[83].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x80);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[84].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x78);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[85].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x70);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[86].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x68);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[87].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x60);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[88].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x58);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[89].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x50);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[90].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x48);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[91].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x40);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[92].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x38);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[93].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x30);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[94].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x28);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[95].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x20);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[96].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x18);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[97].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x10);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[98].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, ext[99].b);
    shift_left(hp4s.tmp, hp4s.tmp, 0x0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_set_program(program, vingress) {
    modify_field(hp4.program, program);
    modify_field(hp4.vdev_ingress, vingress);
}

action a_parse_more(numbytes, pstate) {
    modify_field(hp4.numbytes, numbytes);
    modify_field(hp4.parse_state, pstate);
    resubmit(fl_resubmit);
}

action a_parse_done(next_table, next_slot, csum) {
    modify_field(hp4.next_table, next_table);
    modify_field(hp4.next_slot, next_slot);
    modify_field(hp4.wb_bytes, hp4.parsed);
    modify_field(hp4.csum, csum);
}

action a_set_match(match_id, prims_left, next_table, next_slot) {
    modify_field(hp4.match_id, match_id);
    modify_field(hp4.prims_left, prims_left);
    modify_field(hp4.next_table, next_table);
    modify_field(hp4.next_slot, next_slot);
}

action a_prep_mod_ed_const(dmask, dshift, cval) {
    modify_field(hp4.prim_type, 0x1);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_mod_ed_ed(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0x2);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_ed_meta(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0x3);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_meta_ed(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0x4);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_meta_const(dmask, dshift, cval) {
    modify_field(hp4.prim_type, 0x5);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_mod_meta_meta(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0xc);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_vport_const(cval) {
    modify_field(hp4.prim_type, 0x6);
    modify_field(hp4s.cval, cval);
}

action a_prep_mod_vport_vingress() {
    modify_field(hp4.prim_type, 0x7);
}

action a_prep_add_ed_const(dmask, dshift, slshift, srshift, cval) {
    modify_field(hp4.prim_type, 0x8);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_add_meta_const(dmask, dshift, slshift, srshift, cval) {
    modify_field(hp4.prim_type, 0x9);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_drop() {
    modify_field(hp4.prim_type, 0xa);
}

action a_prep_no_op() {
    modify_field(hp4.prim_type, 0xb);
}

action a_exec_mod_ed_const() {
    modify_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_mod_ed_ed() {
    modify_field(hp4s.tmp, hp4d.extracted);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_mod_ed_meta() {
    modify_field(hp4s.tmp, hp4d.emeta);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_mod_meta_ed() {
    modify_field(hp4s.tmp, hp4d.extracted);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_mod_meta_const() {
    modify_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_mod_meta_meta() {
    modify_field(hp4s.tmp, hp4d.emeta);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_mod_vport_const() {
    modify_field(hp4.vdev_port, hp4s.cval);
}

action a_exec_mod_vport_vingress() {
    modify_field(hp4.vdev_port, hp4.vdev_ingress);
}

action a_exec_add_ed_const() {
    modify_field(hp4s.tmp, hp4d.extracted);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    add_to_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_add_meta_const() {
    modify_field(hp4s.tmp, hp4d.emeta);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    add_to_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_drop() {
    modify_field(hp4.vdev_port, 0x1ff);
    modify_field(hp4.dropped, 0x1);
}

action a_exec_no_op() {
    no_op();
}

action a_prim_done() {
    subtract_from_field(hp4.prims_left, 0x1);
}

action a_phys_fwd(port) {
    modify_field(standard_metadata.egress_spec, port);
}

action a_virt_fwd(next_program, next_vingress, port) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.recirc, 0x1);
    modify_field(standard_metadata.egress_spec, port);
}

action a_vdrop() {
    drop();
}

action a_do_recirc() {
    modify_field(hp4.recirc, 0x0);
    recirculate(fl_recirc);
}

action a_ipv4_csum(ncmask, shift0, cshift) {
    bit_and(hp4d.extracted, hp4d.extracted, ncmask);
    modify_field(hp4s.acc, 0x0);
    modify_field(hp4s.slshift, shift0);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4s.acc, 0x10);
    bit_and(hp4s.acc, hp4s.acc, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    shift_right(hp4s.tmp, hp4s.acc, 0x10);
    bit_and(hp4s.acc, hp4s.acc, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    shift_right(hp4s.tmp, hp4s.acc, 0x10);
    bit_and(hp4s.acc, hp4s.acc, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    bit_xor(hp4s.acc, hp4s.acc, 0xffff);
    modify_field(hp4s.tmp, hp4s.acc);
    shift_left(hp4s.tmp, hp4s.tmp, cshift);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_resize_20() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    remove_header(ext[20]);
    remove_header(ext[21]);
    remove_header(ext[22]);
    remove_header(ext[23]);
    remove_header(ext[24]);
    remove_header(ext[25]);
    remove_header(ext[26]);
    remove_header(ext[27]);
    remove_header(ext[28]);
    remove_header(ext[29]);
    remove_header(ext[30]);
    remove_header(ext[31]);
    remove_header(ext[32]);
    remove_header(ext[33]);
    remove_header(ext[34]);
    remove_header(ext[35]);
    remove_header(ext[36]);
    remove_header(ext[37]);
    remove_header(ext[38]);
    remove_header(ext[39]);
    remove_header(ext[40]);
    remove_header(ext[41]);
    remove_header(ext[42]);
    remove_header(ext[43]);
    remove_header(ext[44]);
    remove_header(ext[45]);
    remove_header(ext[46]);
    remove_header(ext[47]);
    remove_header(ext[48]);
    remove_header(ext[49]);
    remove_header(ext[50]);
    remove_header(ext[51]);
    remove_header(ext[52]);
    remove_header(ext[53]);
    remove_header(ext[54]);
    remove_header(ext[55]);
    remove_header(ext[56]);
    remove_header(ext[57]);
    remove_header(ext[58]);
    remove_header(ext[59]);
    remove_header(ext[60]);
    remove_header(ext[61]);
    remove_header(ext[62]);
    remove_header(ext[63]);
    remove_header(ext[64]);
    remove_header(ext[65]);
    remove_header(ext[66]);
    remove_header(ext[67]);
    remove_header(ext[68]);
    remove_header(ext[69]);
    remove_header(ext[70]);
    remove_header(ext[71]);
    remove_header(ext[72]);
    remove_header(ext[73]);
    remove_header(ext[74]);
    remove_header(ext[75]);
    remove_header(ext[76]);
    remove_header(ext[77]);
    remove_header(ext[78]);
    remove_header(ext[79]);
    remove_header(ext[80]);
    remove_header(ext[81]);
    remove_header(ext[82]);
    remove_header(ext[83]);
    remove_header(ext[84]);
    remove_header(ext[85]);
    remove_header(ext[86]);
    remove_header(ext[87]);
    remove_header(ext[88]);
    remove_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_30() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    remove_header(ext[30]);
    remove_header(ext[31]);
    remove_header(ext[32]);
    remove_header(ext[33]);
    remove_header(ext[34]);
    remove_header(ext[35]);
    remove_header(ext[36]);
    remove_header(ext[37]);
    remove_header(ext[38]);
    remove_header(ext[39]);
    remove_header(ext[40]);
    remove_header(ext[41]);
    remove_header(ext[42]);
    remove_header(ext[43]);
    remove_header(ext[44]);
    remove_header(ext[45]);
    remove_header(ext[46]);
    remove_header(ext[47]);
    remove_header(ext[48]);
    remove_header(ext[49]);
    remove_header(ext[50]);
    remove_header(ext[51]);
    remove_header(ext[52]);
    remove_header(ext[53]);
    remove_header(ext[54]);
    remove_header(ext[55]);
    remove_header(ext[56]);
    remove_header(ext[57]);
    remove_header(ext[58]);
    remove_header(ext[59]);
    remove_header(ext[60]);
    remove_header(ext[61]);
    remove_header(ext[62]);
    remove_header(ext[63]);
    remove_header(ext[64]);
    remove_header(ext[65]);
    remove_header(ext[66]);
    remove_header(ext[67]);
    remove_header(ext[68]);
    remove_header(ext[69]);
    remove_header(ext[70]);
    remove_header(ext[71]);
    remove_header(ext[72]);
    remove_header(ext[73]);
    remove_header(ext[74]);
    remove_header(ext[75]);
    remove_header(ext[76]);
    remove_header(ext[77]);
    remove_header(ext[78]);
    remove_header(ext[79]);
    remove_header(ext[80]);
    remove_header(ext[81]);
    remove_header(ext[82]);
    remove_header(ext[83]);
    remove_header(ext[84]);
    remove_header(ext[85]);
    remove_header(ext[86]);
    remove_header(ext[87]);
    remove_header(ext[88]);
    remove_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_40() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    add_header(ext[30]);
    add_header(ext[31]);
    add_header(ext[32]);
    add_header(ext[33]);
    add_header(ext[34]);
    add_header(ext[35]);
    add_header(ext[36]);
    add_header(ext[37]);
    add_header(ext[38]);
    add_header(ext[39]);
    remove_header(ext[40]);
    remove_header(ext[41]);
    remove_header(ext[42]);
    remove_header(ext[43]);
    remove_header(ext[44]);
    remove_header(ext[45]);
    remove_header(ext[46]);
    remove_header(ext[47]);
    remove_header(ext[48]);
    remove_header(ext[49]);
    remove_header(ext[50]);
    remove_header(ext[51]);
    remove_header(ext[52]);
    remove_header(ext[53]);
    remove_header(ext[54]);
    remove_header(ext[55]);
    remove_header(ext[56]);
    remove_header(ext[57]);
    remove_header(ext[58]);
    remove_header(ext[59]);
    remove_header(ext[60]);
    remove_header(ext[61]);
    remove_header(ext[62]);
    remove_header(ext[63]);
    remove_header(ext[64]);
    remove_header(ext[65]);
    remove_header(ext[66]);
    remove_header(ext[67]);
    remove_header(ext[68]);
    remove_header(ext[69]);
    remove_header(ext[70]);
    remove_header(ext[71]);
    remove_header(ext[72]);
    remove_header(ext[73]);
    remove_header(ext[74]);
    remove_header(ext[75]);
    remove_header(ext[76]);
    remove_header(ext[77]);
    remove_header(ext[78]);
    remove_header(ext[79]);
    remove_header(ext[80]);
    remove_header(ext[81]);
    remove_header(ext[82]);
    remove_header(ext[83]);
    remove_header(ext[84]);
    remove_header(ext[85]);
    remove_header(ext[86]);
    remove_header(ext[87]);
    remove_header(ext[88]);
    remove_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_50() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    add_header(ext[30]);
    add_header(ext[31]);
    add_header(ext[32]);
    add_header(ext[33]);
    add_header(ext[34]);
    add_header(ext[35]);
    add_header(ext[36]);
    add_header(ext[37]);
    add_header(ext[38]);
    add_header(ext[39]);
    add_header(ext[40]);
    add_header(ext[41]);
    add_header(ext[42]);
    add_header(ext[43]);
    add_header(ext[44]);
    add_header(ext[45]);
    add_header(ext[46]);
    add_header(ext[47]);
    add_header(ext[48]);
    add_header(ext[49]);
    remove_header(ext[50]);
    remove_header(ext[51]);
    remove_header(ext[52]);
    remove_header(ext[53]);
    remove_header(ext[54]);
    remove_header(ext[55]);
    remove_header(ext[56]);
    remove_header(ext[57]);
    remove_header(ext[58]);
    remove_header(ext[59]);
    remove_header(ext[60]);
    remove_header(ext[61]);
    remove_header(ext[62]);
    remove_header(ext[63]);
    remove_header(ext[64]);
    remove_header(ext[65]);
    remove_header(ext[66]);
    remove_header(ext[67]);
    remove_header(ext[68]);
    remove_header(ext[69]);
    remove_header(ext[70]);
    remove_header(ext[71]);
    remove_header(ext[72]);
    remove_header(ext[73]);
    remove_header(ext[74]);
    remove_header(ext[75]);
    remove_header(ext[76]);
    remove_header(ext[77]);
    remove_header(ext[78]);
    remove_header(ext[79]);
    remove_header(ext[80]);
    remove_header(ext[81]);
    remove_header(ext[82]);
    remove_header(ext[83]);
    remove_header(ext[84]);
    remove_header(ext[85]);
    remove_header(ext[86]);
    remove_header(ext[87]);
    remove_header(ext[88]);
    remove_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_60() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    add_header(ext[30]);
    add_header(ext[31]);
    add_header(ext[32]);
    add_header(ext[33]);
    add_header(ext[34]);
    add_header(ext[35]);
    add_header(ext[36]);
    add_header(ext[37]);
    add_header(ext[38]);
    add_header(ext[39]);
    add_header(ext[40]);
    add_header(ext[41]);
    add_header(ext[42]);
    add_header(ext[43]);
    add_header(ext[44]);
    add_header(ext[45]);
    add_header(ext[46]);
    add_header(ext[47]);
    add_header(ext[48]);
    add_header(ext[49]);
    add_header(ext[50]);
    add_header(ext[51]);
    add_header(ext[52]);
    add_header(ext[53]);
    add_header(ext[54]);
    add_header(ext[55]);
    add_header(ext[56]);
    add_header(ext[57]);
    add_header(ext[58]);
    add_header(ext[59]);
    remove_header(ext[60]);
    remove_header(ext[61]);
    remove_header(ext[62]);
    remove_header(ext[63]);
    remove_header(ext[64]);
    remove_header(ext[65]);
    remove_header(ext[66]);
    remove_header(ext[67]);
    remove_header(ext[68]);
    remove_header(ext[69]);
    remove_header(ext[70]);
    remove_header(ext[71]);
    remove_header(ext[72]);
    remove_header(ext[73]);
    remove_header(ext[74]);
    remove_header(ext[75]);
    remove_header(ext[76]);
    remove_header(ext[77]);
    remove_header(ext[78]);
    remove_header(ext[79]);
    remove_header(ext[80]);
    remove_header(ext[81]);
    remove_header(ext[82]);
    remove_header(ext[83]);
    remove_header(ext[84]);
    remove_header(ext[85]);
    remove_header(ext[86]);
    remove_header(ext[87]);
    remove_header(ext[88]);
    remove_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_70() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    add_header(ext[30]);
    add_header(ext[31]);
    add_header(ext[32]);
    add_header(ext[33]);
    add_header(ext[34]);
    add_header(ext[35]);
    add_header(ext[36]);
    add_header(ext[37]);
    add_header(ext[38]);
    add_header(ext[39]);
    add_header(ext[40]);
    add_header(ext[41]);
    add_header(ext[42]);
    add_header(ext[43]);
    add_header(ext[44]);
    add_header(ext[45]);
    add_header(ext[46]);
    add_header(ext[47]);
    add_header(ext[48]);
    add_header(ext[49]);
    add_header(ext[50]);
    add_header(ext[51]);
    add_header(ext[52]);
    add_header(ext[53]);
    add_header(ext[54]);
    add_header(ext[55]);
    add_header(ext[56]);
    add_header(ext[57]);
    add_header(ext[58]);
    add_header(ext[59]);
    add_header(ext[60]);
    add_header(ext[61]);
    add_header(ext[62]);
    add_header(ext[63]);
    add_header(ext[64]);
    add_header(ext[65]);
    add_header(ext[66]);
    add_header(ext[67]);
    add_header(ext[68]);
    add_header(ext[69]);
    remove_header(ext[70]);
    remove_header(ext[71]);
    remove_header(ext[72]);
    remove_header(ext[73]);
    remove_header(ext[74]);
    remove_header(ext[75]);
    remove_header(ext[76]);
    remove_header(ext[77]);
    remove_header(ext[78]);
    remove_header(ext[79]);
    remove_header(ext[80]);
    remove_header(ext[81]);
    remove_header(ext[82]);
    remove_header(ext[83]);
    remove_header(ext[84]);
    remove_header(ext[85]);
    remove_header(ext[86]);
    remove_header(ext[87]);
    remove_header(ext[88]);
    remove_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_80() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    add_header(ext[30]);
    add_header(ext[31]);
    add_header(ext[32]);
    add_header(ext[33]);
    add_header(ext[34]);
    add_header(ext[35]);
    add_header(ext[36]);
    add_header(ext[37]);
    add_header(ext[38]);
    add_header(ext[39]);
    add_header(ext[40]);
    add_header(ext[41]);
    add_header(ext[42]);
    add_header(ext[43]);
    add_header(ext[44]);
    add_header(ext[45]);
    add_header(ext[46]);
    add_header(ext[47]);
    add_header(ext[48]);
    add_header(ext[49]);
    add_header(ext[50]);
    add_header(ext[51]);
    add_header(ext[52]);
    add_header(ext[53]);
    add_header(ext[54]);
    add_header(ext[55]);
    add_header(ext[56]);
    add_header(ext[57]);
    add_header(ext[58]);
    add_header(ext[59]);
    add_header(ext[60]);
    add_header(ext[61]);
    add_header(ext[62]);
    add_header(ext[63]);
    add_header(ext[64]);
    add_header(ext[65]);
    add_header(ext[66]);
    add_header(ext[67]);
    add_header(ext[68]);
    add_header(ext[69]);
    add_header(ext[70]);
    add_header(ext[71]);
    add_header(ext[72]);
    add_header(ext[73]);
    add_header(ext[74]);
    add_header(ext[75]);
    add_header(ext[76]);
    add_header(ext[77]);
    add_header(ext[78]);
    add_header(ext[79]);
    remove_header(ext[80]);
    remove_header(ext[81]);
    remove_header(ext[82]);
    remove_header(ext[83]);
    remove_header(ext[84]);
    remove_header(ext[85]);
    remove_header(ext[86]);
    remove_header(ext[87]);
    remove_header(ext[88]);
    remove_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_90() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    add_header(ext[30]);
    add_header(ext[31]);
    add_header(ext[32]);
    add_header(ext[33]);
    add_header(ext[34]);
    add_header(ext[35]);
    add_header(ext[36]);
    add_header(ext[37]);
    add_header(ext[38]);
    add_header(ext[39]);
    add_header(ext[40]);
    add_header(ext[41]);
    add_header(ext[42]);
    add_header(ext[43]);
    add_header(ext[44]);
    add_header(ext[45]);
    add_header(ext[46]);
    add_header(ext[47]);
    add_header(ext[48]);
    add_header(ext[49]);
    add_header(ext[50]);
    add_header(ext[51]);
    add_header(ext[52]);
    add_header(ext[53]);
    add_header(ext[54]);
    add_header(ext[55]);
    add_header(ext[56]);
    add_header(ext[57]);
    add_header(ext[58]);
    add_header(ext[59]);
    add_header(ext[60]);
    add_header(ext[61]);
    add_header(ext[62]);
    add_header(ext[63]);
    add_header(ext[64]);
    add_header(ext[65]);
    add_header(ext[66]);
    add_header(ext[67]);
    add_header(ext[68]);
    add_header(ext[69]);
    add_header(ext[70]);
    add_header(ext[71]);
    add_header(ext[72]);
    add_header(ext[73]);
    add_header(ext[74]);
    add_header(ext[75]);
    add_header(ext[76]);
    add_header(ext[77]);
    add_header(ext[78]);
    add_header(ext[79]);
    add_header(ext[80]);
    add_header(ext[81]);
    add_header(ext[82]);
    add_header(ext[83]);
    add_header(ext[84]);
    add_header(ext[85]);
    add_header(ext[86]);
    add_header(ext[87]);
    add_header(ext[88]);
    add_header(ext[89]);
    remove_header(ext[90]);
    remove_header(ext[91]);
    remove_header(ext[92]);
    remove_header(ext[93]);
    remove_header(ext[94]);
    remove_header(ext[95]);
    remove_header(ext[96]);
    remove_header(ext[97]);
    remove_header(ext[98]);
    remove_header(ext[99]);
}

action a_resize_100() {
    add_header(ext[0]);
    add_header(ext[1]);
    add_header(ext[2]);
    add_header(ext[3]);
    add_header(ext[4]);
    add_header(ext[5]);
    add_header(ext[6]);
    add_header(ext[7]);
    add_header(ext[8]);
    add_header(ext[9]);
    add_header(ext[10]);
    add_header(ext[11]);
    add_header(ext[12]);
    add_header(ext[13]);
    add_header(ext[14]);
    add_header(ext[15]);
    add_header(ext[16]);
    add_header(ext[17]);
    add_header(ext[18]);
    add_header(ext[19]);
    add_header(ext[20]);
    add_header(ext[21]);
    add_header(ext[22]);
    add_header(ext[23]);
    add_header(ext[24]);
    add_header(ext[25]);
    add_header(ext[26]);
    add_header(ext[27]);
    add_header(ext[28]);
    add_header(ext[29]);
    add_header(ext[30]);
    add_header(ext[31]);
    add_header(ext[32]);
    add_header(ext[33]);
    add_header(ext[34]);
    add_header(ext[35]);
    add_header(ext[36]);
    add_header(ext[37]);
    add_header(ext[38]);
    add_header(ext[39]);
    add_header(ext[40]);
    add_header(ext[41]);
    add_header(ext[42]);
    add_header(ext[43]);
    add_header(ext[44]);
    add_header(ext[45]);
    add_header(ext[46]);
    add_header(ext[47]);
    add_header(ext[48]);
    add_header(ext[49]);
    add_header(ext[50]);
    add_header(ext[51]);
    add_header(ext[52]);
    add_header(ext[53]);
    add_header(ext[54]);
    add_header(ext[55]);
    add_header(ext[56]);
    add_header(ext[57]);
    add_header(ext[58]);
    add_header(ext[59]);
    add_header(ext[60]);
    add_header(ext[61]);
    add_header(ext[62]);
    add_header(ext[63]);
    add_header(ext[64]);
    add_header(ext[65]);
    add_header(ext[66]);
    add_header(ext[67]);
    add_header(ext[68]);
    add_header(ext[69]);
    add_header(ext[70]);
    add_header(ext[71]);
    add_header(ext[72]);
    add_header(ext[73]);
    add_header(ext[74]);
    add_header(ext[75]);
    add_header(ext[76]);
    add_header(ext[77]);
    add_header(ext[78]);
    add_header(ext[79]);
    add_header(ext[80]);
    add_header(ext[81]);
    add_header(ext[82]);
    add_header(ext[83]);
    add_header(ext[84]);
    add_header(ext[85]);
    add_header(ext[86]);
    add_header(ext[87]);
    add_header(ext[88]);
    add_header(ext[89]);
    add_header(ext[90]);
    add_header(ext[91]);
    add_header(ext[92]);
    add_header(ext[93]);
    add_header(ext[94]);
    add_header(ext[95]);
    add_header(ext[96]);
    add_header(ext[97]);
    add_header(ext[98]);
    add_header(ext[99]);
}

action a_wb_20() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
}

action a_wb_30() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
}

action a_wb_40() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x228);
    modify_field(ext[30].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(ext[31].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x218);
    modify_field(ext[32].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(ext[33].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x208);
    modify_field(ext[34].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(ext[35].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f8);
    modify_field(ext[36].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(ext[37].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e8);
    modify_field(ext[38].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(ext[39].b, hp4s.tmp);
}

action a_wb_50() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x228);
    modify_field(ext[30].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(ext[31].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x218);
    modify_field(ext[32].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(ext[33].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x208);
    modify_field(ext[34].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(ext[35].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f8);
    modify_field(ext[36].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(ext[37].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e8);
    modify_field(ext[38].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(ext[39].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d8);
    modify_field(ext[40].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(ext[41].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c8);
    modify_field(ext[42].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c0);
    modify_field(ext[43].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b8);
    modify_field(ext[44].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b0);
    modify_field(ext[45].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a8);
    modify_field(ext[46].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a0);
    modify_field(ext[47].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x198);
    modify_field(ext[48].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x190);
    modify_field(ext[49].b, hp4s.tmp);
}

action a_wb_60() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x228);
    modify_field(ext[30].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(ext[31].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x218);
    modify_field(ext[32].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(ext[33].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x208);
    modify_field(ext[34].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(ext[35].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f8);
    modify_field(ext[36].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(ext[37].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e8);
    modify_field(ext[38].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(ext[39].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d8);
    modify_field(ext[40].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(ext[41].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c8);
    modify_field(ext[42].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c0);
    modify_field(ext[43].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b8);
    modify_field(ext[44].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b0);
    modify_field(ext[45].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a8);
    modify_field(ext[46].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a0);
    modify_field(ext[47].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x198);
    modify_field(ext[48].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x190);
    modify_field(ext[49].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x188);
    modify_field(ext[50].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x180);
    modify_field(ext[51].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x178);
    modify_field(ext[52].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x170);
    modify_field(ext[53].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x168);
    modify_field(ext[54].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x160);
    modify_field(ext[55].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x158);
    modify_field(ext[56].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x150);
    modify_field(ext[57].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x148);
    modify_field(ext[58].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x140);
    modify_field(ext[59].b, hp4s.tmp);
}

action a_wb_70() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x228);
    modify_field(ext[30].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(ext[31].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x218);
    modify_field(ext[32].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(ext[33].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x208);
    modify_field(ext[34].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(ext[35].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f8);
    modify_field(ext[36].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(ext[37].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e8);
    modify_field(ext[38].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(ext[39].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d8);
    modify_field(ext[40].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(ext[41].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c8);
    modify_field(ext[42].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c0);
    modify_field(ext[43].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b8);
    modify_field(ext[44].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b0);
    modify_field(ext[45].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a8);
    modify_field(ext[46].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a0);
    modify_field(ext[47].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x198);
    modify_field(ext[48].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x190);
    modify_field(ext[49].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x188);
    modify_field(ext[50].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x180);
    modify_field(ext[51].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x178);
    modify_field(ext[52].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x170);
    modify_field(ext[53].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x168);
    modify_field(ext[54].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x160);
    modify_field(ext[55].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x158);
    modify_field(ext[56].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x150);
    modify_field(ext[57].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x148);
    modify_field(ext[58].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x140);
    modify_field(ext[59].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x138);
    modify_field(ext[60].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x130);
    modify_field(ext[61].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x128);
    modify_field(ext[62].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x120);
    modify_field(ext[63].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x118);
    modify_field(ext[64].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x110);
    modify_field(ext[65].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x108);
    modify_field(ext[66].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x100);
    modify_field(ext[67].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf8);
    modify_field(ext[68].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf0);
    modify_field(ext[69].b, hp4s.tmp);
}

action a_wb_80() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x228);
    modify_field(ext[30].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(ext[31].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x218);
    modify_field(ext[32].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(ext[33].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x208);
    modify_field(ext[34].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(ext[35].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f8);
    modify_field(ext[36].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(ext[37].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e8);
    modify_field(ext[38].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(ext[39].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d8);
    modify_field(ext[40].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(ext[41].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c8);
    modify_field(ext[42].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c0);
    modify_field(ext[43].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b8);
    modify_field(ext[44].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b0);
    modify_field(ext[45].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a8);
    modify_field(ext[46].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a0);
    modify_field(ext[47].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x198);
    modify_field(ext[48].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x190);
    modify_field(ext[49].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x188);
    modify_field(ext[50].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x180);
    modify_field(ext[51].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x178);
    modify_field(ext[52].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x170);
    modify_field(ext[53].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x168);
    modify_field(ext[54].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x160);
    modify_field(ext[55].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x158);
    modify_field(ext[56].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x150);
    modify_field(ext[57].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x148);
    modify_field(ext[58].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x140);
    modify_field(ext[59].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x138);
    modify_field(ext[60].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x130);
    modify_field(ext[61].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x128);
    modify_field(ext[62].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x120);
    modify_field(ext[63].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x118);
    modify_field(ext[64].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x110);
    modify_field(ext[65].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x108);
    modify_field(ext[66].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x100);
    modify_field(ext[67].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf8);
    modify_field(ext[68].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf0);
    modify_field(ext[69].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xe8);
    modify_field(ext[70].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xe0);
    modify_field(ext[71].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xd8);
    modify_field(ext[72].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xd0);
    modify_field(ext[73].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xc8);
    modify_field(ext[74].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xc0);
    modify_field(ext[75].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xb8);
    modify_field(ext[76].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xb0);
    modify_field(ext[77].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xa8);
    modify_field(ext[78].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xa0);
    modify_field(ext[79].b, hp4s.tmp);
}

action a_wb_90() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x228);
    modify_field(ext[30].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(ext[31].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x218);
    modify_field(ext[32].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(ext[33].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x208);
    modify_field(ext[34].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(ext[35].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f8);
    modify_field(ext[36].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(ext[37].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e8);
    modify_field(ext[38].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(ext[39].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d8);
    modify_field(ext[40].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(ext[41].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c8);
    modify_field(ext[42].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c0);
    modify_field(ext[43].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b8);
    modify_field(ext[44].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b0);
    modify_field(ext[45].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a8);
    modify_field(ext[46].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a0);
    modify_field(ext[47].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x198);
    modify_field(ext[48].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x190);
    modify_field(ext[49].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x188);
    modify_field(ext[50].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x180);
    modify_field(ext[51].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x178);
    modify_field(ext[52].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x170);
    modify_field(ext[53].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x168);
    modify_field(ext[54].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x160);
    modify_field(ext[55].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x158);
    modify_field(ext[56].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x150);
    modify_field(ext[57].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x148);
    modify_field(ext[58].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x140);
    modify_field(ext[59].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x138);
    modify_field(ext[60].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x130);
    modify_field(ext[61].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x128);
    modify_field(ext[62].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x120);
    modify_field(ext[63].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x118);
    modify_field(ext[64].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x110);
    modify_field(ext[65].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x108);
    modify_field(ext[66].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x100);
    modify_field(ext[67].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf8);
    modify_field(ext[68].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf0);
    modify_field(ext[69].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xe8);
    modify_field(ext[70].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xe0);
    modify_field(ext[71].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xd8);
    modify_field(ext[72].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xd0);
    modify_field(ext[73].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xc8);
    modify_field(ext[74].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xc0);
    modify_field(ext[75].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xb8);
    modify_field(ext[76].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xb0);
    modify_field(ext[77].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xa8);
    modify_field(ext[78].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xa0);
    modify_field(ext[79].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x98);
    modify_field(ext[80].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x90);
    modify_field(ext[81].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x88);
    modify_field(ext[82].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x80);
    modify_field(ext[83].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x78);
    modify_field(ext[84].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x70);
    modify_field(ext[85].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x68);
    modify_field(ext[86].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x60);
    modify_field(ext[87].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x58);
    modify_field(ext[88].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x50);
    modify_field(ext[89].b, hp4s.tmp);
}

action a_wb_100() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x318);
    modify_field(ext[0].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x310);
    modify_field(ext[1].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x308);
    modify_field(ext[2].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x300);
    modify_field(ext[3].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f8);
    modify_field(ext[4].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(ext[5].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e8);
    modify_field(ext[6].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2e0);
    modify_field(ext[7].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d8);
    modify_field(ext[8].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2d0);
    modify_field(ext[9].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c8);
    modify_field(ext[10].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(ext[11].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b8);
    modify_field(ext[12].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(ext[13].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(ext[14].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(ext[15].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x298);
    modify_field(ext[16].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(ext[17].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(ext[18].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(ext[19].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x278);
    modify_field(ext[20].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(ext[21].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(ext[22].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(ext[23].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x258);
    modify_field(ext[24].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(ext[25].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x248);
    modify_field(ext[26].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(ext[27].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x238);
    modify_field(ext[28].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(ext[29].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x228);
    modify_field(ext[30].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(ext[31].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x218);
    modify_field(ext[32].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(ext[33].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x208);
    modify_field(ext[34].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(ext[35].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f8);
    modify_field(ext[36].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(ext[37].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e8);
    modify_field(ext[38].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(ext[39].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d8);
    modify_field(ext[40].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(ext[41].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c8);
    modify_field(ext[42].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1c0);
    modify_field(ext[43].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b8);
    modify_field(ext[44].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b0);
    modify_field(ext[45].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a8);
    modify_field(ext[46].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a0);
    modify_field(ext[47].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x198);
    modify_field(ext[48].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x190);
    modify_field(ext[49].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x188);
    modify_field(ext[50].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x180);
    modify_field(ext[51].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x178);
    modify_field(ext[52].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x170);
    modify_field(ext[53].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x168);
    modify_field(ext[54].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x160);
    modify_field(ext[55].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x158);
    modify_field(ext[56].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x150);
    modify_field(ext[57].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x148);
    modify_field(ext[58].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x140);
    modify_field(ext[59].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x138);
    modify_field(ext[60].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x130);
    modify_field(ext[61].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x128);
    modify_field(ext[62].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x120);
    modify_field(ext[63].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x118);
    modify_field(ext[64].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x110);
    modify_field(ext[65].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x108);
    modify_field(ext[66].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x100);
    modify_field(ext[67].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf8);
    modify_field(ext[68].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xf0);
    modify_field(ext[69].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xe8);
    modify_field(ext[70].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xe0);
    modify_field(ext[71].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xd8);
    modify_field(ext[72].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xd0);
    modify_field(ext[73].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xc8);
    modify_field(ext[74].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xc0);
    modify_field(ext[75].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xb8);
    modify_field(ext[76].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xb0);
    modify_field(ext[77].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xa8);
    modify_field(ext[78].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0xa0);
    modify_field(ext[79].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x98);
    modify_field(ext[80].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x90);
    modify_field(ext[81].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x88);
    modify_field(ext[82].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x80);
    modify_field(ext[83].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x78);
    modify_field(ext[84].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x70);
    modify_field(ext[85].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x68);
    modify_field(ext[86].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x60);
    modify_field(ext[87].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x58);
    modify_field(ext[88].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x50);
    modify_field(ext[89].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x48);
    modify_field(ext[90].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x40);
    modify_field(ext[91].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x38);
    modify_field(ext[92].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x30);
    modify_field(ext[93].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x28);
    modify_field(ext[94].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x20);
    modify_field(ext[95].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x18);
    modify_field(ext[96].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x10);
    modify_field(ext[97].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x8);
    modify_field(ext[98].b, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x0);
    modify_field(ext[99].b, hp4s.tmp);
}

action a_mcast_start(next_program, next_vingress, mseq, port) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.mcast, mseq);
    modify_field(hp4.recirc, 0x1);
    modify_field(standard_metadata.egress_spec, port);
}

action a_mcast_clone(session) {
    clone_egress_pkt_to_egress(session, fl_recirc);
}

action a_mcast_step_clone(next_program, next_vingress, next_seq, session) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.mcast, next_seq);
    modify_field(hp4.recirc, 0x1);
    clone_egress_pkt_to_egress(session, fl_recirc);
}

action a_mcast_step_last(next_program, next_vingress) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.mcast, 0x0);
    modify_field(hp4.recirc, 0x1);
}

action a_police() {
    execute_meter(hp4_ingress_meter, hp4.program, hp4.color);
    count(hp4_vdev_counter, hp4.program);
}

table t_norm {
    reads {
        hp4.parsed : exact;
    }
    actions {
        a_norm_20;
        a_norm_30;
        a_norm_40;
        a_norm_50;
        a_norm_60;
        a_norm_70;
        a_norm_80;
        a_norm_90;
        a_norm_100;
    }
    size : 10;
}

table t_assign {
    reads {
        standard_metadata.ingress_port : ternary;
    }
    actions {
        a_set_program;
    }
    size : 64;
}

table t_parse_ctrl {
    reads {
        hp4.program : exact;
        hp4.parse_state : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_parse_more;
        a_parse_done;
    }
    size : 256;
}

table t1_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t_virtnet {
    reads {
        hp4.program : exact;
        hp4.vdev_port : exact;
    }
    actions {
        a_phys_fwd;
        a_virt_fwd;
        a_mcast_start;
        a_vdrop;
    }
    default_action : a_vdrop;
    size : 256;
}

table te_recirc {
    actions {
        a_do_recirc;
    }
    default_action : a_do_recirc;
    size : 1;
}

table t_dropped {
    actions {
        a_vdrop;
    }
    default_action : a_vdrop;
    size : 1;
}

table te_csum {
    reads {
        hp4.program : exact;
    }
    actions {
        a_ipv4_csum;
    }
    size : 64;
}

table te_resize {
    reads {
        hp4.wb_bytes : exact;
    }
    actions {
        a_resize_20;
        a_resize_30;
        a_resize_40;
        a_resize_50;
        a_resize_60;
        a_resize_70;
        a_resize_80;
        a_resize_90;
        a_resize_100;
    }
    size : 10;
}

table te_writeback {
    reads {
        hp4.wb_bytes : exact;
    }
    actions {
        a_wb_20;
        a_wb_30;
        a_wb_40;
        a_wb_50;
        a_wb_60;
        a_wb_70;
        a_wb_80;
        a_wb_90;
        a_wb_100;
    }
    size : 10;
}

table te_mcast_orig {
    reads {
        hp4.mcast : exact;
    }
    actions {
        a_mcast_clone;
    }
    size : 64;
}

table te_mcast_clone {
    reads {
        hp4.mcast : exact;
    }
    actions {
        a_mcast_step_clone;
        a_mcast_step_last;
    }
    size : 64;
}

table t_police {
    actions {
        a_police;
    }
    default_action : a_police;
    size : 1;
}

table t_police_drop {
    actions {
        a_vdrop;
    }
    default_action : a_vdrop;
    size : 1;
}

control ingress {
    apply(t_norm);
    if (hp4.program == 0x0) {
        apply(t_assign);
    }
    apply(t_police);
    if (hp4.color != 0x2) {
        apply(t_parse_ctrl);
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t1_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t1_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t1_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t1_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t1_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t1_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p1_prep);
                apply(t1_p1_exec);
                apply(t1_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p2_prep);
                apply(t1_p2_exec);
                apply(t1_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p3_prep);
                apply(t1_p3_exec);
                apply(t1_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p4_prep);
                apply(t1_p4_exec);
                apply(t1_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p5_prep);
                apply(t1_p5_exec);
                apply(t1_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p6_prep);
                apply(t1_p6_exec);
                apply(t1_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p7_prep);
                apply(t1_p7_exec);
                apply(t1_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p8_prep);
                apply(t1_p8_exec);
                apply(t1_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p9_prep);
                apply(t1_p9_exec);
                apply(t1_p9_done);
            }
        }
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t2_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t2_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t2_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t2_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t2_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t2_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p1_prep);
                apply(t2_p1_exec);
                apply(t2_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p2_prep);
                apply(t2_p2_exec);
                apply(t2_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p3_prep);
                apply(t2_p3_exec);
                apply(t2_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p4_prep);
                apply(t2_p4_exec);
                apply(t2_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p5_prep);
                apply(t2_p5_exec);
                apply(t2_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p6_prep);
                apply(t2_p6_exec);
                apply(t2_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p7_prep);
                apply(t2_p7_exec);
                apply(t2_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p8_prep);
                apply(t2_p8_exec);
                apply(t2_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p9_prep);
                apply(t2_p9_exec);
                apply(t2_p9_done);
            }
        }
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t3_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t3_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t3_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t3_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t3_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t3_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p1_prep);
                apply(t3_p1_exec);
                apply(t3_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p2_prep);
                apply(t3_p2_exec);
                apply(t3_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p3_prep);
                apply(t3_p3_exec);
                apply(t3_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p4_prep);
                apply(t3_p4_exec);
                apply(t3_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p5_prep);
                apply(t3_p5_exec);
                apply(t3_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p6_prep);
                apply(t3_p6_exec);
                apply(t3_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p7_prep);
                apply(t3_p7_exec);
                apply(t3_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p8_prep);
                apply(t3_p8_exec);
                apply(t3_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p9_prep);
                apply(t3_p9_exec);
                apply(t3_p9_done);
            }
        }
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t4_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t4_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t4_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t4_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t4_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t4_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p1_prep);
                apply(t4_p1_exec);
                apply(t4_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p2_prep);
                apply(t4_p2_exec);
                apply(t4_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p3_prep);
                apply(t4_p3_exec);
                apply(t4_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p4_prep);
                apply(t4_p4_exec);
                apply(t4_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p5_prep);
                apply(t4_p5_exec);
                apply(t4_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p6_prep);
                apply(t4_p6_exec);
                apply(t4_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p7_prep);
                apply(t4_p7_exec);
                apply(t4_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p8_prep);
                apply(t4_p8_exec);
                apply(t4_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p9_prep);
                apply(t4_p9_exec);
                apply(t4_p9_done);
            }
        }
        if (hp4.dropped == 0x1) {
            apply(t_dropped);
        } else {
            apply(t_virtnet);
        }
    } else {
        apply(t_police_drop);
    }
}

control egress {
    if (hp4.csum == 0x1) {
        apply(te_csum);
    }
    apply(te_resize);
    apply(te_writeback);
    if (hp4.mcast != 0x0) {
        if (standard_metadata.instance_type == 0x2) {
            apply(te_mcast_clone);
        } else {
            apply(te_mcast_orig);
        }
    }
    if (hp4.recirc == 0x1) {
        apply(te_recirc);
    }
}

