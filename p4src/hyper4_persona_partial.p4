header_type u_byte_t {
    fields {
        b : 8;
    }
}

header_type hp4_meta_t {
    fields {
        program : 16;
        numbytes : 16;
        parsed : 16;
        parse_state : 16;
        next_table : 8;
        next_slot : 16;
        match_id : 32;
        prims_left : 8;
        prim_type : 8;
        vdev_port : 16;
        vdev_ingress : 16;
        wb_bytes : 16;
        recirc : 8;
        csum : 8;
        dropped : 8;
        mcast : 16;
        color : 8;
        fpath : 8;
    }
}

header_type hp4_data_t {
    fields {
        extracted : 800;
        emeta : 256;
    }
}

header_type hp4_scratch_t {
    fields {
        tmp : 800;
        dmask : 800;
        dshift : 16;
        slshift : 16;
        srshift : 16;
        cval : 64;
        acc : 32;
    }
}

header_type f_eth_t {
    fields {
        dst : 48;
        src : 48;
        etype : 16;
    }
}

header_type f_arp_t {
    fields {
        htype : 16;
        ptype : 16;
        hlen : 8;
        plen : 8;
        oper : 16;
        sha : 48;
        spa : 32;
        tha : 48;
        tpa : 32;
    }
}

header_type f_ipv4_t {
    fields {
        verihl : 8;
        tos : 8;
        len : 16;
        id : 16;
        frag : 16;
        ttl : 8;
        proto : 8;
        csum : 16;
        src : 32;
        dst : 32;
    }
}

header_type f_tcp_t {
    fields {
        sport : 16;
        dport : 16;
        seq : 32;
        ack : 32;
        offres : 8;
        flags : 8;
        win : 16;
        csum : 16;
        urg : 16;
    }
}

header_type f_udp_t {
    fields {
        sport : 16;
        dport : 16;
        len : 16;
        csum : 16;
    }
}

metadata hp4_meta_t hp4;
metadata hp4_data_t hp4d;
metadata hp4_scratch_t hp4s;
header f_eth_t f_eth;
header f_arp_t f_arp;
header f_ipv4_t f_ipv4;
header f_tcp_t f_tcp;
header f_udp_t f_udp;

field_list fl_resubmit {
    hp4.program;
    hp4.numbytes;
    hp4.parse_state;
    hp4.vdev_ingress;
}

field_list fl_recirc {
    hp4.program;
    hp4.vdev_ingress;
}

counter hp4_vdev_counter {
    type : packets;
    instance_count : 256;
}

meter hp4_ingress_meter {
    type : packets;
    instance_count : 256;
}

parser start {
    extract(f_eth);
    return select(latest.etype) {
        0x806 : fp_arp;
        0x800 : fp_ipv4;
        default : fp_eth_done;
    }
}

parser fp_eth_done {
    set_metadata(hp4.fpath, 0x1);
    set_metadata(hp4.parsed, 0xe);
    return ingress;
}

parser fp_arp {
    extract(f_arp);
    set_metadata(hp4.fpath, 0x2);
    set_metadata(hp4.parsed, 0x2a);
    return ingress;
}

parser fp_ipv4 {
    extract(f_ipv4);
    return select(latest.proto) {
        0x6 : fp_tcp;
        0x11 : fp_udp;
        default : fp_ipv4_done;
    }
}

parser fp_ipv4_done {
    set_metadata(hp4.fpath, 0x3);
    set_metadata(hp4.parsed, 0x22);
    return ingress;
}

parser fp_tcp {
    extract(f_tcp);
    set_metadata(hp4.fpath, 0x4);
    set_metadata(hp4.parsed, 0x36);
    return ingress;
}

parser fp_udp {
    extract(f_udp);
    set_metadata(hp4.fpath, 0x5);
    set_metadata(hp4.parsed, 0x2a);
    return ingress;
}

action a_fnorm_1() {
    modify_field(hp4s.tmp, f_eth.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.etype);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_fwb_1() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(f_eth.dst, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(f_eth.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(f_eth.etype, hp4s.tmp);
}

action a_fnorm_2() {
    modify_field(hp4s.tmp, f_eth.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.etype);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.htype);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.ptype);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.hlen);
    shift_left(hp4s.tmp, hp4s.tmp, 0x288);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.plen);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.oper);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.sha);
    shift_left(hp4s.tmp, hp4s.tmp, 0x240);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.spa);
    shift_left(hp4s.tmp, hp4s.tmp, 0x220);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.tha);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_arp.tpa);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_fwb_2() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(f_eth.dst, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(f_eth.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(f_eth.etype, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(f_arp.htype, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(f_arp.ptype, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x288);
    modify_field(f_arp.hlen, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(f_arp.plen, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(f_arp.oper, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x240);
    modify_field(f_arp.sha, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x220);
    modify_field(f_arp.spa, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(f_arp.tha, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(f_arp.tpa, hp4s.tmp);
}

action a_fnorm_3() {
    modify_field(hp4s.tmp, f_eth.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.etype);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.verihl);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.tos);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.len);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.id);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.frag);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.ttl);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.proto);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.csum);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_fwb_3() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(f_eth.dst, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(f_eth.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(f_eth.etype, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(f_ipv4.verihl, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(f_ipv4.tos, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(f_ipv4.len, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(f_ipv4.id, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(f_ipv4.frag, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(f_ipv4.ttl, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(f_ipv4.proto, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(f_ipv4.csum, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(f_ipv4.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(f_ipv4.dst, hp4s.tmp);
}

action a_fnorm_4() {
    modify_field(hp4s.tmp, f_eth.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.etype);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.verihl);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.tos);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.len);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.id);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.frag);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.ttl);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.proto);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.csum);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.sport);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.dport);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.seq);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.ack);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.offres);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.flags);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.win);
    shift_left(hp4s.tmp, hp4s.tmp, 0x190);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.csum);
    shift_left(hp4s.tmp, hp4s.tmp, 0x180);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_tcp.urg);
    shift_left(hp4s.tmp, hp4s.tmp, 0x170);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_fwb_4() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(f_eth.dst, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(f_eth.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(f_eth.etype, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(f_ipv4.verihl, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(f_ipv4.tos, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(f_ipv4.len, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(f_ipv4.id, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(f_ipv4.frag, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(f_ipv4.ttl, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(f_ipv4.proto, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(f_ipv4.csum, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(f_ipv4.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(f_ipv4.dst, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(f_tcp.sport, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(f_tcp.dport, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(f_tcp.seq, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1b0);
    modify_field(f_tcp.ack, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a8);
    modify_field(f_tcp.offres, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1a0);
    modify_field(f_tcp.flags, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x190);
    modify_field(f_tcp.win, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x180);
    modify_field(f_tcp.csum, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x170);
    modify_field(f_tcp.urg, hp4s.tmp);
}

action a_fnorm_5() {
    modify_field(hp4s.tmp, f_eth.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2c0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_eth.etype);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2b0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.verihl);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a8);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.tos);
    shift_left(hp4s.tmp, hp4s.tmp, 0x2a0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.len);
    shift_left(hp4s.tmp, hp4s.tmp, 0x290);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.id);
    shift_left(hp4s.tmp, hp4s.tmp, 0x280);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.frag);
    shift_left(hp4s.tmp, hp4s.tmp, 0x270);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.ttl);
    shift_left(hp4s.tmp, hp4s.tmp, 0x268);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.proto);
    shift_left(hp4s.tmp, hp4s.tmp, 0x260);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.csum);
    shift_left(hp4s.tmp, hp4s.tmp, 0x250);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.src);
    shift_left(hp4s.tmp, hp4s.tmp, 0x230);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_ipv4.dst);
    shift_left(hp4s.tmp, hp4s.tmp, 0x210);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_udp.sport);
    shift_left(hp4s.tmp, hp4s.tmp, 0x200);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_udp.dport);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1f0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_udp.len);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1e0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
    modify_field(hp4s.tmp, f_udp.csum);
    shift_left(hp4s.tmp, hp4s.tmp, 0x1d0);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_fwb_5() {
    shift_right(hp4s.tmp, hp4d.extracted, 0x2f0);
    modify_field(f_eth.dst, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2c0);
    modify_field(f_eth.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2b0);
    modify_field(f_eth.etype, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a8);
    modify_field(f_ipv4.verihl, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x2a0);
    modify_field(f_ipv4.tos, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x290);
    modify_field(f_ipv4.len, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x280);
    modify_field(f_ipv4.id, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x270);
    modify_field(f_ipv4.frag, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x268);
    modify_field(f_ipv4.ttl, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x260);
    modify_field(f_ipv4.proto, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x250);
    modify_field(f_ipv4.csum, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x230);
    modify_field(f_ipv4.src, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x210);
    modify_field(f_ipv4.dst, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x200);
    modify_field(f_udp.sport, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1f0);
    modify_field(f_udp.dport, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1e0);
    modify_field(f_udp.len, hp4s.tmp);
    shift_right(hp4s.tmp, hp4d.extracted, 0x1d0);
    modify_field(f_udp.csum, hp4s.tmp);
}

action a_set_program(program, vingress) {
    modify_field(hp4.program, program);
    modify_field(hp4.vdev_ingress, vingress);
}

action a_parse_more(numbytes, pstate) {
    modify_field(hp4.numbytes, numbytes);
    modify_field(hp4.parse_state, pstate);
    resubmit(fl_resubmit);
}

action a_parse_done(next_table, next_slot, csum) {
    modify_field(hp4.next_table, next_table);
    modify_field(hp4.next_slot, next_slot);
    modify_field(hp4.wb_bytes, hp4.parsed);
    modify_field(hp4.csum, csum);
}

action a_set_match(match_id, prims_left, next_table, next_slot) {
    modify_field(hp4.match_id, match_id);
    modify_field(hp4.prims_left, prims_left);
    modify_field(hp4.next_table, next_table);
    modify_field(hp4.next_slot, next_slot);
}

action a_prep_mod_ed_const(dmask, dshift, cval) {
    modify_field(hp4.prim_type, 0x1);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_mod_ed_ed(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0x2);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_ed_meta(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0x3);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_meta_ed(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0x4);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_meta_const(dmask, dshift, cval) {
    modify_field(hp4.prim_type, 0x5);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_mod_meta_meta(dmask, dshift, slshift, srshift) {
    modify_field(hp4.prim_type, 0xc);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
}

action a_prep_mod_vport_const(cval) {
    modify_field(hp4.prim_type, 0x6);
    modify_field(hp4s.cval, cval);
}

action a_prep_mod_vport_vingress() {
    modify_field(hp4.prim_type, 0x7);
}

action a_prep_add_ed_const(dmask, dshift, slshift, srshift, cval) {
    modify_field(hp4.prim_type, 0x8);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_add_meta_const(dmask, dshift, slshift, srshift, cval) {
    modify_field(hp4.prim_type, 0x9);
    modify_field(hp4s.dmask, dmask);
    modify_field(hp4s.dshift, dshift);
    modify_field(hp4s.slshift, slshift);
    modify_field(hp4s.srshift, srshift);
    modify_field(hp4s.cval, cval);
}

action a_prep_drop() {
    modify_field(hp4.prim_type, 0xa);
}

action a_prep_no_op() {
    modify_field(hp4.prim_type, 0xb);
}

action a_exec_mod_ed_const() {
    modify_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_mod_ed_ed() {
    modify_field(hp4s.tmp, hp4d.extracted);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_mod_ed_meta() {
    modify_field(hp4s.tmp, hp4d.emeta);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_mod_meta_ed() {
    modify_field(hp4s.tmp, hp4d.extracted);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_mod_meta_const() {
    modify_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_mod_meta_meta() {
    modify_field(hp4s.tmp, hp4d.emeta);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_mod_vport_const() {
    modify_field(hp4.vdev_port, hp4s.cval);
}

action a_exec_mod_vport_vingress() {
    modify_field(hp4.vdev_port, hp4.vdev_ingress);
}

action a_exec_add_ed_const() {
    modify_field(hp4s.tmp, hp4d.extracted);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    add_to_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.extracted, hp4d.extracted, hp4s.dmask);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_exec_add_meta_const() {
    modify_field(hp4s.tmp, hp4d.emeta);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.slshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    add_to_field(hp4s.tmp, hp4s.cval);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_right(hp4s.tmp, hp4s.tmp, hp4s.srshift);
    shift_left(hp4s.tmp, hp4s.tmp, hp4s.dshift);
    bit_and(hp4s.tmp, hp4s.tmp, hp4s.dmask);
    bit_xor(hp4s.dmask, hp4s.dmask, 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff);
    bit_and(hp4d.emeta, hp4d.emeta, hp4s.dmask);
    bit_or(hp4d.emeta, hp4d.emeta, hp4s.tmp);
}

action a_exec_drop() {
    modify_field(hp4.vdev_port, 0x1ff);
    modify_field(hp4.dropped, 0x1);
}

action a_exec_no_op() {
    no_op();
}

action a_prim_done() {
    subtract_from_field(hp4.prims_left, 0x1);
}

action a_phys_fwd(port) {
    modify_field(standard_metadata.egress_spec, port);
}

action a_virt_fwd(next_program, next_vingress, port) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.recirc, 0x1);
    modify_field(standard_metadata.egress_spec, port);
}

action a_vdrop() {
    drop();
}

action a_do_recirc() {
    modify_field(hp4.recirc, 0x0);
    recirculate(fl_recirc);
}

action a_ipv4_csum(ncmask, shift0, cshift) {
    bit_and(hp4d.extracted, hp4d.extracted, ncmask);
    modify_field(hp4s.acc, 0x0);
    modify_field(hp4s.slshift, shift0);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4d.extracted, hp4s.slshift);
    bit_and(hp4s.tmp, hp4s.tmp, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    subtract_from_field(hp4s.slshift, 0x10);
    shift_right(hp4s.tmp, hp4s.acc, 0x10);
    bit_and(hp4s.acc, hp4s.acc, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    shift_right(hp4s.tmp, hp4s.acc, 0x10);
    bit_and(hp4s.acc, hp4s.acc, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    shift_right(hp4s.tmp, hp4s.acc, 0x10);
    bit_and(hp4s.acc, hp4s.acc, 0xffff);
    add_to_field(hp4s.acc, hp4s.tmp);
    bit_xor(hp4s.acc, hp4s.acc, 0xffff);
    modify_field(hp4s.tmp, hp4s.acc);
    shift_left(hp4s.tmp, hp4s.tmp, cshift);
    bit_or(hp4d.extracted, hp4d.extracted, hp4s.tmp);
}

action a_mcast_start(next_program, next_vingress, mseq, port) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.mcast, mseq);
    modify_field(hp4.recirc, 0x1);
    modify_field(standard_metadata.egress_spec, port);
}

action a_mcast_clone(session) {
    clone_egress_pkt_to_egress(session, fl_recirc);
}

action a_mcast_step_clone(next_program, next_vingress, next_seq, session) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.mcast, next_seq);
    modify_field(hp4.recirc, 0x1);
    clone_egress_pkt_to_egress(session, fl_recirc);
}

action a_mcast_step_last(next_program, next_vingress) {
    modify_field(hp4.program, next_program);
    modify_field(hp4.vdev_ingress, next_vingress);
    modify_field(hp4.mcast, 0x0);
    modify_field(hp4.recirc, 0x1);
}

action a_police() {
    execute_meter(hp4_ingress_meter, hp4.program, hp4.color);
    count(hp4_vdev_counter, hp4.program);
}

table t_norm {
    reads {
        hp4.fpath : exact;
    }
    actions {
        a_fnorm_1;
        a_fnorm_2;
        a_fnorm_3;
        a_fnorm_4;
        a_fnorm_5;
    }
    size : 8;
}

table te_writeback {
    reads {
        hp4.fpath : exact;
    }
    actions {
        a_fwb_1;
        a_fwb_2;
        a_fwb_3;
        a_fwb_4;
        a_fwb_5;
    }
    size : 8;
}

table t_assign {
    reads {
        standard_metadata.ingress_port : ternary;
    }
    actions {
        a_set_program;
    }
    size : 64;
}

table t_parse_ctrl {
    reads {
        hp4.program : exact;
        hp4.parse_state : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_parse_more;
        a_parse_done;
    }
    size : 256;
}

table t1_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t1_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t1_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t1_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t1_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t2_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t2_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t2_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t2_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t3_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t3_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t3_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t3_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_ed_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_ed_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.extracted : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_meta_exact {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_meta_ternary {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4d.emeta : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_stdmeta {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
        hp4.vdev_ingress : ternary;
        hp4.vdev_port : ternary;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_matchless {
    reads {
        hp4.program : exact;
        hp4.next_slot : exact;
    }
    actions {
        a_set_match;
    }
    size : 512;
}

table t4_p1_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p1_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p1_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p2_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p2_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p2_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p3_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p3_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p3_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p4_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p4_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p4_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p5_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p5_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p5_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p6_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p6_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p6_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p7_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p7_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p7_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p8_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p8_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p8_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t4_p9_prep {
    reads {
        hp4.program : exact;
        hp4.match_id : exact;
    }
    actions {
        a_prep_mod_ed_const;
        a_prep_mod_ed_ed;
        a_prep_mod_ed_meta;
        a_prep_mod_meta_ed;
        a_prep_mod_meta_const;
        a_prep_mod_vport_const;
        a_prep_mod_vport_vingress;
        a_prep_add_ed_const;
        a_prep_add_meta_const;
        a_prep_drop;
        a_prep_no_op;
        a_prep_mod_meta_meta;
    }
    size : 512;
}

table t4_p9_exec {
    reads {
        hp4.prim_type : exact;
    }
    actions {
        a_exec_mod_ed_const;
        a_exec_mod_ed_ed;
        a_exec_mod_ed_meta;
        a_exec_mod_meta_ed;
        a_exec_mod_meta_const;
        a_exec_mod_vport_const;
        a_exec_mod_vport_vingress;
        a_exec_add_ed_const;
        a_exec_add_meta_const;
        a_exec_drop;
        a_exec_no_op;
        a_exec_mod_meta_meta;
    }
    size : 32;
}

table t4_p9_done {
    actions {
        a_prim_done;
    }
    default_action : a_prim_done;
    size : 1;
}

table t_virtnet {
    reads {
        hp4.program : exact;
        hp4.vdev_port : exact;
    }
    actions {
        a_phys_fwd;
        a_virt_fwd;
        a_mcast_start;
        a_vdrop;
    }
    default_action : a_vdrop;
    size : 256;
}

table te_recirc {
    actions {
        a_do_recirc;
    }
    default_action : a_do_recirc;
    size : 1;
}

table t_dropped {
    actions {
        a_vdrop;
    }
    default_action : a_vdrop;
    size : 1;
}

table te_csum {
    reads {
        hp4.program : exact;
    }
    actions {
        a_ipv4_csum;
    }
    size : 64;
}

table te_mcast_orig {
    reads {
        hp4.mcast : exact;
    }
    actions {
        a_mcast_clone;
    }
    size : 64;
}

table te_mcast_clone {
    reads {
        hp4.mcast : exact;
    }
    actions {
        a_mcast_step_clone;
        a_mcast_step_last;
    }
    size : 64;
}

table t_police {
    actions {
        a_police;
    }
    default_action : a_police;
    size : 1;
}

table t_police_drop {
    actions {
        a_vdrop;
    }
    default_action : a_vdrop;
    size : 1;
}

control ingress {
    apply(t_norm);
    if (hp4.program == 0x0) {
        apply(t_assign);
    }
    apply(t_police);
    if (hp4.color != 0x2) {
        apply(t_parse_ctrl);
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t1_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t1_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t1_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t1_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t1_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t1_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p1_prep);
                apply(t1_p1_exec);
                apply(t1_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p2_prep);
                apply(t1_p2_exec);
                apply(t1_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p3_prep);
                apply(t1_p3_exec);
                apply(t1_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p4_prep);
                apply(t1_p4_exec);
                apply(t1_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p5_prep);
                apply(t1_p5_exec);
                apply(t1_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p6_prep);
                apply(t1_p6_exec);
                apply(t1_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p7_prep);
                apply(t1_p7_exec);
                apply(t1_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p8_prep);
                apply(t1_p8_exec);
                apply(t1_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t1_p9_prep);
                apply(t1_p9_exec);
                apply(t1_p9_done);
            }
        }
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t2_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t2_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t2_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t2_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t2_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t2_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p1_prep);
                apply(t2_p1_exec);
                apply(t2_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p2_prep);
                apply(t2_p2_exec);
                apply(t2_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p3_prep);
                apply(t2_p3_exec);
                apply(t2_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p4_prep);
                apply(t2_p4_exec);
                apply(t2_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p5_prep);
                apply(t2_p5_exec);
                apply(t2_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p6_prep);
                apply(t2_p6_exec);
                apply(t2_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p7_prep);
                apply(t2_p7_exec);
                apply(t2_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p8_prep);
                apply(t2_p8_exec);
                apply(t2_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t2_p9_prep);
                apply(t2_p9_exec);
                apply(t2_p9_done);
            }
        }
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t3_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t3_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t3_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t3_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t3_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t3_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p1_prep);
                apply(t3_p1_exec);
                apply(t3_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p2_prep);
                apply(t3_p2_exec);
                apply(t3_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p3_prep);
                apply(t3_p3_exec);
                apply(t3_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p4_prep);
                apply(t3_p4_exec);
                apply(t3_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p5_prep);
                apply(t3_p5_exec);
                apply(t3_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p6_prep);
                apply(t3_p6_exec);
                apply(t3_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p7_prep);
                apply(t3_p7_exec);
                apply(t3_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p8_prep);
                apply(t3_p8_exec);
                apply(t3_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t3_p9_prep);
                apply(t3_p9_exec);
                apply(t3_p9_done);
            }
        }
        if (hp4.next_table != 0x0) {
            if (hp4.next_table == 0x1) {
                apply(t4_ed_exact);
            } else {
                if (hp4.next_table == 0x2) {
                    apply(t4_ed_ternary);
                } else {
                    if (hp4.next_table == 0x3) {
                        apply(t4_meta_exact);
                    } else {
                        if (hp4.next_table == 0x4) {
                            apply(t4_meta_ternary);
                        } else {
                            if (hp4.next_table == 0x5) {
                                apply(t4_stdmeta);
                            } else {
                                if (hp4.next_table == 0x6) {
                                    apply(t4_matchless);
                                }
                            }
                        }
                    }
                }
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p1_prep);
                apply(t4_p1_exec);
                apply(t4_p1_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p2_prep);
                apply(t4_p2_exec);
                apply(t4_p2_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p3_prep);
                apply(t4_p3_exec);
                apply(t4_p3_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p4_prep);
                apply(t4_p4_exec);
                apply(t4_p4_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p5_prep);
                apply(t4_p5_exec);
                apply(t4_p5_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p6_prep);
                apply(t4_p6_exec);
                apply(t4_p6_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p7_prep);
                apply(t4_p7_exec);
                apply(t4_p7_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p8_prep);
                apply(t4_p8_exec);
                apply(t4_p8_done);
            }
            if (hp4.prims_left != 0x0) {
                apply(t4_p9_prep);
                apply(t4_p9_exec);
                apply(t4_p9_done);
            }
        }
        if (hp4.dropped == 0x1) {
            apply(t_dropped);
        } else {
            apply(t_virtnet);
        }
    } else {
        apply(t_police_drop);
    }
}

control egress {
    if (hp4.csum == 0x1) {
        apply(te_csum);
    }
    apply(te_writeback);
    if (hp4.mcast != 0x0) {
        if (standard_metadata.instance_type == 0x2) {
            apply(te_mcast_clone);
        } else {
            apply(te_mcast_orig);
        }
    }
    if (hp4.recirc == 0x1) {
        apply(te_recirc);
    }
}

