
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type arp_t {
    fields {
        htype : 16;
        ptype : 16;
        hlen : 8;
        plen : 8;
        oper : 16;
        sha : 48;
        spa : 32;
        tha : 48;
        tpa : 32;
    }
}

header_type ipv4_t {
    fields {
        verIhl : 8;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flagsFrag : 16;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}

header_type tcp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        seqNo : 32;
        ackNo : 32;
        dataOffset : 4;
        res : 4;
        flags : 8;
        window : 16;
        checksum : 16;
        urgentPtr : 16;
    }
}

header_type udp_t {
    fields {
        srcPort : 16;
        dstPort : 16;
        length_ : 16;
        checksum : 16;
    }
}

header_type composed_meta_t {
    fields {
        tmp_ip : 32;
        is_request : 8;
        nhop_ipv4 : 32;
    }
}

header ethernet_t ethernet;
header arp_t arp;
header ipv4_t ipv4;
header tcp_t tcp;
header udp_t udp;
metadata composed_meta_t cmeta;

field_list ipv4_checksum_list {
    ipv4.verIhl;
    ipv4.diffserv;
    ipv4.totalLen;
    ipv4.identification;
    ipv4.flagsFrag;
    ipv4.ttl;
    ipv4.protocol;
    ipv4.srcAddr;
    ipv4.dstAddr;
}

field_list_calculation ipv4_checksum {
    input {
        ipv4_checksum_list;
    }
    algorithm : csum16;
    output_width : 16;
}

calculated_field ipv4.hdrChecksum {
    update ipv4_checksum if (valid(ipv4));
}

parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0806 : parse_arp;
        0x0800 : parse_ipv4;
        default : ingress;
    }
}

parser parse_arp {
    extract(arp);
    return ingress;
}

parser parse_ipv4 {
    extract(ipv4);
    return select(latest.protocol) {
        6 : parse_tcp;
        17 : parse_udp;
        default : ingress;
    }
}

parser parse_tcp {
    extract(tcp);
    return ingress;
}

parser parse_udp {
    extract(udp);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action mark_request() {
    modify_field(cmeta.is_request, 1);
}

action proxy_reply(mac) {
    modify_field(cmeta.tmp_ip, arp.tpa);
    modify_field(arp.tpa, arp.spa);
    modify_field(arp.spa, cmeta.tmp_ip);
    modify_field(arp.tha, arp.sha);
    modify_field(arp.sha, mac);
    modify_field(arp.oper, 2);
    modify_field(ethernet.dstAddr, arp.tha);
    modify_field(ethernet.srcAddr, mac);
    modify_field(standard_metadata.egress_spec, standard_metadata.ingress_port);
}

action set_nhop(nhop_ipv4, port) {
    modify_field(cmeta.nhop_ipv4, nhop_ipv4);
    modify_field(standard_metadata.egress_spec, port);
    subtract_from_field(ipv4.ttl, 1);
}

action set_dmac(dmac) {
    modify_field(ethernet.dstAddr, dmac);
}

action rewrite_mac(smac) {
    modify_field(ethernet.srcAddr, smac);
}

table check_arp {
    reads {
        valid(arp) : exact;
        arp.oper : exact;
    }
    actions {
        mark_request;
        _nop;
    }
    default_action : _nop;
    size : 2;
}

table arp_resp {
    reads {
        arp.tpa : exact;
    }
    actions {
        proxy_reply;
        _drop;
    }
    default_action : _drop;
    size : 256;
}

table ip_filter {
    reads {
        ipv4.srcAddr : ternary;
        ipv4.dstAddr : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table tcp_filter {
    reads {
        tcp.srcPort : ternary;
        tcp.dstPort : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table udp_filter {
    reads {
        udp.srcPort : ternary;
        udp.dstPort : ternary;
    }
    actions {
        _nop;
        _drop;
    }
    default_action : _nop;
    size : 256;
}

table ipv4_lpm {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        _drop;
    }
    size : 1024;
}

table forward {
    reads {
        cmeta.nhop_ipv4 : exact;
    }
    actions {
        set_dmac;
        _drop;
    }
    size : 512;
}

table send_frame {
    reads {
        standard_metadata.egress_port : exact;
    }
    actions {
        rewrite_mac;
        _nop;
    }
    default_action : _nop;
    size : 256;
}

control ingress {
    apply(check_arp);
    if (cmeta.is_request == 1) {
        apply(arp_resp);
    } else {
        if (valid(ipv4)) {
            apply(ip_filter);
        }
        if (valid(tcp)) {
            apply(tcp_filter);
        } else {
            if (valid(udp)) {
                apply(udp_filter);
            }
        }
        if (valid(ipv4)) {
            apply(ipv4_lpm);
            apply(forward);
        }
    }
}

control egress {
    if (valid(ipv4)) {
        apply(send_frame);
    }
}
