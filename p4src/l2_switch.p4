
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header ethernet_t ethernet;

parser start {
    extract(ethernet);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

// Source-MAC check: a hit means the address is known; a miss would be the
// hook for learning (flagged to the controller in a full deployment).
table smac {
    reads {
        ethernet.srcAddr : exact;
    }
    actions {
        _nop;
        _drop;
    }
    size : 512;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    size : 512;
}

control ingress {
    apply(smac);
    apply(dmac);
}
