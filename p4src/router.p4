
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type ipv4_t {
    fields {
        verIhl : 8;
        diffserv : 8;
        totalLen : 16;
        identification : 16;
        flagsFrag : 16;
        ttl : 8;
        protocol : 8;
        hdrChecksum : 16;
        srcAddr : 32;
        dstAddr : 32;
    }
}

header_type routing_metadata_t {
    fields {
        nhop_ipv4 : 32;
    }
}

header ethernet_t ethernet;
header ipv4_t ipv4;
metadata routing_metadata_t routing_metadata;

field_list ipv4_checksum_list {
    ipv4.verIhl;
    ipv4.diffserv;
    ipv4.totalLen;
    ipv4.identification;
    ipv4.flagsFrag;
    ipv4.ttl;
    ipv4.protocol;
    ipv4.srcAddr;
    ipv4.dstAddr;
}

field_list_calculation ipv4_checksum {
    input {
        ipv4_checksum_list;
    }
    algorithm : csum16;
    output_width : 16;
}

calculated_field ipv4.hdrChecksum {
    update ipv4_checksum if (valid(ipv4));
}

parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0800 : parse_ipv4;
        default : ingress;
    }
}

parser parse_ipv4 {
    extract(ipv4);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action set_nhop(nhop_ipv4, port) {
    modify_field(routing_metadata.nhop_ipv4, nhop_ipv4);
    modify_field(standard_metadata.egress_spec, port);
    subtract_from_field(ipv4.ttl, 1);
}

action set_dmac(dmac) {
    modify_field(ethernet.dstAddr, dmac);
}

action rewrite_mac(smac) {
    modify_field(ethernet.srcAddr, smac);
}

// TTL validation: entries for ttl 0 and 1 drop; everything else passes.
table validate_ttl {
    reads {
        ipv4.ttl : exact;
    }
    actions {
        _drop;
        _nop;
    }
    default_action : _nop;
    size : 4;
}

table ipv4_lpm {
    reads {
        ipv4.dstAddr : lpm;
    }
    actions {
        set_nhop;
        _drop;
    }
    size : 1024;
}

table forward {
    reads {
        routing_metadata.nhop_ipv4 : exact;
    }
    actions {
        set_dmac;
        _drop;
    }
    size : 512;
}

table send_frame {
    reads {
        standard_metadata.egress_port : exact;
    }
    actions {
        rewrite_mac;
        _drop;
    }
    size : 256;
}

control ingress {
    if (valid(ipv4)) {
        apply(validate_ttl);
        apply(ipv4_lpm);
        apply(forward);
    }
}

control egress {
    if (valid(ipv4)) {
        apply(send_frame);
    }
}
