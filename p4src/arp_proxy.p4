
header_type ethernet_t {
    fields {
        dstAddr : 48;
        srcAddr : 48;
        etherType : 16;
    }
}

header_type arp_t {
    fields {
        htype : 16;
        ptype : 16;
        hlen : 8;
        plen : 8;
        oper : 16;
        sha : 48;
        spa : 32;
        tha : 48;
        tpa : 32;
    }
}

header_type arp_metadata_t {
    fields {
        tmp_ip : 32;
        is_request : 8;
    }
}

header ethernet_t ethernet;
header arp_t arp;
metadata arp_metadata_t arp_meta;

parser start {
    extract(ethernet);
    return select(latest.etherType) {
        0x0806 : parse_arp;
        default : ingress;
    }
}

parser parse_arp {
    extract(arp);
    return ingress;
}

action _nop() {
    no_op();
}

action _drop() {
    drop();
}

action mark_request() {
    modify_field(arp_meta.is_request, 1);
}

// proxy_reply rewrites the request into a reply for the proxied host:
// nine primitives, as in the paper.
action proxy_reply(mac) {
    modify_field(arp_meta.tmp_ip, arp.tpa);
    modify_field(arp.tpa, arp.spa);
    modify_field(arp.spa, arp_meta.tmp_ip);
    modify_field(arp.tha, arp.sha);
    modify_field(arp.sha, mac);
    modify_field(arp.oper, 2);
    modify_field(ethernet.dstAddr, arp.tha);
    modify_field(ethernet.srcAddr, mac);
    modify_field(standard_metadata.egress_spec, standard_metadata.ingress_port);
}

action forward(port) {
    modify_field(standard_metadata.egress_spec, port);
}

// check_arp classifies the packet: is it an ARP request?
table check_arp {
    reads {
        valid(arp) : exact;
        arp.oper : exact;
    }
    actions {
        mark_request;
        _nop;
    }
    default_action : _nop;
    size : 2;
}

// arp_resp answers requests whose target IP the proxy serves.
table arp_resp {
    reads {
        arp.tpa : exact;
    }
    actions {
        proxy_reply;
        _nop;
    }
    default_action : _nop;
    size : 256;
}

table smac {
    reads {
        ethernet.srcAddr : exact;
    }
    actions {
        _nop;
        _drop;
    }
    size : 512;
}

table dmac {
    reads {
        ethernet.dstAddr : exact;
    }
    actions {
        forward;
        _drop;
    }
    size : 512;
}

control ingress {
    apply(check_arp);
    if (arp_meta.is_request == 1) {
        apply(arp_resp) {
            _nop {
                // Request for an IP we do not proxy: switch it onward.
                apply(smac);
                apply(dmac);
            }
        }
    } else {
        apply(smac);
        apply(dmac);
    }
}
