module hyper4

go 1.22
