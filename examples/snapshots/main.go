// Snapshots: the paper's Example One (§3.2). One HyPer4 device logically
// stores three configurations — (A) an L2 switch, (B) a firewall, (C) the
// composition arp_proxy → firewall → router — and hot-swaps between them at
// runtime. The swap is a handful of assignment-table updates; no device is
// reloaded and no other device's entries are touched.
package main

import (
	"fmt"
	"log"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

var (
	h1MAC = pkt.MustMAC("00:00:00:00:00:01")
	h2MAC = pkt.MustMAC("00:00:00:00:00:02")
	h1IP  = pkt.MustIP4("10.0.0.1")
	h2IP  = pkt.MustIP4("10.0.0.2")
	s1MAC = pkt.MustMAC("aa:aa:aa:aa:aa:01")
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func load(d *dpmu.DPMU, name, fn string) {
	prog, err := functions.Load(fn)
	must(err)
	comp, err := hp4c.Compile(prog, persona.Reference)
	must(err)
	_, err = d.Load(name, comp, "operator", 0)
	must(err)
}

func main() {
	p, err := persona.Generate(persona.Reference)
	must(err)
	sw, err := sim.New("s1", p.Program)
	must(err)
	d, err := dpmu.New(sw, p)
	must(err)

	// Logically store every program (Figure 2(b)): the device holds five
	// virtual devices at once; snapshots pick which ones see traffic.
	load(d, "l2", functions.L2Switch)
	load(d, "fw", functions.Firewall)
	load(d, "arp", functions.ARPProxy)
	load(d, "cfw", functions.Firewall)
	load(d, "rtr", functions.Router)
	fmt.Println("loaded virtual devices:", d.VDevs())

	// Populate each device's tables through the DPMU.
	l2 := functions.NewL2ControllerFunc(d.Installer("operator", "l2"))
	must(l2.AddHost(h1MAC, 1))
	must(l2.AddHost(h2MAC, 2))

	fw := functions.NewFirewallControllerFunc(d.Installer("operator", "fw"))
	must(fw.AddHost(h1MAC, 1))
	must(fw.AddHost(h2MAC, 2))
	must(fw.BlockTCPDstPort(5201))

	// Configuration C: arp → cfw → rtr chained over the virtual network.
	arp := functions.NewARPControllerFunc(d.Installer("operator", "arp"))
	must(arp.Init())
	must(arp.AddProxiedHost(h2IP, h2MAC))
	for _, mac := range []pkt.MAC{h1MAC, h2MAC, s1MAC} {
		must(arp.AddHost(mac, 10))
	}
	cfw := functions.NewFirewallControllerFunc(d.Installer("operator", "cfw"))
	must(cfw.BlockTCPDstPort(5201))
	for _, mac := range []pkt.MAC{h1MAC, h2MAC, s1MAC} {
		must(cfw.AddHost(mac, 10))
	}
	rtr := functions.NewRouterControllerFunc(d.Installer("operator", "rtr"))
	must(rtr.Init())
	for _, r := range []struct {
		ip   pkt.IP4
		port int
		mac  pkt.MAC
	}{{h1IP, 1, h1MAC}, {h2IP, 2, h2MAC}} {
		must(rtr.AddRoute(r.ip, 32, r.ip, r.port))
		must(rtr.AddNextHop(r.ip, r.mac))
		must(rtr.AddPortMAC(r.port, s1MAC))
	}

	// Virtual port wiring used by every configuration.
	for _, dev := range []string{"l2", "fw", "arp", "rtr"} {
		for _, port := range []int{1, 2} {
			must(d.MapVPort("operator", dev, port, port))
		}
	}
	must(d.LinkVPorts("operator", "arp", 10, "cfw", 1))
	must(d.LinkVPorts("operator", "cfw", 10, "rtr", 1))

	// Store the three snapshots.
	both := func(dev string) []dpmu.Assignment {
		return []dpmu.Assignment{
			{PhysPort: 1, VDev: dev, VIngress: 1},
			{PhysPort: 2, VDev: dev, VIngress: 2},
		}
	}
	must(d.SaveSnapshot("A", both("l2")))
	must(d.SaveSnapshot("B", both("fw")))
	must(d.SaveSnapshot("C", both("arp")))

	// Probe traffic: a TCP flow to the filtered port, an ARP request, and
	// an innocuous TCP flow.
	blocked := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: h2MAC, Src: h1MAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: h1IP, Dst: h2IP},
		&pkt.TCP{SrcPort: 4000, DstPort: 5201},
	))
	allowed := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: h2MAC, Src: h1MAC, EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: h1IP, Dst: h2IP},
		&pkt.TCP{SrcPort: 4000, DstPort: 80},
	))
	arpReq := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.Broadcast, Src: h1MAC, EtherType: pkt.EtherTypeARP},
		&pkt.ARP{Op: pkt.ARPRequest, SenderHW: h1MAC, SenderIP: h1IP, TargetIP: h2IP},
	))

	probe := func(name string, data []byte) {
		outs, _, err := sw.Process(data, 1)
		must(err)
		if len(outs) == 0 {
			fmt.Printf("  %-12s dropped\n", name)
			return
		}
		for _, o := range outs {
			fmt.Printf("  %-12s -> port %d: %s\n", name, o.Port, pkt.Summary(o.Data))
		}
	}

	for _, snap := range []string{"A", "B", "C", "A"} {
		must(d.ActivateSnapshot(snap))
		fmt.Printf("\nactive configuration %q:\n", snap)
		probe("tcp:5201", blocked)
		probe("tcp:80", allowed)
		probe("arp-request", arpReq)
	}

	fmt.Println("\nEach swap touched only the port-assignment entries; all five")
	fmt.Println("virtual devices stayed loaded and populated throughout (§3.2).")
}
