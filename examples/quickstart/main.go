// Quickstart: generate the HyPer4 persona, load it on a software switch,
// make it emulate the L2 switch through the DPMU, and pass a frame — the
// minimal end-to-end tour of Figure 2's operational flow.
package main

import (
	"fmt"
	"log"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

func main() {
	// 1. Generate the persona (Figure 2(a)): the P4 program that emulates
	// other P4 programs. This is real P4_14 source.
	p, err := persona.Generate(persona.Reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated persona: %d lines of P4, %d tables, %d actions\n",
		p.LoC, p.TableCount, p.ActionCount)

	// 2. Configure a P4 target with the persona and attach the DPMU.
	sw, err := sim.New("s1", p.Program)
	if err != nil {
		log.Fatal(err)
	}
	d, err := dpmu.New(sw, p)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compile the L2 switch for this persona (Figure 2(b)).
	prog, err := functions.Load(functions.L2Switch)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := hp4c.Compile(prog, persona.Reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d parse entries, %d parse paths, %d stage slots\n",
		comp.Name, len(comp.ParseEntries), len(comp.Paths), len(comp.SlotList))

	// 4. Load it as a virtual device and populate its tables through the
	// DPMU (Figure 2(c)) using the function's ordinary controller.
	if _, err := d.Load("l2", comp, "quickstart", 0); err != nil {
		log.Fatal(err)
	}
	ctl := functions.NewL2ControllerFunc(d.Installer("quickstart", "l2"))
	h1 := pkt.MustMAC("00:00:00:00:00:01")
	h2 := pkt.MustMAC("00:00:00:00:00:02")
	if err := ctl.AddHost(h1, 1); err != nil {
		log.Fatal(err)
	}
	if err := ctl.AddHost(h2, 2); err != nil {
		log.Fatal(err)
	}

	// 5. Wire the virtual device to the physical ports.
	if err := d.AssignPort("quickstart", dpmu.Assignment{PhysPort: -1, VDev: "l2", VIngress: 0}); err != nil {
		log.Fatal(err)
	}
	for _, port := range []int{1, 2} {
		if err := d.MapVPort("quickstart", "l2", port, port); err != nil {
			log.Fatal(err)
		}
	}

	// 6. Send a frame: the persona behaves exactly like the L2 switch.
	frame := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: h2, Src: h1, EtherType: 0x0800},
		pkt.Payload("hello, virtualized data plane"),
	))
	outs, tr, err := sw.Process(frame, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outs {
		fmt.Printf("emitted on port %d: %s\n", o.Port, pkt.Summary(o.Data))
	}
	fmt.Printf("emulation cost: %d match-action stages (native L2 switch: 2; paper Table 1: 13)\n",
		tr.Applies)

	// An unknown destination is dropped, exactly as natively.
	unknown := pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: pkt.MustMAC("00:00:00:00:00:99"), Src: h1, EtherType: 0x0800},
	))
	outs, _, err = sw.Process(unknown, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unknown destination: %d packets emitted (dropped, as native)\n", len(outs))
}
