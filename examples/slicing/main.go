// Slicing: the paper's Example Two (§3.3, Figure 4). One HyPer4 device is
// sliced by ingress port: traffic on ports 1–2 belongs to an L2 switch
// (program A), while traffic on ports 3–4 is handled first by a firewall
// (program B) and then, over a virtual link, by a router (program C). The
// two slices are fully isolated — they are different programs with
// different table state inside the same physical switch.
package main

import (
	"fmt"
	"log"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

var (
	macs = []pkt.MAC{
		pkt.MustMAC("00:00:00:00:00:01"),
		pkt.MustMAC("00:00:00:00:00:02"),
		pkt.MustMAC("00:00:00:00:00:03"),
		pkt.MustMAC("00:00:00:00:00:04"),
	}
	ips = []pkt.IP4{
		pkt.MustIP4("10.0.1.1"),
		pkt.MustIP4("10.0.1.2"),
		pkt.MustIP4("10.0.3.1"), // h3 and h4 sit in separate logical networks
		pkt.MustIP4("10.0.4.1"),
	}
	gwMAC = pkt.MustMAC("aa:aa:aa:aa:aa:01")
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	p, err := persona.Generate(persona.Reference)
	must(err)
	sw, err := sim.New("s1", p.Program)
	must(err)
	d, err := dpmu.New(sw, p)
	must(err)

	load := func(name, fn string) {
		prog, err := functions.Load(fn)
		must(err)
		comp, err := hp4c.Compile(prog, persona.Reference)
		must(err)
		_, err = d.Load(name, comp, "operator", 0)
		must(err)
	}
	load("sliceA_l2", functions.L2Switch)
	load("sliceB_fw", functions.Firewall)
	load("sliceB_rtr", functions.Router)

	// Slice A: ports 1 and 2 behave as a plain L2 switch.
	l2 := functions.NewL2ControllerFunc(d.Installer("operator", "sliceA_l2"))
	must(l2.AddHost(macs[0], 1))
	must(l2.AddHost(macs[1], 2))
	for _, port := range []int{1, 2} {
		must(d.AssignPort("operator", dpmu.Assignment{PhysPort: port, VDev: "sliceA_l2", VIngress: port}))
		must(d.MapVPort("operator", "sliceA_l2", port, port))
	}

	// Slice B: ports 3 and 4 run firewall → router, chained over a virtual
	// link inside the device.
	fw := functions.NewFirewallControllerFunc(d.Installer("operator", "sliceB_fw"))
	must(fw.BlockTCPDstPort(5201))
	for _, mac := range []pkt.MAC{macs[2], macs[3], gwMAC} {
		must(fw.AddHost(mac, 10)) // everything the firewall passes goes to the router
	}
	rtr := functions.NewRouterControllerFunc(d.Installer("operator", "sliceB_rtr"))
	must(rtr.Init())
	for _, r := range []struct {
		ip   pkt.IP4
		port int
		mac  pkt.MAC
	}{{ips[2], 3, macs[2]}, {ips[3], 4, macs[3]}} {
		must(rtr.AddRoute(r.ip, 24, r.ip, r.port))
		must(rtr.AddNextHop(r.ip, r.mac))
		must(rtr.AddPortMAC(r.port, gwMAC))
	}
	for _, port := range []int{3, 4} {
		must(d.AssignPort("operator", dpmu.Assignment{PhysPort: port, VDev: "sliceB_fw", VIngress: port}))
		must(d.MapVPort("operator", "sliceB_rtr", port, port))
	}
	must(d.LinkVPorts("operator", "sliceB_fw", 10, "sliceB_rtr", 1))

	probe := func(name string, port int, data []byte) {
		outs, tr, err := sw.Process(data, port)
		must(err)
		if len(outs) == 0 {
			fmt.Printf("  %-28s dropped\n", name)
			return
		}
		for _, o := range outs {
			fmt.Printf("  %-28s -> port %d: %s (recirculations: %d)\n",
				name, o.Port, pkt.Summary(o.Data), tr.Recirculates)
		}
	}

	fmt.Println("slice A (ports 1-2, L2 switch):")
	probe("h1 -> h2", 1, pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: macs[1], Src: macs[0], EtherType: 0x0800}, pkt.Payload("a"))))

	fmt.Println("\nslice B (ports 3-4, firewall -> router):")
	probe("h3 -> h4 udp", 3, pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: gwMAC, Src: macs[2], EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ips[2], Dst: ips[3]},
		&pkt.UDP{SrcPort: 1000, DstPort: 2000})))
	probe("h3 -> h4 tcp:5201 (blocked)", 3, pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: gwMAC, Src: macs[2], EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoTCP, Src: ips[2], Dst: ips[3]},
		&pkt.TCP{SrcPort: 1000, DstPort: 5201})))

	fmt.Println("\nisolation between slices:")
	// h1's frame for h4's MAC arrives on slice A: slice A has no entry for
	// it, so it is dropped rather than leaking into slice B.
	probe("h1 -> h4 MAC via slice A", 1, pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: macs[3], Src: macs[0], EtherType: 0x0800})))
	// And slice B's hosts cannot be reached through slice A's L2 tables
	// even with slice B's gateway address.
	probe("h2 -> gw MAC via slice A", 2, pkt.Pad(pkt.Serialize(
		&pkt.Ethernet{Dst: gwMAC, Src: macs[1], EtherType: pkt.EtherTypeIPv4},
		&pkt.IPv4{TTL: 64, Protocol: pkt.IPProtoUDP, Src: ips[1], Dst: ips[3]},
		&pkt.UDP{SrcPort: 1, DstPort: 2})))
	fmt.Println("\nOne physical device, two isolated networking contexts (§3.3).")
}
