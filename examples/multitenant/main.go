// Multi-tenant virtual networking: the paper's Example Three (§3.4,
// Figure 5). A single HyPer4 device hosts EIGHT virtual devices — a router
// per host (r1–r4), firewalls for the tenants that want them (f1, f2), and
// two internal L2 switches (l2_s1, l2_s2) — wired together with virtual
// links. Tenants provide service to each other under their own security
// controls, all inside one physical switch.
//
// Virtual topology (virtual links drawn as ===):
//
//	h1 --- r1 === f1 === l2_s1 ====== l2_s2 === r3 --- h3
//	h2 --- r2 === f2 ===/                   \=== r4 --- h4
package main

import (
	"fmt"
	"log"

	"hyper4/internal/core/dpmu"
	"hyper4/internal/core/hp4c"
	"hyper4/internal/core/persona"
	"hyper4/internal/functions"
	"hyper4/internal/netsim"
	"hyper4/internal/pkt"
	"hyper4/internal/sim"
)

var (
	hostMAC = []pkt.MAC{
		pkt.MustMAC("00:00:00:00:00:01"), pkt.MustMAC("00:00:00:00:00:02"),
		pkt.MustMAC("00:00:00:00:00:03"), pkt.MustMAC("00:00:00:00:00:04"),
	}
	hostIP = []pkt.IP4{
		pkt.MustIP4("10.0.1.1"), pkt.MustIP4("10.0.2.1"),
		pkt.MustIP4("10.0.3.1"), pkt.MustIP4("10.0.4.1"),
	}
	subnet = []pkt.IP4{
		pkt.MustIP4("10.0.1.0"), pkt.MustIP4("10.0.2.0"),
		pkt.MustIP4("10.0.3.0"), pkt.MustIP4("10.0.4.0"),
	}
	// Each router's MAC on the internal network; hosts use it as gateway.
	rtrMAC = []pkt.MAC{
		pkt.MustMAC("aa:aa:aa:aa:aa:01"), pkt.MustMAC("aa:aa:aa:aa:aa:02"),
		pkt.MustMAC("aa:aa:aa:aa:aa:03"), pkt.MustMAC("aa:aa:aa:aa:aa:04"),
	}
)

// Virtual port conventions: port (i+1) of router i faces its host; port 10
// faces the internal network. Firewalls use 10 toward the router and 11
// toward the switch fabric. Switches use one port per attached device.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	p, err := persona.Generate(persona.Reference)
	must(err)
	sw, err := sim.New("s1", p.Program)
	must(err)
	d, err := dpmu.New(sw, p)
	must(err)

	// Each tenant owns its devices; the fabric operator owns the switches —
	// the DPMU enforces this split (§4.5).
	load := func(owner, name, fn string) {
		prog, err := functions.Load(fn)
		must(err)
		comp, err := hp4c.Compile(prog, persona.Reference)
		must(err)
		_, err = d.Load(name, comp, owner, 0)
		must(err)
	}
	tenants := []string{"tenant1", "tenant2", "tenant3", "tenant4"}
	for i, t := range tenants {
		load(t, fmt.Sprintf("r%d", i+1), functions.Router)
	}
	load("tenant1", "f1", functions.Firewall)
	load("tenant2", "f2", functions.Firewall)
	load("fabric", "l2_s1", functions.L2Switch)
	load("fabric", "l2_s2", functions.L2Switch)
	fmt.Println("eight virtual devices on one switch:", d.VDevs())

	// --- routers ---
	for i, t := range tenants {
		name := fmt.Sprintf("r%d", i+1)
		rc := functions.NewRouterControllerFunc(d.Installer(t, name))
		must(rc.Init())
		// Local subnet out the host-facing port.
		must(rc.AddRoute(subnet[i], 24, hostIP[i], i+1))
		must(rc.AddNextHop(hostIP[i], hostMAC[i]))
		must(rc.AddPortMAC(i+1, rtrMAC[i]))
		// Everything else toward the internal network, next hop = the
		// target tenant's router.
		for j := range tenants {
			if j == i {
				continue
			}
			gw := pkt.IP4{10, 0, byte(j + 1), 254}
			must(rc.AddRoute(subnet[j], 24, gw, 10))
			must(rc.AddNextHop(gw, rtrMAC[j]))
		}
		must(rc.AddPortMAC(10, rtrMAC[i]))
		// The host-facing virtual port maps to the physical port.
		must(d.AssignPort(t, dpmu.Assignment{PhysPort: i + 1, VDev: name, VIngress: i + 1}))
		must(d.MapVPort(t, name, i+1, i+1))
	}

	// --- firewalls (tenants 1 and 2) ---
	for _, f := range []struct {
		owner, name string
		blocked     uint16
	}{{"tenant1", "f1", 2222}, {"tenant2", "f2", 8080}} {
		fc := functions.NewFirewallControllerFunc(d.Installer(f.owner, f.name))
		must(fc.BlockTCPDstPort(f.blocked))
		// L2 forwarding inside the firewall: traffic for the tenant's own
		// router goes to virtual port 10, everything else to 11.
		idx := 0
		if f.owner == "tenant2" {
			idx = 1
		}
		must(fc.AddHost(rtrMAC[idx], 10))
		for j, mac := range rtrMAC {
			if j != idx {
				must(fc.AddHost(mac, 11))
			}
		}
	}

	// --- internal switches ---
	s1fab := functions.NewL2ControllerFunc(d.Installer("fabric", "l2_s1"))
	must(s1fab.AddHost(rtrMAC[0], 1)) // toward f1
	must(s1fab.AddHost(rtrMAC[1], 2)) // toward f2
	must(s1fab.AddHost(rtrMAC[2], 3)) // toward l2_s2
	must(s1fab.AddHost(rtrMAC[3], 3))
	s2fab := functions.NewL2ControllerFunc(d.Installer("fabric", "l2_s2"))
	must(s2fab.AddHost(rtrMAC[2], 1)) // toward r3
	must(s2fab.AddHost(rtrMAC[3], 2)) // toward r4
	must(s2fab.AddHost(rtrMAC[0], 3)) // toward l2_s1
	must(s2fab.AddHost(rtrMAC[1], 3))

	// --- virtual links (both directions each; each side is installed by
	// the device's own tenant, as the DPMU requires) ---
	link := func(ownerA, a string, ap int, ownerB, b string, bp int) {
		must(d.LinkVPorts(ownerA, a, ap, b, bp))
		must(d.LinkVPorts(ownerB, b, bp, a, ap))
	}
	link("tenant1", "r1", 10, "tenant1", "f1", 10)
	link("tenant2", "r2", 10, "tenant2", "f2", 10)
	link("tenant1", "f1", 11, "fabric", "l2_s1", 1)
	link("tenant2", "f2", 11, "fabric", "l2_s1", 2)
	link("fabric", "l2_s1", 3, "fabric", "l2_s2", 3)
	link("tenant3", "r3", 10, "fabric", "l2_s2", 1)
	link("tenant4", "r4", 10, "fabric", "l2_s2", 2)

	// Attach real hosts and exercise the fabric end to end.
	n := netsim.New()
	n.AddSwitch("s1", sw)
	for i := range hostMAC {
		name := fmt.Sprintf("h%d", i+1)
		n.AddHost(name, hostMAC[i], hostIP[i])
		must(n.Connect("s1", i+1, name))
	}
	n.Start()
	defer n.Stop()

	fmt.Println("\nping h1 -> h3 (crosses r1, f1, l2_s1, l2_s2, r3):")
	send := func(src, dst int, proto uint8, dstPort uint16) {
		var l4 pkt.Layer
		label := ""
		switch proto {
		case pkt.IPProtoICMP:
			l4 = &pkt.ICMP{Type: pkt.ICMPEchoRequest, ID: 1, Seq: 1}
			label = "icmp"
		case pkt.IPProtoTCP:
			l4 = &pkt.TCP{SrcPort: 40000, DstPort: dstPort}
			label = fmt.Sprintf("tcp:%d", dstPort)
		}
		frame := pkt.Pad(pkt.Serialize(
			&pkt.Ethernet{Dst: rtrMAC[src-1], Src: hostMAC[src-1], EtherType: pkt.EtherTypeIPv4},
			&pkt.IPv4{TTL: 64, Protocol: proto, Src: hostIP[src-1], Dst: hostIP[dst-1]},
			l4,
		))
		outs, tr, err := sw.Process(frame, src)
		must(err)
		if len(outs) == 0 {
			fmt.Printf("  h%d -> h%d %-9s dropped (recirculations: %d)\n", src, dst, label, tr.Recirculates)
			return
		}
		for _, o := range outs {
			fmt.Printf("  h%d -> h%d %-9s -> port %d: %s (recirculations: %d)\n",
				src, dst, label, o.Port, pkt.Summary(o.Data), tr.Recirculates)
		}
	}
	send(1, 3, pkt.IPProtoICMP, 0)
	fmt.Println("\ntenant-to-tenant with security controls:")
	send(3, 1, pkt.IPProtoTCP, 80)   // inbound to tenant1, allowed port
	send(3, 1, pkt.IPProtoTCP, 2222) // inbound to tenant1, f1 blocks
	send(1, 2, pkt.IPProtoTCP, 8080) // inbound to tenant2, f2 blocks
	send(4, 2, pkt.IPProtoTCP, 443)  // inbound to tenant2, allowed

	fmt.Println("\nisolation: tenant3 may not touch tenant1's devices:")
	if _, err := d.TableAdd("tenant3", "f1", dpmu.EntrySpec{Table: "tcp_filter", Action: "_nop"}); err != nil {
		fmt.Println("  DPMU refused:", err)
	}

	fmt.Println("\nlive ping through the whole virtual network:")
	res, err := n.PingFlood("h1", "h4", 10)
	must(err)
	fmt.Printf("  10 pings h1 -> h4: mean %v per echo across 5 virtual devices each way\n", res.PerPing())
}
